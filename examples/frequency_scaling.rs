//! P2-B in isolation: how optimal clock frequencies respond to queue
//! pressure and electricity price.
//!
//! ```text
//! cargo run -p eotora-examples --release --bin frequency_scaling
//! ```
//!
//! Fixes one offloading decision and sweeps the virtual-queue backlog `Q`
//! and the price `p_t`, printing the resulting mean clock frequency, fleet
//! power, and processing latency — the mechanism DPP uses to keep the
//! time-average energy cost under budget.

use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::p2b::solve_p2b;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_sim::report::{ascii_table, num};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn main() {
    let seed = 3;
    let system = MecSystem::random(&SystemConfig::paper_defaults(50), seed);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let mut state = states.observe(0, system.topology());

    // Fix a good offloading decision once (CGBA at minimum frequencies).
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
    let mut rng = Pcg32::seed(seed);
    let choices = CgbaSolver::default().solve(&p2a, &mut rng);
    let assignments = p2a.assignments_from_choices(&choices);

    let v = 100.0;
    let mut rows = Vec::new();
    for price in [0.03, 0.06, 0.09] {
        for queue in [0.0, 3.0, 10.0, 30.0] {
            state.price_per_kwh = price;
            let sol = solve_p2b(&system, &state, &assignments, v, queue);
            let mean_ghz = sol.freqs_hz.iter().sum::<f64>() / sol.freqs_hz.len() as f64 / 1e9;
            let power = system.fleet_power_watts(&sol.freqs_hz);
            let latency =
                eotora_core::latency::optimal_latency(&system, &state, &assignments, &sol.freqs_hz);
            rows.push(vec![
                format!("{price:.2}"),
                format!("{queue:.0}"),
                format!("{mean_ghz:.2}"),
                num(power / 1000.0),
                num(latency.processing),
            ]);
        }
    }
    println!(
        "{}",
        ascii_table(
            &["price $/kWh", "queue Q", "mean clock GHz", "fleet power kW", "proc latency s"],
            &rows
        )
    );
    println!("Higher queue backlog or pricier energy ⇒ lower clocks, less power, more latency.");
}
