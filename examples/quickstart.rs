//! Quickstart: the paper's system, one simulated day, three numbers.
//!
//! ```text
//! cargo run -p eotora-examples --release --bin quickstart
//! ```
//!
//! Builds the §VI-A evaluation setup (6 base stations, 2 rooms × 8 servers,
//! 60 mobile devices), runs the BDMA-based DPP controller for 24 hourly
//! slots, and reports average latency, average energy cost vs. the budget,
//! and the final virtual-queue backlog.

use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};

fn main() {
    let seed = 42;
    let system = MecSystem::random(&SystemConfig::paper_defaults(60), seed);
    println!(
        "system: {} base stations, {} rooms, {} servers, {} devices, budget ${:.2}/slot",
        system.topology().num_base_stations(),
        system.topology().num_clusters(),
        system.topology().num_servers(),
        system.topology().num_devices(),
        system.budget_per_slot(),
    );

    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let mut controller = EotoraDpp::new(system, DppConfig { v: 100.0, seed, ..Default::default() });

    for slot in 0..24 {
        let beta = states.observe(slot, controller.system().topology());
        let step = controller.step(&beta);
        println!(
            "slot {slot:>2}: price ${:.3}/kWh  latency {:.3} s  cost ${:.3}  queue {:.3}",
            beta.price_per_kwh,
            step.outcome.objective,
            step.outcome.constraint_excess + controller.system().budget_per_slot(),
            step.queue_after,
        );
    }

    println!("\nafter one day:");
    println!("  average latency      : {:.4} s", controller.average_latency());
    println!(
        "  average energy cost  : ${:.4} (budget ${:.2})",
        controller.average_cost(),
        controller.system().budget_per_slot()
    );
    println!("  virtual-queue backlog: {:.4}", controller.queue_backlog());
}
