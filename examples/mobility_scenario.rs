//! A hand-built city scenario with moving devices and a physical channel.
//!
//! ```text
//! cargo run -p eotora-examples --release --bin mobility_scenario
//! ```
//!
//! Instead of the paper's uniform per-slot channel draws, this example uses
//! the random-waypoint + path-loss channel: devices walk through a 2 km
//! square served by three macro stations wired to two server rooms, and
//! their spectral efficiency toward each station rises and falls with
//! distance. Poor coverage shows up as low `h_{i,k,t}` (making that station
//! unattractive to the game) rather than hard infeasibility — exactly the
//! formulation's model. The example reports how often devices switch base
//! stations as they move, something the uniform model cannot exhibit
//! meaningfully.

use std::sync::Arc;

use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::MecSystem;
use eotora_energy::perturbed_fleet;
use eotora_states::channel::{MobilityChannel, MobilityChannelConfig};
use eotora_states::price::PriceModel;
use eotora_states::workload::WorkloadModel;
use eotora_states::StateProvider;
use eotora_topology::{ClusterId, Point, TopologyBuilder};
use eotora_util::rng::Pcg32;

fn main() {
    let devices = 30;
    let area = 2_000.0;
    let seed = 5;

    // Three macro stations: downtown, industrial park, residential edge.
    let mut builder = TopologyBuilder::new()
        .cluster(Point::new(500.0, 500.0))
        .cluster(Point::new(1_500.0, 1_500.0));
    for n in 0..10 {
        let cluster = ClusterId(n / 5);
        builder = builder.server(cluster, if n % 2 == 0 { 64 } else { 128 }, 1.8e9, 3.6e9);
    }
    builder = builder
        .base_station(80e6, 0.9e9, 10.0, vec![ClusterId(0)], Point::new(400.0, 600.0), 1_800.0)
        .base_station(60e6, 0.7e9, 10.0, vec![ClusterId(1)], Point::new(1_600.0, 1_400.0), 1_800.0)
        .base_station(
            70e6,
            0.8e9,
            10.0,
            vec![ClusterId(0), ClusterId(1)], // mmWave fronthaul reaches both rooms
            Point::new(1_000.0, 1_000.0),
            1_800.0,
        );
    let mut rng = Pcg32::seed(seed);
    for _ in 0..devices {
        builder = builder.device(Point::new(rng.uniform_in(0.0, area), rng.uniform_in(0.0, area)));
    }
    let topology = builder.build().expect("hand-built topology is valid");

    // Energy fleet scaled by core count, suitability uniform in [0.5, 1].
    let core_scales: Vec<f64> =
        topology.server_ids().map(|n| topology.server(n).cores as f64 / 4.0).collect();
    let energy: Vec<Arc<dyn eotora_energy::EnergyModel>> =
        perturbed_fleet(topology.num_servers(), &core_scales, seed)
            .into_iter()
            .map(Arc::from)
            .collect();
    let suitability: Vec<Vec<f64>> = (0..devices)
        .map(|_| (0..topology.num_servers()).map(|_| rng.uniform_in(0.5, 1.0)).collect())
        .collect();
    let system = MecSystem::new(topology, energy, suitability, 0.8, 1.0);

    // Moving devices drive the channel; workloads and prices as in the paper.
    let workload =
        WorkloadModel::diurnal(devices, 24, (50e6, 200e6), (3e6, 10e6), 0.1, rng.fork(1));
    let channel = Box::new(MobilityChannel::new(
        devices,
        area,
        MobilityChannelConfig { speed_range: (20.0, 80.0), ..Default::default() },
        rng.fork(2),
    ));
    let price = PriceModel::nyiso_like(24, 0.1, rng.fork(3));
    let mut provider = StateProvider::new(workload, channel, price);

    let mut controller = EotoraDpp::new(system, DppConfig { v: 100.0, seed, ..Default::default() });
    let mut previous_stations: Option<Vec<usize>> = None;
    let mut handovers = 0usize;

    for slot in 0..48 {
        let beta = provider.observe(slot, controller.system().topology());
        let step = controller.step(&beta);
        let stations: Vec<usize> =
            step.outcome.decision.assignments.iter().map(|a| a.base_station.index()).collect();
        if let Some(prev) = &previous_stations {
            handovers += prev.iter().zip(&stations).filter(|(a, b)| a != b).count();
        }
        previous_stations = Some(stations);
        if slot % 8 == 0 {
            println!(
                "slot {slot:>2}: latency {:.3} s  cost ${:.3}  queue {:.2}",
                step.outcome.objective,
                step.outcome.constraint_excess + controller.system().budget_per_slot(),
                step.queue_after
            );
        }
    }

    println!("\nover 48 slots with moving devices:");
    println!("  average latency : {:.4} s", controller.average_latency());
    println!(
        "  average cost    : ${:.4} (budget ${:.2})",
        controller.average_cost(),
        controller.system().budget_per_slot()
    );
    println!(
        "  base-station handovers: {handovers} ({:.2} per device per slot)",
        handovers as f64 / (devices as f64 * 47.0)
    );
}
