//! One P2-A slot solved four ways: CGBA, MCBA, ROPT, and branch-and-bound.
//!
//! ```text
//! cargo run -p eotora-examples --release --bin compare_algorithms [devices]
//! ```
//!
//! A miniature of the paper's Fig. 4–5: objective values and wall-clock
//! times for all algorithms, plus the exact solver's certified lower bound.

use std::time::Instant;

use eotora_core::baselines::{ExactSolver, McbaSolver, RoptSolver};
use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn main() {
    let devices: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed = 7;
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let state = states.observe(0, system.topology());
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
    println!("P2-A instance: {devices} devices, {} strategies each\n", p2a.num_strategies(0));

    let run = |name: &str, solver: &mut dyn P2aSolver| -> Vec<usize> {
        let mut rng = Pcg32::seed(seed);
        let started = Instant::now();
        let choices = solver.solve(&p2a, &mut rng);
        let elapsed = started.elapsed();
        println!(
            "{name:<6} latency {:.4} s   solved in {:>10.3?}",
            p2a.total_latency(&choices),
            elapsed
        );
        choices
    };

    let cgba_choices = run("CGBA", &mut CgbaSolver::default());
    run("MCBA", &mut McbaSolver::with_iterations(5_000));
    run("ROPT", &mut RoptSolver);

    let exact = ExactSolver { node_budget: 30_000, warm_start: false };
    let started = Instant::now();
    let report = exact.solve_with_report_from(&p2a, Some(&cgba_choices));
    println!(
        "OPT    latency {:.4} s   solved in {:>10.3?}   (lower bound {:.4}, {} nodes, {})",
        report.latency,
        started.elapsed(),
        report.lower_bound,
        report.nodes_expanded,
        if report.proven_optimal { "proven optimal" } else { "budget-limited incumbent" }
    );
    let cgba_latency = p2a.total_latency(&cgba_choices);
    println!(
        "\nCGBA vs best-known solution : {:.4}x (Theorem 2 guarantees ≤ 2.62x vs optimum)",
        cgba_latency / report.latency
    );
    println!(
        "CGBA vs certified lower bound: {:.4}x{}",
        cgba_latency / report.lower_bound,
        if report.proven_optimal {
            ""
        } else {
            " (bound is loose when the search is budget-limited)"
        }
    );
}
