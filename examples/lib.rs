//! Runnable examples for the `eotora` workspace.
//!
//! Each `[[bin]]` target is a self-contained scenario built on the public
//! API:
//!
//! * `quickstart` — smallest end-to-end run: build the paper's system, step
//!   the BDMA-based DPP controller for a day, print the metrics.
//! * `compare_algorithms` — one P2-A slot solved by CGBA, MCBA, ROPT, and
//!   branch-and-bound, with objectives and wall times (Fig. 4–5 in
//!   miniature).
//! * `budget_tradeoff` — the latency/energy-cost frontier as the budget `C̄`
//!   sweeps (Fig. 9 in miniature).
//! * `frequency_scaling` — P2-B in isolation: how optimal clock frequencies
//!   respond to queue pressure and electricity price.
//! * `mobility_scenario` — a hand-built city topology with radius coverage
//!   and the random-waypoint mobility channel, exercising the time-varying
//!   `h_{i,k,t}` path of the formulation.
//!
//! Run any of them with `cargo run -p eotora-examples --release --bin <name>`.
