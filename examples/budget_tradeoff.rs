//! The latency/energy frontier: sweep the energy budget `C̄` and watch the
//! controller trade latency for cost headroom (the paper's Fig. 9 story).
//!
//! ```text
//! cargo run -p eotora-examples --release --bin budget_tradeoff
//! ```

use eotora_sim::report::{ascii_table, num};
use eotora_sim::runner::run_many;
use eotora_sim::scenario::Scenario;

fn main() {
    let budgets = [0.6, 0.8, 1.0, 1.2, 1.4];
    let scenarios: Vec<Scenario> = budgets
        .iter()
        .map(|&b| {
            Scenario::paper(40, 11)
                .with_budget(b)
                .with_horizon(120)
                .with_v(100.0)
                .with_bdma_rounds(3)
                .with_label(format!("C̄=${b:.2}"))
        })
        .collect();

    println!("running {} scenarios in parallel (120 slots each)...", scenarios.len());
    let results = run_many(&scenarios);

    let rows: Vec<Vec<String>> = budgets
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            vec![
                format!("{b:.2}"),
                num(r.latency.tail_average(48)),
                num(r.average_cost),
                if r.budget_satisfied(0.02) { "yes".into() } else { "NO".into() },
                num(r.converged_queue(24)),
            ]
        })
        .collect();
    println!(
        "\n{}",
        ascii_table(
            &["budget $/slot", "tail latency (s)", "avg cost ($)", "within budget", "queue"],
            &rows
        )
    );
    println!("A larger budget buys frequency headroom: latency falls, cost tracks the budget.");
}
