//! The multi-budget extension: one energy budget per server room.
//!
//! ```text
//! cargo run -p eotora-examples --release --bin per_room_budgets
//! ```
//!
//! Splits a fleet-wide budget across the two server rooms (proportionally to
//! their peak power), runs the per-room DPP controller, and then starves one
//! room to show the controller throttling only that room while the other
//! keeps absorbing load.

use eotora_core::multi_budget::{proportional_budgets, MultiBudgetDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};

fn run(label: &str, budgets: Vec<f64>, seed: u64) {
    let system = MecSystem::random(&SystemConfig::paper_defaults(40), seed);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let mut ctl = MultiBudgetDpp::new(system, budgets.clone(), 100.0, 2, seed);
    for t in 0..96 {
        let beta = states.observe(t, ctl.system().topology());
        ctl.step(&beta);
    }
    let avg = ctl.average_cluster_costs();
    println!("{label}:");
    for (m, (cost, budget)) in avg.iter().zip(&budgets).enumerate() {
        println!(
            "  room {m}: avg cost ${cost:.3} / budget ${budget:.3}  (queue {:.2})",
            ctl.backlogs()[m]
        );
    }
    println!("  fleet avg latency: {:.3} s\n", ctl.average_latency());
}

fn main() {
    let seed = 21;
    let system = MecSystem::random(&SystemConfig::paper_defaults(40), seed);
    let balanced = proportional_budgets(&system, 1.0);
    println!(
        "two rooms, peak-power-proportional split of $1.00/slot: ${:.2} + ${:.2}\n",
        balanced[0], balanced[1]
    );

    run("balanced budgets", balanced.clone(), seed);

    // Starve room 0: its queue builds, its servers throttle; room 1 carries on.
    let skewed = vec![balanced[0] * 0.3, balanced[1]];
    run("room 0 starved to 30%", skewed, seed);
}
