//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenTree` — no `syn`/`quote`
//! (the build environment is offline). Supports the shapes this workspace
//! uses: named/tuple/unit structs, enums with unit/newtype/tuple/struct
//! variants, and simple generic type parameters (each parameter receives a
//! `Serialize`/`Deserialize` bound). Container attributes, lifetimes, and
//! where-clauses are rejected with a compile-time panic rather than
//! silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Shape {
    Struct(Body),
    Enum(Vec<(String, Body)>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_serialize(&item))
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(gen_deserialize(&item))
}

fn render(code: String) -> TokenStream {
    code.parse().unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde_derive: malformed attribute near {other:?}"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, context: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier ({context}), found {other:?}"),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.next();
                return true;
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kind = cur.expect_ident("struct/enum keyword");
    let name = cur.expect_ident("type name");
    let generics = parse_generics(&mut cur);
    match kind.as_str() {
        "struct" => {
            let body = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    cur.next();
                    Body::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    cur.next();
                    Body::Tuple(count_tuple_fields(g))
                }
                _ => Body::Unit,
            };
            Item { name, generics, shape: Shape::Struct(body) }
        }
        "enum" => {
            let variants = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item { name, generics, shape: Shape::Enum(variants) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items (only struct/enum)"),
    }
}

fn parse_generics(cur: &mut Cursor) -> Vec<String> {
    if !cur.eat_punct('<') {
        return Vec::new();
    }
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut at_param_start = true;
    while let Some(tok) = cur.next() {
        match &tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return params;
                    }
                }
                ',' if depth == 1 => at_param_start = true,
                '\'' => panic!("serde_derive: lifetimes are not supported"),
                _ => {}
            },
            TokenTree::Ident(id) => {
                if depth == 1 && at_param_start {
                    let id = id.to_string();
                    if id == "const" {
                        panic!("serde_derive: const generics are not supported");
                    }
                    params.push(id);
                    at_param_start = false;
                }
            }
            _ => {}
        }
    }
    panic!("serde_derive: unterminated generic parameter list");
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        fields.push(cur.expect_ident("field name"));
        if !cur.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{}`", fields.last().unwrap());
        }
        skip_type_until_comma(&mut cur);
    }
    fields
}

/// Consumes one type, stopping after the field-separating comma (or at the
/// end of the stream). Tracks `<`/`>` nesting manually: at the token-tree
/// level, angle brackets are plain punctuation while `()[]{}` arrive as
/// whole groups.
fn skip_type_until_comma(cur: &mut Cursor) {
    let mut angle = 0usize;
    while let Some(tok) = cur.next() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            return count;
        }
        cur.skip_visibility();
        if cur.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type_until_comma(&mut cur);
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Body)> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let body = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                Body::Tuple(count_tuple_fields(g))
            }
            _ => Body::Unit,
        };
        if cur.eat_punct('=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        cur.eat_punct(',');
        variants.push((name, body));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        let plain = item.generics.join(", ");
        (format!("<{}>", bounded.join(", ")), format!("<{plain}>"))
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let (params, args) = impl_header(item, "Serialize");
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Body::Named(fields)) => named_to_value(fields, "&self."),
        Shape::Struct(Body::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, body)| {
                    let tagged = |inner: String| {
                        format!(
                            "::serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), {inner})])"
                        )
                    };
                    match body {
                        Body::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Body::Named(fields) => {
                            let pat: Vec<&str> = fields.iter().map(String::as_str).collect();
                            let inner = named_to_value(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => {},",
                                pat.join(", "),
                                tagged(inner)
                            )
                        }
                        Body::Tuple(1) => format!(
                            "{name}::{vname}(f0) => {},",
                            tagged("::serde::Serialize::to_value(f0)".to_string())
                        ),
                        Body::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {},",
                                binds.join(", "),
                                tagged(format!(
                                    "::serde::Value::Array(vec![{}])",
                                    items.join(", ")
                                ))
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{params} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_to_value(fields: &[String], accessor: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({accessor}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (params, args) = impl_header(item, "Deserialize");
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => format!(
            "if v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{ \
             ::std::result::Result::Err(::serde::Error::expected(\"null\", \"{name}\", v)) }}"
        ),
        Shape::Struct(Body::Named(fields)) => format!(
            "let fields = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\", v))?;\n\
             ::std::result::Result::Ok({name} {{ {} }})",
            named_from_value(name, fields)
        ),
        Shape::Struct(Body::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\", v))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, found {{}}\", items.len()))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| matches!(b, Body::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, body)| match body {
                    Body::Unit => None,
                    Body::Named(fields) => Some(format!(
                        "\"{vname}\" => {{\n\
                           let fields = inner.as_object().ok_or_else(|| \
                               ::serde::Error::expected(\"object\", \"{name}::{vname}\", inner))?;\n\
                           ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                         }}",
                        named_from_value(&format!("{name}::{vname}"), fields)
                    )),
                    Body::Tuple(1) => Some(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => {{\n\
                               let items = inner.as_array().ok_or_else(|| \
                                   ::serde::Error::expected(\"array\", \"{name}::{vname}\", inner))?;\n\
                               if items.len() != {n} {{ return ::std::result::Result::Err(\
                                   ::serde::Error::custom(\"wrong tuple-variant arity\")); }}\n\
                               ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"unknown variant `{{other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (tag, inner) = &fields[0];\n\
                     match tag.as_str() {{\n\
                       {}\n\
                       other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                           \"unknown variant `{{other}}` of {name}\"))),\n\
                     }}\n\
                   }}\n\
                   _ => ::std::result::Result::Err(::serde::Error::expected(\
                       \"string or single-key object\", \"{name}\", v)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl{params} ::serde::Deserialize for {name}{args} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_from_value(ty_label: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::get_field(fields, \"{f}\", \"{ty_label}\")?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}
