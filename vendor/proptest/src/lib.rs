//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, [`Strategy`] with
//! `prop_map`, range strategies, tuple composition,
//! `prop::collection::vec`, and `prop::bool::ANY` — backed by a
//! deterministic per-test RNG. Failing cases report their generated
//! arguments; there is no shrinking (the first failing case is reported
//! as-is).

/// Test-runner plumbing: the deterministic RNG and case-failure error.
pub mod test_runner {
    /// SplitMix64-based generator seeded from the test's module path, so
    /// runs are reproducible without any persistence files.
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejection sampling is not used.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0, max_global_rejects: 0 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start <= self.end, "invalid float range strategy");
                if self.start == self.end {
                    // proptest accepts degenerate float ranges; yield the point.
                    return self.start;
                }
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit_f64();
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Built-in strategy modules (`prop::collection`, `prop::bool`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy for `Vec`s with element strategy `S` and a size range.
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `vec(element, sizes)`: vectors whose length is drawn from
        /// `sizes` and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// The strategy type behind [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                let __args = format!(
                    concat!("" $(, stringify!($arg), " = {:?}; ")*),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __args,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` for property bodies: fails the case instead of panicking, so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..1000 {
            let (a, b, c) = (1usize..8, -3i64..3, 0.0f64..2.0).sample(&mut rng);
            assert!((1..8).contains(&a));
            assert!((-3..3).contains(&b));
            assert!((0.0..2.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("v");
        let s = prop::collection::vec(0.0f64..1.0, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::test_runner::TestRng::deterministic("m");
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

        /// The macro itself: generated args satisfy their strategies.
        #[test]
        fn macro_generates_valid_args(x in 1usize..100, b in prop::bool::ANY) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(b || !b, true);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..Default::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
