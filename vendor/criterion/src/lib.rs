//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) as a plain warmup-plus-measure timing loop that
//! prints mean wall-clock time per iteration. There is no statistical
//! analysis, outlier rejection, or report persistence.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility (all batches run one routine call per setup here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: u64,
    /// Mean time per iteration, recorded for the caller to print.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly after a short warmup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / self.sample_size as u32;
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size.min(3) {
            black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed_per_iter = total / self.sample_size as u32;
    }
}

fn run_bench(label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { sample_size: sample_size.max(1), elapsed_per_iter: Duration::ZERO };
    f(&mut bencher);
    println!("bench {label:<50} {:>12.3?}/iter", bencher.elapsed_per_iter);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; this harness has no target time.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// Declares a benchmark-group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("square", |b| b.iter(|| black_box(3u64).pow(2)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| vec![n; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn bench_function_on_criterion_directly() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
