//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! The workspace brings its own generator (`eotora_util::rng::Pcg32`) and
//! only relies on `rand` for the trait plumbing: implementing
//! [`rand_core::TryRng`] yields [`Rng`] through a blanket impl for
//! infallible generators, and [`RngExt::random_range`] provides uniform
//! sampling over `Range` for the primitive numeric types.

/// Core generator traits (mirrors the `rand_core` facade).
pub mod rand_core {
    /// A fallible random generator; the infallible case (`Error =
    /// Infallible`) receives the [`crate::Rng`] blanket impl.
    pub trait TryRng {
        /// Error produced by the generator.
        type Error;

        /// Next 32 random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

        /// Next 64 random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

        /// Fills `dest` with random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible random generator.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T> Rng for T
where
    T: rand_core::TryRng<Error = core::convert::Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }
}

/// Extension methods on [`Rng`] (mirrors `rand::RngExt`).
pub trait RngExt: Rng {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, non-finite).
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<T: Rng> RngExt for T {}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply range reduction (bias < 2^-64, fine for
                // simulation use).
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(
                    lo.is_finite() && hi.is_finite() && lo < hi,
                    "invalid range in random_range"
                );
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                // Guard the open upper bound against rounding.
                if v as $t >= hi { lo } else { v as $t }
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use core::convert::Infallible;

    struct SplitMix(u64);

    impl rand_core::TryRng for SplitMix {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            self.try_next_u64().map(|v| (v >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            Ok(z ^ (z >> 31))
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dest.chunks_mut(8) {
                let w = self.try_next_u64()?.to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: u32 = rng.random_range(0..10);
            assert!(y < 10);
            let z: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SplitMix(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_via_blanket_impl() {
        let mut rng = SplitMix(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
