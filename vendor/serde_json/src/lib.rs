//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored [`serde::Value`] tree as JSON text.
//! Integers roundtrip exactly (`i64`/`u64` stay integers), floats use
//! Rust's shortest-roundtrip formatting, and non-finite floats serialize
//! as `null` (JSON has no representation for them).

use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-roundtrip and always includes a dot or
                // exponent (e.g. "1.0", "1e300"), both valid JSON.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // post-escape increment below.
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::new("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| Error::new("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn u64_beyond_f64_precision_roundtrips() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 2.5e17, f64::MAX] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tüñí\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(), "A\u{1F600}");
    }

    #[test]
    fn nested_collections() {
        let v: Vec<Vec<f64>> = vec![vec![1.0], vec![], vec![2.0, 3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0],[],[2.0,3.0]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u64, f64)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
