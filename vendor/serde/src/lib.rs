//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, self-contained serialization framework under the
//! `serde` name (wired up through `[patch.crates-io]`). It supports the
//! subset the workspace actually uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on plain structs (named, tuple,
//!   unit), enums with unit/newtype/tuple/struct variants, and simple
//!   generic type parameters;
//! - primitives, `String`, `Option`, `Vec`, tuples, and string-keyed maps.
//!
//! Unlike real serde there is no zero-copy visitor machinery: values
//! serialize into an intermediate [`Value`] tree which `serde_json`
//! renders/parses. That keeps the whole stack a few hundred lines while
//! preserving the external API shape (`serde_json::to_string`,
//! `from_str`, derives). Missing object fields are always errors — there
//! is no `#[serde(default)]`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation all
/// serialization goes through.
///
/// Object fields keep insertion order (backed by a `Vec`), so derived
/// serialization is deterministic and follows declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Signed integers (also covers negative JSON numbers without a dot).
    I64(i64),
    /// Unsigned integers that do not fit `i64` or come from unsigned types.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric payload as `u64` if exactly representable, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64` if exactly representable, or `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a caller-provided message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// "expected X while deserializing Y, found Z" helper.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Error(format!("expected {what} while deserializing {ty}, found {}", found.kind()))
    }

    /// Missing-field helper for derived struct impls.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up `name` in an object's fields (derived impls call this).
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name, ty))
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t), v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t), v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::expected("number", "f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", "String", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string for char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", "Vec", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::expected("null", "()", v))
        }
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $t:ident),+ ; $len:literal) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", "tuple", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a {}-element array for tuple, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(0: A; 1);
impl_tuple!(0: A, 1: B; 2);
impl_tuple!(0: A, 1: B, 2: C; 3);
impl_tuple!(0: A, 1: B, 2: C, 3: D; 4);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", "BTreeMap", v))?;
        fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching BTreeMap behaviour.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", "HashMap", v))?;
        fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
        assert_eq!(Some(5u32).to_value(), Value::U64(5));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(u64::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn tuple_arity_checked() {
        let v = Value::Array(vec![Value::F64(1.0)]);
        assert!(<(f64, f64)>::from_value(&v).is_err());
    }

    #[test]
    fn map_roundtrip_preserves_entries() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        let back = BTreeMap::<String, u64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
