//! Fig. 8 bench: a short DPP horizon per penalty weight V (the sweep whose
//! converged backlog/latency the figure plots).
//!
//! The sweep rows are printed by
//! `cargo run -p eotora-bench --release --bin figures -- --fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_sim::runner::run;
use eotora_sim::scenario::Scenario;

fn bench(c: &mut Criterion) {
    let (devices, horizon) = if eotora_bench::quick_mode() { (10, 12) } else { (50, 24) };
    let mut group = c.benchmark_group("fig8_dpp_horizon");
    group.sample_size(10);
    for v in [10.0, 100.0, 500.0] {
        let scenario =
            Scenario::paper(devices, 88).with_v(v).with_horizon(horizon).with_bdma_rounds(2);
        group.bench_with_input(BenchmarkId::from_parameter(v), &scenario, |b, scenario| {
            b.iter(|| std::hint::black_box(run(scenario)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
