//! Microbenchmarks of the numerical kernels substituting CVX/Gurobi:
//! scalar minimizers (bisection vs golden section vs Brent vs the Cardano
//! closed form) on the exact P2-B per-server objective, and one full P2-B
//! fleet solve.

use criterion::{criterion_group, criterion_main, Criterion};
use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::p2b::solve_p2b;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_optim::cubic::root_in_interval;
use eotora_optim::scalar::{minimize_bisection, minimize_brent, minimize_golden};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn bench(c: &mut Criterion) {
    // The per-server P2-B objective at realistic scales.
    let (v, a_load, q, p) = (100.0, 2.0e7, 40.0, 0.06);
    let (qa, qb) = (4.6 * 16.0, 4.1 * 16.0);
    let c_w = q * p * 1e-3;
    let f = |w: f64| v * a_load / w + c_w * (qa * (w / 1e9) * (w / 1e9) + qb * (w / 1e9));
    let df = |w: f64| -v * a_load / (w * w) + c_w * (2.0 * qa * w / 1e18 + qb / 1e9);
    let (lo, hi) = (1.8e9, 3.6e9);

    let mut group = c.benchmark_group("p2b_scalar_kernels");
    group.bench_function("bisection", |b| {
        b.iter(|| std::hint::black_box(minimize_bisection(f, df, lo, hi, 1.0, 200)))
    });
    group.bench_function("golden_section", |b| {
        b.iter(|| std::hint::black_box(minimize_golden(f, lo, hi, 1.0, 200)))
    });
    group.bench_function("brent", |b| {
        b.iter(|| std::hint::black_box(minimize_brent(f, lo, hi, 1e-12, 200)))
    });
    group.bench_function("cardano_closed_form", |b| {
        b.iter(|| {
            std::hint::black_box(root_in_interval(
                2.0 * qa * c_w / 1e18,
                qb * c_w / 1e9,
                0.0,
                -(v * a_load),
                lo,
                hi,
            ))
        })
    });
    group.finish();

    // Full fleet P2-B plus one CGBA solve for end-to-end context.
    let devices = if eotora_bench::quick_mode() { 20 } else { 100 };
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 3);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 3);
    let state = states.observe(0, system.topology());
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
    let mut rng = Pcg32::seed(4);
    let choices = CgbaSolver::default().solve(&p2a, &mut rng);
    let assignments = p2a.assignments_from_choices(&choices);

    c.bench_function("p2b_full_fleet", |b| {
        b.iter(|| std::hint::black_box(solve_p2b(&system, &state, &assignments, 100.0, 40.0)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
