//! Fig. 3 bench: the i7-3770K quadratic fit and perturbed-fleet generation.
//!
//! Regenerate the plotted curves with
//! `cargo run -p eotora-bench --release --bin figures -- --fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use eotora_sim::experiments::energy_fit::energy_fit;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3_fit_and_perturb", |b| {
        b.iter(|| energy_fit(std::hint::black_box(16), 3));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
