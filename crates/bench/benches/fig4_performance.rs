//! Fig. 4 bench: solution quality kernels — one P2-A solve per algorithm.
//!
//! Criterion measures the solve; the objective values plotted in Fig. 4 come
//! from `cargo run -p eotora-bench --release --bin figures -- --fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::baselines::{McbaSolver, RoptSolver};
use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn build(devices: usize, seed: u64) -> (MecSystem, P2aProblem) {
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let state = states.observe(0, system.topology());
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
    (system, p2a)
}

fn bench(c: &mut Criterion) {
    let devices = if eotora_bench::quick_mode() { 30 } else { 100 };
    let (_system, p2a) = build(devices, 2023);
    let mut group = c.benchmark_group("fig4_solvers");
    group.sample_size(10);

    let mut run = |name: &str, solver: &mut dyn P2aSolver| {
        group.bench_with_input(BenchmarkId::new(name, devices), &devices, |b, _| {
            b.iter(|| {
                let mut rng = Pcg32::seed(7);
                std::hint::black_box(solver.solve(&p2a, &mut rng))
            });
        });
    };
    run("cgba", &mut CgbaSolver::default());
    run("mcba", &mut McbaSolver::with_iterations(5_000));
    run("ropt", &mut RoptSolver);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
