//! Fig. 7 bench: one full BDMA-based DPP slot (the per-slot work behind the
//! queue-backlog traces), at V = 50 and V = 100.
//!
//! The Q(t) traces themselves are printed by
//! `cargo run -p eotora-bench --release --bin figures -- --fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};

fn bench(c: &mut Criterion) {
    let devices = if eotora_bench::quick_mode() { 20 } else { 100 };
    let mut group = c.benchmark_group("fig7_dpp_slot");
    group.sample_size(10);
    for v in [50.0, 100.0] {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 77);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 77);
        let beta = states.observe(0, system.topology());
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter_batched(
                || EotoraDpp::new(system.clone(), DppConfig { v, ..Default::default() }),
                |mut dpp| std::hint::black_box(dpp.step(&beta)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
