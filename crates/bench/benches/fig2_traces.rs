//! Fig. 2 bench: generating the non-iid state traces.
//!
//! Regenerate the plotted series with
//! `cargo run -p eotora-bench --release --bin figures -- --fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_sim::experiments::traces::traces;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_traces");
    for hours in [72u64, 24 * 30] {
        group.bench_with_input(BenchmarkId::from_parameter(hours), &hours, |b, &hours| {
            b.iter(|| traces(std::hint::black_box(hours), 0.08, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
