//! Fig. 6 bench: CGBA(λ) convergence for increasing λ — fewer iterations,
//! hence faster solves, as the stopping condition loosens.
//!
//! The objective/iteration rows are printed by
//! `cargo run -p eotora-bench --release --bin figures -- --fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_game::CgbaConfig;
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn bench(c: &mut Criterion) {
    let devices = if eotora_bench::quick_mode() { 30 } else { 100 };
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 66);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 66);
    let state = states.observe(0, system.topology());
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());

    let mut group = c.benchmark_group("fig6_cgba_lambda");
    group.sample_size(10);
    for lambda in [0.0, 0.04, 0.08, 0.12] {
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, &lambda| {
            b.iter(|| {
                let mut rng = Pcg32::seed(3);
                let cfg = CgbaConfig { lambda, ..Default::default() };
                std::hint::black_box(p2a.solve_cgba(&cfg, &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
