//! Fig. 5 bench: CGBA solve time as the device count grows (the paper's
//! time-complexity sweep I ∈ {80, …, 120}).
//!
//! The cross-algorithm wall-clock table is printed by
//! `cargo run -p eotora-bench --release --bin figures -- --fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn bench(c: &mut Criterion) {
    let counts: &[usize] =
        if eotora_bench::quick_mode() { &[20, 40] } else { &[80, 90, 100, 110, 120] };
    let mut group = c.benchmark_group("fig5_cgba_scaling");
    group.sample_size(10);
    for &devices in counts {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 11);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 11);
        let state = states.observe(0, system.topology());
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        group.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, _| {
            b.iter(|| {
                let mut rng = Pcg32::seed(5);
                let mut solver = CgbaSolver::default();
                std::hint::black_box(solver.solve(&p2a, &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
