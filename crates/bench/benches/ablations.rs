//! Ablation benches: the computational kernels behind the design-choice
//! studies (BDMA rounds, CGBA scheduling rule, greedy warm start).
//!
//! The ablation tables are printed by
//! `cargo run -p eotora-bench --release --bin figures -- --ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::baselines::GreedySolver;
use eotora_core::bdma::{solve_p2, BdmaConfig, CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_game::{CgbaConfig, SchedulingRule};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn bench(c: &mut Criterion) {
    let devices = if eotora_bench::quick_mode() { 20 } else { 60 };
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 2024);
    let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 2024);
    let state = states.observe(0, system.topology());
    let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());

    let mut group = c.benchmark_group("ablation_bdma_rounds");
    group.sample_size(10);
    for z in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(z), &z, |b, &z| {
            b.iter(|| {
                let mut solver = CgbaSolver::default();
                let mut rng = Pcg32::seed(7);
                std::hint::black_box(solve_p2(
                    &system,
                    &state,
                    100.0,
                    20.0,
                    &BdmaConfig { rounds: z, ..Default::default() },
                    &mut solver,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    for (name, rule) in
        [("max_gain", SchedulingRule::MaxGain), ("round_robin", SchedulingRule::RoundRobin)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = Pcg32::seed(9);
                let cfg = CgbaConfig { scheduling: rule, ..Default::default() };
                std::hint::black_box(p2a.solve_cgba(&cfg, &mut rng))
            });
        });
    }
    group.finish();

    c.bench_function("ablation_greedy_assign", |b| {
        b.iter(|| std::hint::black_box(GreedySolver::assign(&p2a)));
    });
    // Keep the solver trait import exercised (greedy through the trait).
    let mut g = GreedySolver;
    let mut rng = Pcg32::seed(1);
    std::hint::black_box(g.solve(&p2a, &mut rng));
}

criterion_group!(benches, bench);
criterion_main!(benches);
