//! Per-slot solve benchmark for the zero-rebuild engine.
//!
//! Replays the same online DPP loop twice at each fleet scale:
//!
//! * **engine** — the production path: one persistent [`SlotWorkspace`]
//!   reused across slots (`P2aProblem::rebuild` instead of fresh builds,
//!   incremental CGBA gains, retained frequency buffer), and
//! * **reference** — the pre-refactor path: fresh game build + full
//!   validation every BDMA round, naive-rescan CGBA, per-round clones.
//!
//! Both consume identically seeded RNG streams, so the latency series must
//! match bit for bit — asserted here, which makes the benchmark double as
//! the at-scale equivalence check. p50/p95 per-slot solve times and the
//! engine-vs-reference speedups land in `BENCH_slot_solve.json` at the repo
//! root (or `target/BENCH_slot_solve.quick.json` under `EOTORA_QUICK`, with
//! scaled-down sizes).
//!
//! Not a Criterion bench on purpose: the two paths must advance in
//! lock-step through the same slot sequence (the workspace carries state
//! across slots), which Criterion's iteration model cannot express.

use std::time::Instant;

use eotora_core::bdma::{solve_p2_in, solve_p2_reference, BdmaConfig, CgbaSolver};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_core::workspace::SlotWorkspace;
use eotora_game::CgbaConfig;
use eotora_states::{PaperStateConfig, StateProvider, SystemState};
use eotora_util::rng::Pcg32;

const SEED: u64 = 7001;
const V: f64 = 100.0;
const BDMA_ROUNDS: usize = 2;

struct ScaleResult {
    devices: usize,
    horizon: u64,
    engine_p50_s: f64,
    engine_p95_s: f64,
    reference_p50_s: f64,
    reference_p95_s: f64,
    p50_speedup: f64,
    p95_speedup: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_states(system: &MecSystem, horizon: u64) -> Vec<SystemState> {
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), SEED);
    (0..horizon).map(|t| provider.observe(t, system.topology())).collect()
}

/// Runs the online loop once, timing each slot's solve; returns the
/// latency series and per-slot wall-clock seconds.
fn run_loop(
    system: &MecSystem,
    states: &[SystemState],
    mut solve: impl FnMut(
        &MecSystem,
        &SystemState,
        f64,
        u64,
        &mut Pcg32,
    ) -> eotora_core::bdma::P2Solution,
) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Pcg32::seed_stream(SEED, 0xD99);
    let budget = system.budget_per_slot();
    let mut queue = 0.0;
    let mut latencies = Vec::with_capacity(states.len());
    let mut times = Vec::with_capacity(states.len());
    for (slot, state) in states.iter().enumerate() {
        let start = Instant::now();
        let sol = solve(system, state, queue, slot as u64, &mut rng);
        times.push(start.elapsed().as_secs_f64());
        latencies.push(sol.latency);
        // Same association as `VirtualQueue::update` (form the excess
        // first) so the two loops share the queue trajectory exactly.
        let excess = sol.energy_cost - budget;
        queue = (queue + excess).max(0.0);
    }
    (latencies, times)
}

fn bench_scale(devices: usize, horizon: u64) -> ScaleResult {
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), SEED);
    let states = record_states(&system, horizon);
    let bdma = BdmaConfig { rounds: BDMA_ROUNDS };
    let cgba = CgbaConfig::default();

    let mut workspace = SlotWorkspace::new();
    let mut solver = CgbaSolver::default();
    let (engine_lat, mut engine_times) =
        run_loop(&system, &states, |sys, state, queue, slot, rng| {
            solve_p2_in(
                sys,
                state,
                V,
                queue,
                &bdma,
                &mut solver,
                rng,
                slot,
                &eotora_obs::NoopRecorder,
                &mut workspace,
            )
        });

    let (ref_lat, mut ref_times) = run_loop(&system, &states, |sys, state, queue, _slot, rng| {
        solve_p2_reference(sys, state, V, queue, &bdma, &cgba, rng)
    });

    assert_eq!(
        engine_lat, ref_lat,
        "engine and reference latency series must be bit-identical at I={devices}"
    );

    engine_times.sort_by(f64::total_cmp);
    ref_times.sort_by(f64::total_cmp);
    let engine_p50_s = quantile(&engine_times, 0.50);
    let engine_p95_s = quantile(&engine_times, 0.95);
    let reference_p50_s = quantile(&ref_times, 0.50);
    let reference_p95_s = quantile(&ref_times, 0.95);
    ScaleResult {
        devices,
        horizon,
        engine_p50_s,
        engine_p95_s,
        reference_p50_s,
        reference_p95_s,
        p50_speedup: reference_p50_s / engine_p50_s.max(1e-12),
        p95_speedup: reference_p95_s / engine_p95_s.max(1e-12),
    }
}

fn main() {
    let quick = eotora_bench::quick_mode();
    // Quick mode keeps the same two-scale shape at smoke-test sizes.
    let scales: &[(usize, u64)] =
        if quick { &[(10, 6), (20, 6)] } else { &[(30, 100), (200, 100)] };

    let mut results = Vec::new();
    for &(devices, horizon) in scales {
        eprintln!("slot_solve: I={devices}, {horizon} slots, z={BDMA_ROUNDS} …");
        let r = bench_scale(devices, horizon);
        eprintln!(
            "  engine p50 {:.3} ms / p95 {:.3} ms | reference p50 {:.3} ms / p95 {:.3} ms | speedup p50 {:.2}x",
            r.engine_p50_s * 1e3,
            r.engine_p95_s * 1e3,
            r.reference_p50_s * 1e3,
            r.reference_p95_s * 1e3,
            r.p50_speedup,
        );
        results.push(r);
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"devices\": {},\n",
                    "      \"horizon_slots\": {},\n",
                    "      \"bdma_rounds\": {},\n",
                    "      \"engine_p50_s\": {:e},\n",
                    "      \"engine_p95_s\": {:e},\n",
                    "      \"reference_p50_s\": {:e},\n",
                    "      \"reference_p95_s\": {:e},\n",
                    "      \"p50_speedup\": {:.3},\n",
                    "      \"p95_speedup\": {:.3}\n",
                    "    }}"
                ),
                r.devices,
                r.horizon,
                BDMA_ROUNDS,
                r.engine_p50_s,
                r.engine_p95_s,
                r.reference_p50_s,
                r.reference_p95_s,
                r.p50_speedup,
                r.p95_speedup,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"slot_solve\",\n  \"quick\": {},\n  \"seed\": {},\n  \"scales\": [\n{}\n  ]\n}}\n",
        quick,
        SEED,
        entries.join(",\n")
    );

    // Bench CWD is the package dir; the full-scale run records its numbers
    // at the repo root where ISSUE/EXPERIMENTS expect them.
    let out = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_slot_solve.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slot_solve.json")
    };
    std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
}
