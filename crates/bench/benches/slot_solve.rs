//! Per-slot solve benchmark for the zero-rebuild engine.
//!
//! Replays the same online DPP loop three times at each fleet scale:
//!
//! * **engine** — the production cold path: one persistent
//!   [`SlotWorkspace`] reused across slots (`P2aProblem::rebuild` instead
//!   of fresh builds, incremental CGBA gains, retained frequency buffer),
//! * **reference** — the pre-refactor path: fresh game build + full
//!   validation every BDMA round, naive-rescan CGBA, per-round clones, and
//! * **warm** — the cross-slot warm-start path (`StartPolicy::Warm` at the
//!   paper's z = 5 with ε-termination), which seeds each slot from the
//!   previous slot's incumbent and stops alternating once rounds stop
//!   paying.
//!
//! Engine and reference consume identically seeded RNG streams, so their
//! latency series must match bit for bit — asserted here, which makes the
//! benchmark double as the at-scale equivalence check. The warm arm takes
//! different (equally valid) decisions, so it reports `rounds_used_mean`
//! and `warm_speedup` (vs the cold engine's p50) instead of bit-identity.
//! A fourth **journal** arm repeats the engine path with the durability
//! subsystem's per-slot frame append (record encode, CRC framing,
//! `EveryK(16)` fsync — the `run --checkpoint-dir` default) and times
//! that appended work on its own each slot: `journal_overhead_pct` is the
//! p50 journal work relative to the p50 engine solve. (Differencing two
//! end-to-end p50s would drown the microsecond-scale append in
//! millisecond-scale scheduler noise.) ci.sh's quick-mode gate fails if
//! the overhead exceeds 5% at the 30-device scale.
//! A fifth **live** arm repeats the engine path with a full in-memory
//! [`TelemetrySession`] attached (sharded live registry, flight-recorder
//! ring, health monitor) — which must not perturb the decision sequence —
//! and times one slot's worth of hot-path telemetry traffic on its own
//! each slot: `live_overhead_pct` is the p50 of that emission batch
//! relative to the p50 engine solve. ci.sh's quick-mode gate fails if it
//! exceeds 2% at the 30-device scale.
//!
//! A separate **shard** section replays the loop on the scale-out island
//! topology ([`Scenario::scale_up`]) twice — sequential [`CgbaSolver`]
//! versus [`ShardedCgbaSolver`] on the process worker pool — at 10k and
//! 100k devices. The island resource graph is separable, so the two runs
//! must be decision-identical (asserted); `shard_speedup` is the
//! sequential p50 over the sharded p50, and each row records the worker
//! count so the CI guard can skip the speedup requirement on small boxes.
//!
//! A **speculation** section runs the deterministic periodic-price
//! scenario through the warm engine and through the speculative pipeline
//! (periodic-price predictor at tolerance 0). The per-slot solve span of
//! the speculative run covers only the arrival-time repair pass — the
//! staged solve happens in the inter-slot gap — so its p50
//! (`critical_path_p50_s`) against the warm engine's full-solve p50 is
//! the latency the pre-solve takes off the critical path.
//! `spec_hit_rate` records the fraction of slots that adopted a staged
//! solve; the runs must stay decision-identical (asserted). ci.sh's
//! quick-mode gate requires hit rate ≥ 0.5 and speedup ≥ 1.3x.
//!
//! p50/p95 per-slot solve times and the speedups land in
//! `BENCH_slot_solve.json` at the repo root (or
//! `target/BENCH_slot_solve.quick.json` under `EOTORA_QUICK`, with
//! scaled-down sizes).
//!
//! Not a Criterion bench on purpose: the two paths must advance in
//! lock-step through the same slot sequence (the workspace carries state
//! across slots), which Criterion's iteration model cannot express.

use std::time::Instant;

use eotora_core::bdma::{solve_p2_in, solve_p2_reference, BdmaConfig, CgbaSolver, StartPolicy};
use eotora_core::sharded::ShardedCgbaSolver;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_core::workspace::SlotWorkspace;
use eotora_durability::{FsyncPolicy, JournalWriter, SlotRecord};
use eotora_game::CgbaConfig;
use eotora_obs::{Recorder, TelemetrySession, TraceEvent};
use eotora_states::{PaperStateConfig, StateProvider, SystemState};
use eotora_util::rng::Pcg32;

const SEED: u64 = 7001;
const V: f64 = 100.0;
const BDMA_ROUNDS: usize = 2;
/// The warm arm runs the paper's full z = 5 and lets ε-termination decide
/// how many rounds each slot actually needs.
const WARM_ROUNDS: usize = 5;

struct ScaleResult {
    devices: usize,
    horizon: u64,
    engine_p50_s: f64,
    engine_p95_s: f64,
    reference_p50_s: f64,
    reference_p95_s: f64,
    p50_speedup: f64,
    p95_speedup: f64,
    warm_p50_s: f64,
    warm_p95_s: f64,
    rounds_used_mean: f64,
    warm_speedup: f64,
    journal_p50_s: f64,
    journal_overhead_pct: f64,
    live_p50_s: f64,
    live_overhead_pct: f64,
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn record_states(system: &MecSystem, horizon: u64) -> Vec<SystemState> {
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), SEED);
    (0..horizon).map(|t| provider.observe(t, system.topology())).collect()
}

/// Runs the online loop once, timing each slot's solve; returns the
/// latency series, per-slot wall-clock seconds, and per-slot BDMA rounds
/// actually executed.
fn run_loop(
    system: &MecSystem,
    states: &[SystemState],
    mut solve: impl FnMut(
        &MecSystem,
        &SystemState,
        f64,
        u64,
        &mut Pcg32,
    ) -> eotora_core::bdma::P2Solution,
) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let mut rng = Pcg32::seed_stream(SEED, 0xD99);
    let budget = system.budget_per_slot();
    let mut queue = 0.0;
    let mut latencies = Vec::with_capacity(states.len());
    let mut times = Vec::with_capacity(states.len());
    let mut rounds = Vec::with_capacity(states.len());
    for (slot, state) in states.iter().enumerate() {
        let start = Instant::now();
        let sol = solve(system, state, queue, slot as u64, &mut rng);
        times.push(start.elapsed().as_secs_f64());
        latencies.push(sol.latency);
        rounds.push(sol.rounds_used);
        // Same association as `VirtualQueue::update` (form the excess
        // first) so the two loops share the queue trajectory exactly.
        let excess = sol.energy_cost - budget;
        queue = (queue + excess).max(0.0);
    }
    (latencies, times, rounds)
}

fn bench_scale(devices: usize, horizon: u64) -> ScaleResult {
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), SEED);
    let states = record_states(&system, horizon);
    let bdma = BdmaConfig { rounds: BDMA_ROUNDS, ..Default::default() };
    let cgba = CgbaConfig::default();

    let mut workspace = SlotWorkspace::new();
    let mut solver = CgbaSolver::default();
    let (engine_lat, mut engine_times, _) =
        run_loop(&system, &states, |sys, state, queue, slot, rng| {
            solve_p2_in(
                sys,
                state,
                V,
                queue,
                &bdma,
                &mut solver,
                rng,
                slot,
                &eotora_obs::NoopRecorder,
                &mut workspace,
            )
        });

    let (ref_lat, mut ref_times, _) =
        run_loop(&system, &states, |sys, state, queue, _slot, rng| {
            solve_p2_reference(sys, state, V, queue, &bdma, &cgba, rng)
        });

    assert_eq!(
        engine_lat, ref_lat,
        "engine and reference latency series must be bit-identical at I={devices}"
    );

    // Warm arm: fresh workspace and solver (nothing carried over from the
    // cold loops), the paper's z with ε-termination deciding the rest.
    let warm_bdma = BdmaConfig { rounds: WARM_ROUNDS, epsilon: 1e-9, start: StartPolicy::Warm };
    let mut warm_workspace = SlotWorkspace::new();
    let mut warm_solver = CgbaSolver::default();
    let (_, mut warm_times, warm_rounds) =
        run_loop(&system, &states, |sys, state, queue, slot, rng| {
            solve_p2_in(
                sys,
                state,
                V,
                queue,
                &warm_bdma,
                &mut warm_solver,
                rng,
                slot,
                &eotora_obs::NoopRecorder,
                &mut warm_workspace,
            )
        });

    // Journal arm: the engine path plus the per-slot durability frame
    // append inside the timed region — the exact extra work `run
    // --checkpoint-dir` does each slot (record encode, CRC, buffered
    // write, fsync every 16th frame).
    let journal_dir =
        std::env::temp_dir().join(format!("eotora-bench-journal-{}-{devices}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let mut writer = JournalWriter::create(&journal_dir, FsyncPolicy::EveryK(16), 64 * 1024 * 1024)
        .unwrap_or_else(|e| {
            panic!("cannot create bench journal in {}: {e}", journal_dir.display())
        });
    let mut journal_workspace = SlotWorkspace::new();
    let mut journal_solver = CgbaSolver::default();
    let mut journal_work: Vec<f64> = Vec::new();
    let (journal_lat, _, _) = run_loop(&system, &states, |sys, state, queue, slot, rng| {
        let sol = solve_p2_in(
            sys,
            state,
            V,
            queue,
            &bdma,
            &mut journal_solver,
            rng,
            slot,
            &eotora_obs::NoopRecorder,
            &mut journal_workspace,
        );
        let journal_start = Instant::now();
        {
            let record = SlotRecord {
                slot,
                latency_s: sol.latency,
                cost_usd: sol.energy_cost,
                queue,
                price: 0.18,
                solve_time_s: 1e-3,
                fairness: 1.0,
                handover_rate: 0.0,
                mean_clock_ghz: sol.freqs_hz.iter().sum::<f64>()
                    / sol.freqs_hz.len().max(1) as f64
                    / 1e9,
                rounds_used: sol.rounds_used as f64,
                stations: sol.assignments.iter().map(|a| a.base_station.index() as u32).collect(),
                stages: vec![
                    ("p2a".to_owned(), 1e-4),
                    ("p2b".to_owned(), 1e-4),
                    ("queue_update".to_owned(), 1e-6),
                ],
            };
            writer
                .append(&record.encode())
                .unwrap_or_else(|e| panic!("bench journal append failed: {e}"));
        }
        journal_work.push(journal_start.elapsed().as_secs_f64());
        sol
    });
    writer.sync().unwrap_or_else(|e| panic!("bench journal sync failed: {e}"));
    drop(writer);
    let _ = std::fs::remove_dir_all(&journal_dir);
    assert_eq!(
        journal_lat, engine_lat,
        "journaling must not perturb the decision sequence at I={devices}"
    );

    // Live-telemetry arm: the engine path with a full in-memory
    // [`TelemetrySession`] as its recorder — sharded registry, flight
    // ring, and health monitor all active — plus a timed-alone region
    // replaying exactly one slot's worth of hot-path telemetry traffic
    // (the spans, counters, and typed events the engine and runner emit
    // per slot at z = 2) into the same session. Timing the batch in
    // isolation sidesteps the same scheduler-noise problem as the
    // journal arm; running the solve against the live session keeps the
    // registry contents realistic and proves telemetry never perturbs
    // the decisions.
    let budget = system.budget_per_slot();
    let live = TelemetrySession::in_memory(V, budget);
    let mut live_workspace = SlotWorkspace::new();
    let mut live_solver = CgbaSolver::default();
    let mut live_work: Vec<f64> = Vec::new();
    let (live_lat, _, _) = run_loop(&system, &states, |sys, state, queue, slot, rng| {
        let sol = solve_p2_in(
            sys,
            state,
            V,
            queue,
            &bdma,
            &mut live_solver,
            rng,
            slot,
            &live,
            &mut live_workspace,
        );
        let excess = sol.energy_cost - budget;
        let obs_start = Instant::now();
        for round in 1..=BDMA_ROUNDS as u64 {
            live.span_ns(eotora_obs::SPAN_P2A, 120_000);
            live.add(eotora_obs::COUNTER_CGBA_ITERATIONS, 6);
            live.add(eotora_obs::COUNTER_CGBA_PROBES, 40 * devices as u64);
            live.add(eotora_obs::COUNTER_CGBA_CONVERGED, 1);
            live.span_ns(eotora_obs::SPAN_P2B, 80_000);
            live.record(&TraceEvent::BdmaIteration {
                slot,
                round,
                objective: sol.latency,
                accepted: round == 1,
                p2a_nanos: 120_000,
                p2b_nanos: 80_000,
            });
            live.add(eotora_obs::COUNTER_BDMA_ROUNDS, 1);
            if round == 1 {
                live.add(eotora_obs::COUNTER_BDMA_ACCEPTED, 1);
            }
        }
        live.add(eotora_obs::COUNTER_BDMA_ROUNDS_SAVED, 0);
        live.span_ns(eotora_obs::SPAN_QUEUE_UPDATE, 900);
        live.record(&TraceEvent::QueueUpdate {
            slot,
            before: queue,
            after: (queue + excess).max(0.0),
            excess,
        });
        live.span_ns(eotora_obs::SPAN_SLOT_SOLVE, 250_000);
        live.add(eotora_obs::COUNTER_SLOTS, 1);
        live.record(&TraceEvent::Slot {
            slot,
            objective: V * sol.latency + queue * excess,
            latency: sol.latency,
            cost: sol.energy_cost,
            queue: (queue + excess).max(0.0),
        });
        live_work.push(obs_start.elapsed().as_secs_f64());
        sol
    });
    assert_eq!(
        live_lat, engine_lat,
        "live telemetry must not perturb the decision sequence at I={devices}"
    );

    engine_times.sort_by(f64::total_cmp);
    ref_times.sort_by(f64::total_cmp);
    warm_times.sort_by(f64::total_cmp);
    journal_work.sort_by(f64::total_cmp);
    live_work.sort_by(f64::total_cmp);
    let engine_p50_s = quantile(&engine_times, 0.50);
    let engine_p95_s = quantile(&engine_times, 0.95);
    let reference_p50_s = quantile(&ref_times, 0.50);
    let reference_p95_s = quantile(&ref_times, 0.95);
    let warm_p50_s = quantile(&warm_times, 0.50);
    let warm_p95_s = quantile(&warm_times, 0.95);
    let journal_p50_s = quantile(&journal_work, 0.50);
    let live_p50_s = quantile(&live_work, 0.50);
    ScaleResult {
        devices,
        horizon,
        engine_p50_s,
        engine_p95_s,
        reference_p50_s,
        reference_p95_s,
        p50_speedup: reference_p50_s / engine_p50_s.max(1e-12),
        p95_speedup: reference_p95_s / engine_p95_s.max(1e-12),
        warm_p50_s,
        warm_p95_s,
        rounds_used_mean: warm_rounds.iter().sum::<usize>() as f64 / warm_rounds.len() as f64,
        warm_speedup: engine_p50_s / warm_p50_s.max(1e-12),
        journal_p50_s,
        journal_overhead_pct: journal_p50_s / engine_p50_s.max(1e-12) * 100.0,
        live_p50_s,
        live_overhead_pct: live_p50_s / engine_p50_s.max(1e-12) * 100.0,
    }
}

struct ShardScaleResult {
    devices: usize,
    islands: usize,
    horizon: u64,
    workers: usize,
    sequential_p50_s: f64,
    sharded_p50_s: f64,
    shard_speedup: f64,
    shards_used: usize,
    largest_shard: usize,
}

/// Replays the online loop on the separable island topology twice —
/// sequential CGBA versus the sharded engine — and asserts the decision
/// sequences are bit-identical (the restriction argument, checked at
/// fleet scale). z = 1 so the timed region is the P2-A solve the shards
/// parallelize.
fn bench_shard_scale(devices: usize, islands: usize, horizon: u64) -> ShardScaleResult {
    let scenario = eotora_sim::scenario::Scenario::scale_up(devices, islands, SEED);
    let system = MecSystem::random(&scenario.system, SEED);
    let states = record_states(&system, horizon);
    let bdma = BdmaConfig { rounds: 1, ..Default::default() };

    let mut seq_workspace = SlotWorkspace::new();
    let mut seq_solver = CgbaSolver::default();
    let (seq_lat, mut seq_times, _) = run_loop(&system, &states, |sys, state, queue, slot, rng| {
        solve_p2_in(
            sys,
            state,
            V,
            queue,
            &bdma,
            &mut seq_solver,
            rng,
            slot,
            &eotora_obs::NoopRecorder,
            &mut seq_workspace,
        )
    });

    let mut sharded_workspace = SlotWorkspace::new();
    let mut sharded_solver = ShardedCgbaSolver::default();
    let (sharded_lat, mut sharded_times, _) =
        run_loop(&system, &states, |sys, state, queue, slot, rng| {
            solve_p2_in(
                sys,
                state,
                V,
                queue,
                &bdma,
                &mut sharded_solver,
                rng,
                slot,
                &eotora_obs::NoopRecorder,
                &mut sharded_workspace,
            )
        });

    assert_eq!(
        seq_lat, sharded_lat,
        "sharded and sequential latency series must be bit-identical at I={devices}"
    );
    let plan = sharded_solver.plan().expect("sharded solver ran, so a plan exists");
    assert!(!plan.is_trivial(), "island topology must produce a non-trivial plan at I={devices}");

    seq_times.sort_by(f64::total_cmp);
    sharded_times.sort_by(f64::total_cmp);
    let sequential_p50_s = quantile(&seq_times, 0.50);
    let sharded_p50_s = quantile(&sharded_times, 0.50);
    ShardScaleResult {
        devices,
        islands,
        horizon,
        workers: eotora_util::pool::default_workers(),
        sequential_p50_s,
        sharded_p50_s,
        shard_speedup: sequential_p50_s / sharded_p50_s.max(1e-12),
        shards_used: plan.num_shards(),
        largest_shard: plan.largest_shard_players(),
    }
}

struct SpeculationScaleResult {
    devices: usize,
    horizon: u64,
    warm_p50_s: f64,
    critical_path_p50_s: f64,
    spec_hit_rate: f64,
    critical_path_speedup: f64,
}

/// Warm engine vs speculative pipeline on the periodic-price scenario
/// (see [`eotora_sim::experiments::speculation`]): the A/B harness runs
/// both arms on identical state streams, asserts the series stayed
/// bit-identical, and reports how much of the per-slot solve the staged
/// pre-solve moved off the critical path.
fn bench_speculation_scale(devices: usize, horizon: u64) -> SpeculationScaleResult {
    use eotora_core::speculate::{PredictorKind, SpeculativeConfig};
    use eotora_sim::experiments::speculation::speculation_ab;
    let scenario = eotora_sim::scenario::Scenario::periodic_price(devices, SEED)
        .with_horizon(horizon)
        .with_bdma_rounds(BDMA_ROUNDS)
        .with_start_policy(StartPolicy::Warm);
    let spec = SpeculativeConfig {
        predictor: PredictorKind::PeriodicPrice { period: 24 },
        tolerance: 0.0,
        stage_when_busy: true,
        ..Default::default()
    };
    let ab = speculation_ab(&scenario, &spec);
    assert!(
        ab.series_identical,
        "speculation must not perturb the decision sequence at I={devices}"
    );
    SpeculationScaleResult {
        devices,
        horizon,
        warm_p50_s: ab.plain.critical_path_p50_s,
        critical_path_p50_s: ab.speculative.critical_path_p50_s,
        spec_hit_rate: ab.hit_rate,
        critical_path_speedup: ab.critical_path_speedup,
    }
}

fn main() {
    let quick = eotora_bench::quick_mode();
    // Quick mode keeps the two-scale shape at smoke-test sizes; the
    // 30-device row is what ci.sh's speedup regression guard reads.
    let scales: &[(usize, u64)] =
        if quick { &[(10, 6), (30, 20)] } else { &[(30, 100), (200, 100)] };

    let mut results = Vec::new();
    for &(devices, horizon) in scales {
        eprintln!(
            "slot_solve: I={devices}, {horizon} slots, z={BDMA_ROUNDS} (warm z={WARM_ROUNDS}) …"
        );
        let r = bench_scale(devices, horizon);
        eprintln!(
            "  engine p50 {:.3} ms / p95 {:.3} ms | reference p50 {:.3} ms / p95 {:.3} ms | speedup p50 {:.2}x",
            r.engine_p50_s * 1e3,
            r.engine_p95_s * 1e3,
            r.reference_p50_s * 1e3,
            r.reference_p95_s * 1e3,
            r.p50_speedup,
        );
        eprintln!(
            "  warm p50 {:.3} ms / p95 {:.3} ms | rounds_used mean {:.2} | warm speedup {:.2}x over engine",
            r.warm_p50_s * 1e3,
            r.warm_p95_s * 1e3,
            r.rounds_used_mean,
            r.warm_speedup,
        );
        eprintln!(
            "  journal work p50 {:.4} ms | overhead {:.2}% of engine p50",
            r.journal_p50_s * 1e3,
            r.journal_overhead_pct,
        );
        eprintln!(
            "  live telemetry p50 {:.4} ms | overhead {:.2}% of engine p50",
            r.live_p50_s * 1e3,
            r.live_overhead_pct,
        );
        results.push(r);
    }

    // Shard scales: the 10k/100k island fleets the sharded engine targets
    // (quick mode keeps one smoke-size row for ci.sh's identity gate).
    let shard_scales: &[(usize, usize, u64)] =
        if quick { &[(500, 8, 4)] } else { &[(10_000, 16, 3), (100_000, 64, 2)] };
    let mut shard_results = Vec::new();
    for &(devices, islands, horizon) in shard_scales {
        eprintln!(
            "slot_solve shard: I={devices}, {islands} islands, {horizon} slots, {} worker(s) …",
            eotora_util::pool::default_workers()
        );
        let r = bench_shard_scale(devices, islands, horizon);
        eprintln!(
            "  sequential p50 {:.3} ms | sharded p50 {:.3} ms | speedup {:.2}x | {} shards (largest {} players)",
            r.sequential_p50_s * 1e3,
            r.sharded_p50_s * 1e3,
            r.shard_speedup,
            r.shards_used,
            r.largest_shard,
        );
        shard_results.push(r);
    }

    // Speculation scale: periodic-price states where the predictor is
    // exact after one period; the row ci.sh's hit-rate/speedup gate reads.
    let spec_scales: &[(usize, u64)] = if quick { &[(10, 200)] } else { &[(30, 200)] };
    let mut spec_results = Vec::new();
    for &(devices, horizon) in spec_scales {
        eprintln!("slot_solve speculation: I={devices}, {horizon} slots, z={BDMA_ROUNDS} warm …");
        let r = bench_speculation_scale(devices, horizon);
        eprintln!(
            "  warm p50 {:.3} ms | repair-only p50 {:.3} ms | hit rate {:.2} | critical-path speedup {:.2}x",
            r.warm_p50_s * 1e3,
            r.critical_path_p50_s * 1e3,
            r.spec_hit_rate,
            r.critical_path_speedup,
        );
        spec_results.push(r);
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"devices\": {},\n",
                    "      \"horizon_slots\": {},\n",
                    "      \"bdma_rounds\": {},\n",
                    "      \"engine_p50_s\": {:e},\n",
                    "      \"engine_p95_s\": {:e},\n",
                    "      \"reference_p50_s\": {:e},\n",
                    "      \"reference_p95_s\": {:e},\n",
                    "      \"p50_speedup\": {:.3},\n",
                    "      \"p95_speedup\": {:.3},\n",
                    "      \"warm_bdma_rounds\": {},\n",
                    "      \"warm_p50_s\": {:e},\n",
                    "      \"warm_p95_s\": {:e},\n",
                    "      \"rounds_used_mean\": {:.3},\n",
                    "      \"warm_speedup\": {:.3},\n",
                    "      \"journal_p50_s\": {:e},\n",
                    "      \"journal_overhead_pct\": {:.3},\n",
                    "      \"live_p50_s\": {:e},\n",
                    "      \"live_overhead_pct\": {:.3}\n",
                    "    }}"
                ),
                r.devices,
                r.horizon,
                BDMA_ROUNDS,
                r.engine_p50_s,
                r.engine_p95_s,
                r.reference_p50_s,
                r.reference_p95_s,
                r.p50_speedup,
                r.p95_speedup,
                WARM_ROUNDS,
                r.warm_p50_s,
                r.warm_p95_s,
                r.rounds_used_mean,
                r.warm_speedup,
                r.journal_p50_s,
                r.journal_overhead_pct,
                r.live_p50_s,
                r.live_overhead_pct,
            )
        })
        .collect();
    let shard_entries: Vec<String> = shard_results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"devices\": {},\n",
                    "      \"islands\": {},\n",
                    "      \"horizon_slots\": {},\n",
                    "      \"workers\": {},\n",
                    "      \"sequential_p50_s\": {:e},\n",
                    "      \"sharded_p50_s\": {:e},\n",
                    "      \"shard_speedup\": {:.3},\n",
                    "      \"shards_used\": {},\n",
                    "      \"largest_shard\": {}\n",
                    "    }}"
                ),
                r.devices,
                r.islands,
                r.horizon,
                r.workers,
                r.sequential_p50_s,
                r.sharded_p50_s,
                r.shard_speedup,
                r.shards_used,
                r.largest_shard,
            )
        })
        .collect();
    let spec_entries: Vec<String> = spec_results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"devices\": {},\n",
                    "      \"horizon_slots\": {},\n",
                    "      \"warm_p50_s\": {:e},\n",
                    "      \"critical_path_p50_s\": {:e},\n",
                    "      \"spec_hit_rate\": {:.3},\n",
                    "      \"critical_path_speedup\": {:.3}\n",
                    "    }}"
                ),
                r.devices,
                r.horizon,
                r.warm_p50_s,
                r.critical_path_p50_s,
                r.spec_hit_rate,
                r.critical_path_speedup,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"slot_solve\",\n  \"quick\": {},\n  \"seed\": {},\n  \"scales\": [\n{}\n  ],\n  \"shard_scales\": [\n{}\n  ],\n  \"speculation\": [\n{}\n  ]\n}}\n",
        quick,
        SEED,
        entries.join(",\n"),
        shard_entries.join(",\n"),
        spec_entries.join(",\n")
    );

    // Bench CWD is the package dir; the full-scale run records its numbers
    // at the repo root where ISSUE/EXPERIMENTS expect them.
    let out = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_slot_solve.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_slot_solve.json")
    };
    std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
}
