//! Fig. 9 bench: a short DPP horizon per (budget, algorithm) pair — the
//! kernels behind the budget-sweep comparison of BDMA/MCBA/ROPT-based DPP.
//!
//! The sweep rows are printed by
//! `cargo run -p eotora-bench --release --bin figures -- --fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eotora_core::dpp::SolverKind;
use eotora_sim::runner::run;
use eotora_sim::scenario::Scenario;

fn bench(c: &mut Criterion) {
    let (devices, horizon) = if eotora_bench::quick_mode() { (10, 12) } else { (50, 24) };
    let mut group = c.benchmark_group("fig9_budget_dpp");
    group.sample_size(10);
    let solvers = [
        ("bdma", SolverKind::Cgba { lambda: 0.0 }),
        ("mcba", SolverKind::Mcba { iterations: 2_000 }),
        ("ropt", SolverKind::Ropt),
    ];
    for (name, solver) in solvers {
        for budget in [0.7, 1.3] {
            let scenario = Scenario::paper(devices, 99)
                .with_budget(budget)
                .with_horizon(horizon)
                .with_bdma_rounds(2)
                .with_solver(solver);
            group.bench_with_input(BenchmarkId::new(name, budget), &scenario, |b, scenario| {
                b.iter(|| std::hint::black_box(run(scenario)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
