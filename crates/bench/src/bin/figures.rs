//! Regenerates the data behind every figure of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run -p eotora-bench --release --bin figures -- --all
//! cargo run -p eotora-bench --release --bin figures -- --fig4 --fig5
//! cargo run -p eotora-bench --release --bin figures -- --all --quick
//! ```
//!
//! `--quick` runs the scaled-down configurations (useful for smoke tests);
//! without it the paper-scale settings of each experiment run. Each figure
//! prints the rows/series the paper plots; `--svg <dir>` additionally writes
//! SVG plots of the line-chart figures (2, 7, 8) into `<dir>`; `--jobs N`
//! caps the worker pool the sweep experiments fan out on (default: all
//! cores). EXPERIMENTS.md records the paper-vs-measured comparison.

use eotora_sim::experiments::ablations::{
    bdma_rounds, energy_families, per_slot_vs_dpp, scheduling_rules,
};
use eotora_sim::experiments::beta_only_gap::{beta_only_gap, BetaOnlyGapConfig};
use eotora_sim::experiments::budget_sweep::{budget_sweep, BudgetSweepConfig};
use eotora_sim::experiments::energy_fit::energy_fit;
use eotora_sim::experiments::fairness::{fairness, FairnessConfig};
use eotora_sim::experiments::lambda_sweep::{lambda_sweep, LambdaSweepConfig};
use eotora_sim::experiments::p2a_comparison::{p2a_comparison, P2aComparisonConfig};
use eotora_sim::experiments::queue_trace::{queue_trace, QueueTraceConfig};
use eotora_sim::experiments::traces::traces;
use eotora_sim::experiments::v_sweep::{v_sweep, VSweepConfig};
use eotora_sim::report::{ascii_table, num};
use eotora_sim::svg::{render_line_chart, SvgChart, SvgSeries};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().any(|a| a == "--all") || args.iter().all(|a| a == "--quick");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    let svg_dir: Option<String> = args.windows(2).find(|w| w[0] == "--svg").map(|w| w[1].clone());
    if let Some(dir) = &svg_dir {
        std::fs::create_dir_all(dir).expect("cannot create --svg directory");
    }
    if let Some(raw) = args.windows(2).find(|w| w[0] == "--jobs").map(|w| w[1].as_str()) {
        let jobs: usize = raw.parse().expect("--jobs expects a positive integer");
        assert!(jobs >= 1, "--jobs must be at least 1");
        eotora_util::pool::set_default_workers(jobs);
    }

    if want("--fig2") {
        fig2(quick, svg_dir.as_deref());
    }
    if want("--fig3") {
        fig3();
    }
    if want("--fig4") || want("--fig5") {
        fig4_fig5(quick);
    }
    if want("--fig6") {
        fig6(quick);
    }
    if want("--fig7") {
        fig7(quick, svg_dir.as_deref());
    }
    if want("--fig8") {
        fig8(quick, svg_dir.as_deref());
    }
    if want("--fig9") {
        fig9(quick);
    }
    if want("--ablations") {
        ablations(quick);
    }
}

fn ablations(quick: bool) {
    let (devices, trials, horizon) = if quick { (10, 2, 48) } else { (60, 5, 240) };

    println!("\n=== Ablation A: BDMA alternation rounds z (P2 objective) ===");
    let rows: Vec<Vec<String>> = bdma_rounds(devices, trials, 2024)
        .iter()
        .map(|r| vec![r.rounds.to_string(), num(r.objective)])
        .collect();
    println!("{}", ascii_table(&["z", "P2 objective"], &rows));

    println!("=== Ablation B: CGBA player scheduling ===");
    let rows: Vec<Vec<String>> = scheduling_rules(devices, trials, 2025)
        .iter()
        .map(|r| vec![r.rule.clone(), num(r.objective), format!("{:.1}", r.iterations)])
        .collect();
    println!("{}", ascii_table(&["rule", "objective (s)", "iterations"], &rows));

    println!("=== Ablation C: energy-model families under DPP ===");
    let rows: Vec<Vec<String>> = energy_families(devices.min(30), horizon, 2026)
        .iter()
        .map(|r| vec![r.family.clone(), num(r.average_latency), num(r.average_cost)])
        .collect();
    println!("{}", ascii_table(&["family", "avg latency (s)", "avg cost ($)"], &rows));

    println!("=== Ablation D: per-slot budget vs time-average (DPP) budget ===");
    let c = per_slot_vs_dpp(devices.min(30), horizon, 0.8, 2027);
    let rows = vec![
        vec!["DPP (time-average)".to_string(), num(c.dpp_latency), num(c.dpp_cost)],
        vec!["per-slot Lagrangian".to_string(), num(c.per_slot_latency), num(c.per_slot_cost)],
    ];
    println!("{}", ascii_table(&["controller", "avg latency (s)", "avg cost ($)"], &rows));
    println!("shared budget: ${:.2}/slot", c.budget);

    println!("\n=== Ablation E: per-device fairness (Jain's index) ===");
    let cfg = if quick { FairnessConfig::small() } else { FairnessConfig::paper() };
    let rows: Vec<Vec<String>> = fairness(&cfg)
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                format!("{:.4}", r.mean_jains_index),
                format!("{:.4}", r.worst_jains_index),
                num(r.average_latency),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["variant", "mean Jain", "worst Jain", "avg latency (s)"], &rows));

    println!("\n=== Ablation F: DPP vs hindsight β-only policy (Lemma 2 / Thm 4) ===");
    let cfg = if quick { BetaOnlyGapConfig::small() } else { BetaOnlyGapConfig::paper() };
    let g = beta_only_gap(&cfg);
    println!(
        "β-only benchmark: latency {} s at cost ${} (μ = {:.2})",
        num(g.oracle_latency),
        num(g.oracle_cost),
        g.multiplier
    );
    let rows: Vec<Vec<String>> = g
        .dpp
        .iter()
        .map(|&(v, lat, cost, ratio)| vec![num(v), num(lat), num(cost), format!("{ratio:.4}")])
        .collect();
    println!("{}", ascii_table(&["V", "DPP latency (s)", "DPP cost ($)", "latency ratio"], &rows));
}

fn write_svg(dir: &str, name: &str, chart: &SvgChart, series: &[SvgSeries]) {
    let path = format!("{dir}/{name}.svg");
    std::fs::write(&path, render_line_chart(chart, series))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn fig2(quick: bool, svg: Option<&str>) {
    let hours = if quick { 48 } else { 72 };
    let t = traces(hours, 0.08, 2);
    println!("\n=== Fig. 2: real-world-shaped system-state traces (non-iid) ===");
    let rows: Vec<Vec<String>> = t
        .hours
        .iter()
        .map(|&h| vec![h.to_string(), num(t.price[h as usize]), num(t.demand[h as usize])])
        .collect();
    println!("{}", ascii_table(&["hour", "price $/kWh", "demand xbase"], &rows));
    if let Some(dir) = svg {
        let xs = |v: &[f64]| v.iter().enumerate().map(|(h, &y)| (h as f64, y)).collect::<Vec<_>>();
        write_svg(
            dir,
            "fig2_traces",
            &SvgChart {
                title: "Fig. 2: non-iid system states".into(),
                x_label: "hour".into(),
                y_label: "value (price x10 for scale)".into(),
                ..Default::default()
            },
            &[
                SvgSeries {
                    label: "price x10".into(),
                    points: xs(&t.price.iter().map(|p| p * 10.0).collect::<Vec<_>>()),
                },
                SvgSeries { label: "demand".into(), points: xs(&t.demand) },
            ],
        );
    }
}

fn fig3() {
    let d = energy_fit(2, 3);
    println!("\n=== Fig. 3: i7-3770K power vs frequency, quadratic fit ===");
    let (a, b, c) = d.fit_coefficients;
    println!("fit: P(f) = {a:.3}·f² + {b:.3}·f + {c:.3}  (f in GHz, P in W)");
    let rows: Vec<Vec<String>> = d
        .measured
        .iter()
        .map(|&(f, p)| {
            let fitted = a * f * f + b * f + c;
            vec![num(f), num(p), num(fitted), num(p - fitted)]
        })
        .collect();
    println!("{}", ascii_table(&["GHz", "measured W", "fit W", "residual"], &rows));
    println!("two perturbed server curves at 1.8 / 2.7 / 3.6 GHz:");
    for (i, curve) in d.perturbed_curves.iter().enumerate() {
        let pick = |ghz: f64| {
            curve
                .iter()
                .min_by(|x, y| (x.0 - ghz).abs().partial_cmp(&(y.0 - ghz).abs()).expect("finite"))
                .expect("non-empty curve")
                .1
        };
        println!(
            "  server {}: {:.1} W / {:.1} W / {:.1} W",
            i + 1,
            pick(1.8),
            pick(2.7),
            pick(3.6)
        );
    }
}

fn fig4_fig5(quick: bool) {
    let config = if quick { P2aComparisonConfig::small() } else { P2aComparisonConfig::paper() };
    let rows = p2a_comparison(&config);
    println!("\n=== Fig. 4: P2-A objective (s): CGBA(0) vs baselines vs OPT ===");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                num(r.cgba.objective),
                num(r.mcba.objective),
                num(r.ropt.objective),
                num(r.exact.objective),
                num(r.exact_lower_bound),
                format!("{:.3}", r.cgba_to_opt_ratio()),
                format!("{:.0}%", r.proven_fraction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["I", "CGBA", "MCBA", "ROPT", "OPT(B&B)", "cert. LB", "CGBA/OPT", "proven"],
            &table
        )
    );

    println!("=== Fig. 5: wall-clock time per P2-A solve (s) ===");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                num(r.cgba.time_s),
                num(r.mcba.time_s),
                num(r.ropt.time_s),
                num(r.exact.time_s),
                format!("{:.0}x", r.exact.time_s / r.cgba.time_s.max(1e-12)),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["I", "CGBA", "MCBA", "ROPT", "OPT(B&B)", "OPT/CGBA"], &table));
}

fn fig6(quick: bool) {
    let config = if quick { LambdaSweepConfig::small() } else { LambdaSweepConfig::paper() };
    let rows = lambda_sweep(&config);
    println!("\n=== Fig. 6: CGBA(λ) objective & iterations vs λ (I={}) ===", config.devices);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![format!("{:.2}", r.lambda), num(r.objective), format!("{:.1}", r.iterations)])
        .collect();
    println!("{}", ascii_table(&["lambda", "objective (s)", "iterations"], &table));
}

fn fig7(quick: bool, svg: Option<&str>) {
    let config = if quick { QueueTraceConfig::small() } else { QueueTraceConfig::paper() };
    let data = queue_trace(&config);
    if let Some(dir) = svg {
        let series: Vec<SvgSeries> = data
            .iter()
            .map(|t| SvgSeries {
                label: format!("V={}", t.v),
                points: t.queue.iter().enumerate().map(|(s, &q)| (s as f64, q)).collect(),
            })
            .collect();
        write_svg(
            dir,
            "fig7_queue_backlog",
            &SvgChart {
                title: "Fig. 7: queue backlog Q(t)".into(),
                x_label: "slot".into(),
                y_label: "backlog".into(),
                ..Default::default()
            },
            &series,
        );
    }
    println!("\n=== Fig. 7: queue backlog Q(t) vs time (every 12th slot) ===");
    let header: Vec<String> = std::iter::once("slot".to_string())
        .chain(data.iter().map(|t| format!("Q(t) V={}", t.v)))
        .chain(std::iter::once("price".to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..data[0].queue.len())
        .step_by(12)
        .map(|t| {
            std::iter::once(t.to_string())
                .chain(data.iter().map(|tr| num(tr.queue[t])))
                .chain(std::iter::once(num(data[0].price[t])))
                .collect()
        })
        .collect();
    println!("{}", ascii_table(&header_refs, &rows));
}

fn fig8(quick: bool, svg: Option<&str>) {
    let config = if quick { VSweepConfig::small() } else { VSweepConfig::paper() };
    let rows = v_sweep(&config);
    if let Some(dir) = svg {
        write_svg(
            dir,
            "fig8_queue_vs_v",
            &SvgChart {
                title: "Fig. 8 (left): converged backlog vs V".into(),
                x_label: "V".into(),
                y_label: "converged queue".into(),
                ..Default::default()
            },
            &[SvgSeries {
                label: "backlog".into(),
                points: rows.iter().map(|r| (r.v, r.converged_queue)).collect(),
            }],
        );
        write_svg(
            dir,
            "fig8_latency_vs_v",
            &SvgChart {
                title: "Fig. 8 (right): average latency vs V".into(),
                x_label: "V".into(),
                y_label: "latency (s)".into(),
                ..Default::default()
            },
            &[SvgSeries {
                label: "latency".into(),
                points: rows.iter().map(|r| (r.v, r.average_latency)).collect(),
            }],
        );
    }
    println!("\n=== Fig. 8: converged queue backlog & average latency vs V ===");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![num(r.v), num(r.converged_queue), num(r.average_latency), num(r.average_cost)]
        })
        .collect();
    println!("{}", ascii_table(&["V", "converged Q", "avg latency (s)", "avg cost ($)"], &table));
}

fn fig9(quick: bool) {
    let config = if quick { BudgetSweepConfig::small() } else { BudgetSweepConfig::paper() };
    let rows = budget_sweep(&config);
    println!("\n=== Fig. 9: time-average latency & energy cost vs budget C̄ ===");
    let mut table = Vec::new();
    for row in &rows {
        for p in &row.points {
            table.push(vec![
                num(row.budget),
                p.algorithm.clone(),
                num(p.tail_latency),
                num(p.average_cost),
                if p.average_cost <= row.budget * 1.02 { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        ascii_table(
            &["budget $", "algorithm", "tail latency (s)", "avg cost ($)", "under budget"],
            &table
        )
    );
}
