//! Shared helpers for the `eotora-bench` benchmarks and the `figures`
//! binary.
//!
//! The interesting code lives in:
//!
//! * `src/bin/figures.rs` — regenerates the data series behind every figure
//!   of the paper (run `cargo run -p eotora-bench --release --bin figures --
//!   --all`),
//! * `benches/fig*_*.rs` — Criterion benchmarks, one per paper figure,
//!   measuring the computational kernels those figures exercise.

/// Whether benches should run in scaled-down mode (set the `EOTORA_QUICK`
/// environment variable); used so `cargo bench --workspace` completes in
//  minutes rather than hours while keeping the paper-scale path available.
pub fn quick_mode() -> bool {
    std::env::var_os("EOTORA_QUICK").is_some()
}
