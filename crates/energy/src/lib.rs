//! Server energy-consumption models (paper §III-A and Fig. 3).
//!
//! The paper deliberately does **not** fix a functional form for server
//! energy: it only requires each server's consumption `g_n(ω)` to be *convex*
//! in the clock frequency `ω`, and lets every server have its own function.
//! This crate provides that abstraction ([`EnergyModel`]) plus the concrete
//! families used in the literature and in the paper's own evaluation:
//!
//! * [`QuadraticEnergy`] — the paper's evaluation model: a least-squares
//!   quadratic fit of measured Intel i7-3770K package power over
//!   1.8–3.6 GHz ([`i7_3770k_points`], [`fit_i7_3770k`]), perturbed per
//!   server as `a(1+0.01e), b(1+0.1e), c(1+0.1e)` with `e ~ N(0,1)`
//!   ([`perturbed_fleet`]).
//! * [`LinearEnergy`] — the linear model of Yang et al. (paper ref. \[8\]).
//! * [`CubicEnergy`] — the classical `P ∝ f³` DVFS model.
//! * [`PiecewiseLinearEnergy`] — direct use of measured points.
//! * [`Scaled`] — multi-socket/core scaling of any base model.
//!
//! All models report power in **watts** as a function of frequency in **Hz**,
//! with an analytic derivative so the P2-B bisection solver converges at
//! machine precision. [`energy_cost_dollars`] converts power and a price in
//! $/kWh into the per-slot cost `p_t · g_n(ω_{n,t})` of eq. (13).
//!
//! # Examples
//!
//! ```
//! use eotora_energy::{fit_i7_3770k, EnergyModel};
//!
//! let model = fit_i7_3770k();
//! let p_low = model.power_watts(1.8e9);
//! let p_high = model.power_watts(3.6e9);
//! assert!(p_low < p_high);
//! assert!((25.0..35.0).contains(&p_low));
//! assert!((70.0..85.0).contains(&p_high));
//! ```

use std::fmt;

use eotora_optim::least_squares::polyfit;
use eotora_optim::scalar::is_convex_on;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// A convex power-vs-frequency curve for one server.
///
/// Implementations must be convex on the server's feasible frequency range —
/// the paper's standing assumption, checkable with [`validate_convexity`].
pub trait EnergyModel: fmt::Debug + Send + Sync {
    /// Power draw in watts at clock frequency `freq_hz`.
    fn power_watts(&self, freq_hz: f64) -> f64;

    /// Derivative of power with respect to frequency, in watts per Hz.
    fn power_derivative(&self, freq_hz: f64) -> f64;

    /// If this model is (a scaling of) a quadratic `a·f² + b·f + c` (f in
    /// GHz), returns the effective coefficients — enabling the closed-form
    /// P2-B frequency step (a cubic root instead of bisection). The default
    /// is `None`; generic models fall back to the iterative solver.
    fn as_quadratic(&self) -> Option<QuadraticEnergy> {
        None
    }
}

/// Quadratic power curve `P(f) = a·f² + b·f + c` with `f` in GHz and `P` in
/// watts — the family the paper fits to real i7-3770K measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticEnergy {
    /// Quadratic coefficient (W/GHz²); must be non-negative for convexity.
    pub a: f64,
    /// Linear coefficient (W/GHz).
    pub b: f64,
    /// Constant term (W): idle/uncore power.
    pub c: f64,
}

impl QuadraticEnergy {
    /// Creates a quadratic model.
    ///
    /// # Panics
    ///
    /// Panics if `a < 0` (non-convex).
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0, "quadratic coefficient must be non-negative for convexity");
        Self { a, b, c }
    }

    /// The paper's per-server perturbation: coefficients scaled by
    /// `(1+0.01e)`, `(1+0.1e)`, `(1+0.1e)` for a single standard normal `e`.
    /// The quadratic coefficient is clamped at zero to preserve convexity in
    /// the (measure-zero in practice) tail `e < −100`.
    pub fn perturbed(&self, e: f64) -> Self {
        Self {
            a: (self.a * (1.0 + 0.01 * e)).max(0.0),
            b: self.b * (1.0 + 0.1 * e),
            c: self.c * (1.0 + 0.1 * e),
        }
    }
}

impl EnergyModel for QuadraticEnergy {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        let f = freq_hz / 1e9;
        self.a * f * f + self.b * f + self.c
    }

    fn power_derivative(&self, freq_hz: f64) -> f64 {
        let f = freq_hz / 1e9;
        (2.0 * self.a * f + self.b) / 1e9
    }

    fn as_quadratic(&self) -> Option<QuadraticEnergy> {
        Some(*self)
    }
}

/// Linear power curve `P(f) = slope·f + intercept` (`f` in GHz), per the
/// mobile-streaming model of the paper's reference \[8\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearEnergy {
    /// Slope in W/GHz; must be non-negative (power increases with clock).
    pub slope: f64,
    /// Intercept in W.
    pub intercept: f64,
}

impl LinearEnergy {
    /// Creates a linear model.
    ///
    /// # Panics
    ///
    /// Panics if `slope < 0`.
    pub fn new(slope: f64, intercept: f64) -> Self {
        assert!(slope >= 0.0, "power must be non-decreasing in frequency");
        Self { slope, intercept }
    }
}

impl EnergyModel for LinearEnergy {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        self.slope * (freq_hz / 1e9) + self.intercept
    }

    fn power_derivative(&self, _freq_hz: f64) -> f64 {
        self.slope / 1e9
    }
}

/// Cubic DVFS power curve `P(f) = k·f³ + idle` (`f` in GHz) — the classical
/// dynamic-power model (`P ∝ C·V²·f` with `V ∝ f`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CubicEnergy {
    /// Cubic coefficient in W/GHz³; must be non-negative.
    pub k: f64,
    /// Idle power in W.
    pub idle: f64,
}

impl CubicEnergy {
    /// Creates a cubic model.
    ///
    /// # Panics
    ///
    /// Panics if `k < 0`.
    pub fn new(k: f64, idle: f64) -> Self {
        assert!(k >= 0.0, "cubic coefficient must be non-negative");
        Self { k, idle }
    }
}

impl EnergyModel for CubicEnergy {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        let f = freq_hz / 1e9;
        self.k * f * f * f + self.idle
    }

    fn power_derivative(&self, freq_hz: f64) -> f64 {
        let f = freq_hz / 1e9;
        3.0 * self.k * f * f / 1e9
    }
}

/// Convex piecewise-linear interpolation of measured `(frequency, power)`
/// points — for servers whose measured curve should be used directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinearEnergy {
    /// Breakpoints as `(freq_hz, watts)`, strictly increasing in frequency.
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinearEnergy {
    /// Creates a piecewise-linear model from measured points.
    ///
    /// # Errors
    ///
    /// Returns an error message if fewer than two points are given, the
    /// frequencies are not strictly increasing, or the segment slopes are not
    /// non-decreasing (which would break convexity).
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.len() < 2 {
            return Err("need at least two breakpoints".into());
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err("frequencies must be strictly increasing".into());
            }
        }
        let slopes: Vec<f64> =
            points.windows(2).map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0)).collect();
        for s in slopes.windows(2) {
            if s[1] < s[0] - 1e-15 {
                return Err("segment slopes must be non-decreasing (convexity)".into());
            }
        }
        Ok(Self { points })
    }

    fn segment(&self, freq_hz: f64) -> usize {
        // Clamp outside the measured range to the boundary segments.
        match self.points.iter().position(|&(f, _)| f > freq_hz) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => self.points.len() - 2,
        }
    }
}

impl EnergyModel for PiecewiseLinearEnergy {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        let s = self.segment(freq_hz);
        let (f0, p0) = self.points[s];
        let (f1, p1) = self.points[s + 1];
        p0 + (p1 - p0) * (freq_hz - f0) / (f1 - f0)
    }

    fn power_derivative(&self, freq_hz: f64) -> f64 {
        let s = self.segment(freq_hz);
        let (f0, p0) = self.points[s];
        let (f1, p1) = self.points[s + 1];
        (p1 - p0) / (f1 - f0)
    }
}

/// Scales a base model by a constant factor — e.g. a 64-core server modeled
/// as 16 four-core i7 packages.
#[derive(Debug)]
pub struct Scaled {
    inner: Box<dyn EnergyModel>,
    factor: f64,
}

impl Scaled {
    /// Wraps `inner`, multiplying its power and derivative by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn new(inner: Box<dyn EnergyModel>, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self { inner, factor }
    }
}

impl EnergyModel for Scaled {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        self.factor * self.inner.power_watts(freq_hz)
    }

    fn power_derivative(&self, freq_hz: f64) -> f64 {
        self.factor * self.inner.power_derivative(freq_hz)
    }

    fn as_quadratic(&self) -> Option<QuadraticEnergy> {
        self.inner.as_quadratic().map(|q| QuadraticEnergy {
            a: self.factor * q.a,
            b: self.factor * q.b,
            c: self.factor * q.c,
        })
    }
}

/// Measured package power of an Intel i7-3770K across its DVFS range,
/// digitized from public reviews to match the paper's Fig. 3 diamonds:
/// `(frequency in GHz, power in watts)`.
pub const I7_3770K_POINTS: [(f64, f64); 10] = [
    (1.8, 27.0),
    (2.0, 31.0),
    (2.2, 35.5),
    (2.4, 40.5),
    (2.6, 46.0),
    (2.8, 52.0),
    (3.0, 58.5),
    (3.2, 65.0),
    (3.4, 71.5),
    (3.6, 78.5),
];

/// The i7-3770K measurement points as `(freq_ghz, watts)` vectors.
pub fn i7_3770k_points() -> (Vec<f64>, Vec<f64>) {
    let freqs = I7_3770K_POINTS.iter().map(|&(f, _)| f).collect();
    let watts = I7_3770K_POINTS.iter().map(|&(_, p)| p).collect();
    (freqs, watts)
}

/// Least-squares quadratic fit of [`I7_3770K_POINTS`] — the paper's black
/// curve in Fig. 3.
pub fn fit_i7_3770k() -> QuadraticEnergy {
    let (freqs, watts) = i7_3770k_points();
    let fit = polyfit(&freqs, &watts, 2).expect("the embedded points are well-conditioned");
    QuadraticEnergy::new(fit.coeffs[2].max(0.0), fit.coeffs[1], fit.coeffs[0])
}

/// Generates `n` per-server energy models by perturbing the i7 fit with one
/// standard normal draw per server (the paper's §VI-A recipe), each scaled by
/// the corresponding entry of `core_scale` (e.g. `cores / 4.0` to model a
/// many-core server as multiple 4-core packages).
///
/// # Panics
///
/// Panics if `core_scale.len() != n` or any scale is non-positive.
pub fn perturbed_fleet(n: usize, core_scale: &[f64], seed: u64) -> Vec<Box<dyn EnergyModel>> {
    assert_eq!(core_scale.len(), n, "one scale per server required");
    let base = fit_i7_3770k();
    let mut rng = Pcg32::seed_stream(seed, 0xE0E0);
    (0..n)
        .map(|idx| {
            let e = rng.standard_normal();
            let model = base.perturbed(e);
            Box::new(Scaled::new(Box::new(model), core_scale[idx])) as Box<dyn EnergyModel>
        })
        .collect()
}

/// Dollar cost of running at `power_watts` for `slot_hours` under a price of
/// `price_per_kwh` — the paper's `p_t · g_n(ω_{n,t})` with explicit units.
///
/// # Examples
///
/// ```
/// use eotora_energy::energy_cost_dollars;
///
/// // 1 kW for one hour at $0.10/kWh costs 10 cents.
/// assert!((energy_cost_dollars(0.10, 1000.0, 1.0) - 0.10).abs() < 1e-12);
/// ```
pub fn energy_cost_dollars(price_per_kwh: f64, power_watts: f64, slot_hours: f64) -> f64 {
    price_per_kwh * (power_watts / 1000.0) * slot_hours
}

/// Checks that `model` is convex on `[freq_min_hz, freq_max_hz]` by sampling
/// the midpoint inequality (the paper's standing assumption on every `g_n`).
pub fn validate_convexity(model: &dyn EnergyModel, freq_min_hz: f64, freq_max_hz: f64) -> bool {
    is_convex_on(|f| model.power_watts(f), freq_min_hz, freq_max_hz, 128, 1e-7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;

    #[test]
    fn i7_fit_is_tight() {
        let (freqs, watts) = i7_3770k_points();
        let fit = polyfit(&freqs, &watts, 2).unwrap();
        assert!(fit.r_squared > 0.999, "r² = {}", fit.r_squared);
    }

    #[test]
    fn i7_fit_matches_measurements() {
        let m = fit_i7_3770k();
        for &(f, p) in &I7_3770K_POINTS {
            let pred = m.power_watts(f * 1e9);
            assert!((pred - p).abs() < 1.0, "at {f} GHz: {pred} vs {p}");
        }
    }

    #[test]
    fn quadratic_derivative_consistent() {
        let m = QuadraticEnergy::new(5.0, 2.0, 10.0);
        let f = 2.5e9;
        let h = 1e3;
        let numeric = (m.power_watts(f + h) - m.power_watts(f - h)) / (2.0 * h);
        assert_close!(m.power_derivative(f), numeric, 1e-6);
    }

    #[test]
    fn cubic_derivative_consistent() {
        let m = CubicEnergy::new(2.0, 8.0);
        let f = 3.0e9;
        let h = 1e3;
        let numeric = (m.power_watts(f + h) - m.power_watts(f - h)) / (2.0 * h);
        assert_close!(m.power_derivative(f), numeric, 1e-6);
    }

    #[test]
    fn linear_model_shape() {
        let m = LinearEnergy::new(20.0, 5.0);
        assert_close!(m.power_watts(2.0e9), 45.0, 1e-12);
        assert_close!(m.power_derivative(1.0e9) * 1e9, 20.0, 1e-12);
    }

    #[test]
    fn all_families_convex_on_dvfs_range() {
        let models: Vec<Box<dyn EnergyModel>> = vec![
            Box::new(fit_i7_3770k()),
            Box::new(LinearEnergy::new(20.0, 5.0)),
            Box::new(CubicEnergy::new(1.5, 10.0)),
        ];
        for m in &models {
            assert!(validate_convexity(m.as_ref(), 1.8e9, 3.6e9));
        }
    }

    #[test]
    fn piecewise_linear_interpolates_and_clamps() {
        let m =
            PiecewiseLinearEnergy::new(vec![(1.0e9, 10.0), (2.0e9, 20.0), (3.0e9, 40.0)]).unwrap();
        assert_close!(m.power_watts(1.5e9), 15.0, 1e-9);
        assert_close!(m.power_watts(2.5e9), 30.0, 1e-9);
        // Outside range: linear extension of boundary segments.
        assert_close!(m.power_watts(0.5e9), 5.0, 1e-9);
        assert_close!(m.power_watts(3.5e9), 50.0, 1e-9);
        assert!(m.power_derivative(2.5e9) > m.power_derivative(1.5e9));
    }

    #[test]
    fn piecewise_linear_rejects_nonconvex() {
        let err = PiecewiseLinearEnergy::new(vec![(1.0e9, 10.0), (2.0e9, 30.0), (3.0e9, 35.0)]);
        assert!(err.is_err());
        let err = PiecewiseLinearEnergy::new(vec![(1.0e9, 10.0)]);
        assert!(err.is_err());
        let err = PiecewiseLinearEnergy::new(vec![(2.0e9, 10.0), (1.0e9, 20.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn perturbation_follows_paper_recipe() {
        let base = QuadraticEnergy::new(10.0, 100.0, 50.0);
        let p = base.perturbed(1.0);
        assert_close!(p.a, 10.1, 1e-12);
        assert_close!(p.b, 110.0, 1e-12);
        assert_close!(p.c, 55.0, 1e-12);
        let n = base.perturbed(-1.0);
        assert_close!(n.a, 9.9, 1e-12);
        assert_close!(n.b, 90.0, 1e-12);
    }

    #[test]
    fn fleet_is_deterministic_and_scaled() {
        let scales = vec![16.0, 32.0];
        let a = perturbed_fleet(2, &scales, 9);
        let b = perturbed_fleet(2, &scales, 9);
        for f in [1.8e9, 2.7e9, 3.6e9] {
            assert_close!(a[0].power_watts(f), b[0].power_watts(f), 1e-12);
        }
        // Per-4-core power at 3.6 GHz is ~78 W; a 64-core (16×) server should
        // draw roughly 16×.
        let p = a[0].power_watts(3.6e9);
        assert!((1000.0..1600.0).contains(&p), "power {p}");
    }

    #[test]
    fn fleet_members_differ() {
        let fleet = perturbed_fleet(4, &[1.0; 4], 3);
        let p: Vec<f64> = fleet.iter().map(|m| m.power_watts(3.0e9)).collect();
        assert!(p.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn fleet_all_convex() {
        let fleet = perturbed_fleet(16, &[16.0; 16], 4);
        for m in &fleet {
            assert!(validate_convexity(m.as_ref(), 1.8e9, 3.6e9));
        }
    }

    #[test]
    fn as_quadratic_propagates_through_scaling() {
        let q = QuadraticEnergy::new(4.0, 3.0, 2.0);
        let scaled = Scaled::new(Box::new(q), 16.0);
        let eff = scaled.as_quadratic().unwrap();
        assert_close!(eff.a, 64.0, 1e-12);
        assert_close!(eff.b, 48.0, 1e-12);
        assert_close!(eff.c, 32.0, 1e-12);
        // Generic models stay opaque.
        assert!(LinearEnergy::new(1.0, 0.0).as_quadratic().is_none());
        let nested = Scaled::new(Box::new(CubicEnergy::new(1.0, 0.0)), 2.0);
        assert!(nested.as_quadratic().is_none());
    }

    #[test]
    fn cost_units() {
        // 500 W for 30 minutes at $0.08/kWh = 0.5 kW × 0.5 h × 0.08 = $0.02.
        assert_close!(energy_cost_dollars(0.08, 500.0, 0.5), 0.02, 1e-12);
        assert_eq!(energy_cost_dollars(0.10, 0.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_quadratic_panics() {
        QuadraticEnergy::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "one scale per server")]
    fn fleet_scale_mismatch_panics() {
        perturbed_fleet(3, &[1.0], 0);
    }
}
