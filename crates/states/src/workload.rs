//! Per-device workload generation: task sizes `f_{i,t}` and data lengths
//! `d_{i,t}`.
//!
//! Three modes are provided:
//!
//! * [`WorkloadModel::uniform_iid`] — the §VI-A evaluation setting: each slot
//!   draws `f ~ U[50, 200] Mcycles` and `d ~ U[3, 10] Mb` independently per
//!   device.
//! * [`WorkloadModel::diurnal`] — the §III-A *model*: a periodic diurnal
//!   trend (`f̄_{i,t}`, `d̄_{i,t}`) plus iid noise, reproducing the
//!   non-iid structure of the paper's Fig. 2 trace.
//! * [`WorkloadModel::bursty`] — a Markov-modulated ON/OFF extension for
//!   stress-testing with temporally correlated, heavy-tailed demand.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::process::PeriodicProcess;
use crate::profiles::DIURNAL_DEMAND_24H;

/// One slot's workload across all devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSample {
    /// `f_{i,t}` in CPU cycles, indexed by device.
    pub task_cycles: Vec<f64>,
    /// `d_{i,t}` in bits, indexed by device.
    pub data_bits: Vec<f64>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Mode {
    UniformIid {
        cycles_range: (f64, f64),
        bits_range: (f64, f64),
        rng: Pcg32,
    },
    Diurnal {
        cycles: Vec<PeriodicProcess>,
        bits: Vec<PeriodicProcess>,
    },
    Bursty {
        cycles_range: (f64, f64),
        bits_range: (f64, f64),
        burst_multiplier: f64,
        p_enter: f64,
        p_exit: f64,
        in_burst: Vec<bool>,
        rng: Pcg32,
    },
}

/// Generates `(f_t, d_t)` for successive slots.
///
/// # Examples
///
/// ```
/// use eotora_states::workload::WorkloadModel;
/// use eotora_util::rng::Pcg32;
///
/// let mut w = WorkloadModel::uniform_iid(4, (50e6, 200e6), (3e6, 10e6), Pcg32::seed(1));
/// let s = w.sample(0);
/// assert_eq!(s.task_cycles.len(), 4);
/// assert!(s.task_cycles.iter().all(|&f| (50e6..=200e6).contains(&f)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    num_devices: usize,
    mode: Mode,
}

impl WorkloadModel {
    /// Uniform iid draws per slot and device (the paper's evaluation mode).
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or a range is reversed/non-positive.
    pub fn uniform_iid(
        num_devices: usize,
        cycles_range: (f64, f64),
        bits_range: (f64, f64),
        rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(0.0 < cycles_range.0 && cycles_range.0 <= cycles_range.1, "invalid cycles range");
        assert!(0.0 < bits_range.0 && bits_range.0 <= bits_range.1, "invalid bits range");
        Self { num_devices, mode: Mode::UniformIid { cycles_range, bits_range, rng } }
    }

    /// Diurnal trend × per-device base demand, plus relative iid noise — the
    /// non-iid model of §III-A. `period` slots per day; base demands are
    /// drawn once per device from the given ranges.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`, `period == 0`, or a range is invalid.
    pub fn diurnal(
        num_devices: usize,
        period: usize,
        mean_cycles_range: (f64, f64),
        mean_bits_range: (f64, f64),
        noise_rel: f64,
        mut rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(period > 0, "period must be positive");
        let resample = |s: usize| {
            let pos = s as f64 * 24.0 / period as f64;
            let lo = pos.floor() as usize % 24;
            let hi = (lo + 1) % 24;
            let frac = pos - pos.floor();
            DIURNAL_DEMAND_24H[lo] * (1.0 - frac) + DIURNAL_DEMAND_24H[hi] * frac
        };
        let shape: Vec<f64> = (0..period).map(resample).collect();
        let mut cycles = Vec::with_capacity(num_devices);
        let mut bits = Vec::with_capacity(num_devices);
        for i in 0..num_devices {
            let base_f = rng.uniform_in(mean_cycles_range.0, mean_cycles_range.1);
            let base_d = rng.uniform_in(mean_bits_range.0, mean_bits_range.1);
            let trend_f: Vec<f64> = shape.iter().map(|&m| m * base_f).collect();
            let trend_d: Vec<f64> = shape.iter().map(|&m| m * base_d).collect();
            cycles.push(PeriodicProcess::new(trend_f, noise_rel, rng.fork(2 * i as u64)));
            bits.push(PeriodicProcess::new(trend_d, noise_rel, rng.fork(2 * i as u64 + 1)));
        }
        Self { num_devices, mode: Mode::Diurnal { cycles, bits } }
    }

    /// Markov-modulated (ON/OFF) bursty workloads: each device flips between
    /// a baseline state (uniform draws as in the paper) and a *burst* state
    /// where demand is multiplied by `burst_multiplier`. Transitions are a
    /// two-state Markov chain with entry/exit probabilities per slot —
    /// a heavier-tailed, temporally correlated alternative to the paper's
    /// iid draws for stress-testing the controller.
    ///
    /// # Panics
    ///
    /// Panics on empty/invalid ranges, `burst_multiplier < 1`, or
    /// probabilities outside `[0, 1]`.
    pub fn bursty(
        num_devices: usize,
        cycles_range: (f64, f64),
        bits_range: (f64, f64),
        burst_multiplier: f64,
        p_enter: f64,
        p_exit: f64,
        rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(0.0 < cycles_range.0 && cycles_range.0 <= cycles_range.1, "invalid cycles range");
        assert!(0.0 < bits_range.0 && bits_range.0 <= bits_range.1, "invalid bits range");
        assert!(burst_multiplier >= 1.0, "burst multiplier must be at least 1");
        assert!(
            (0.0..=1.0).contains(&p_enter) && (0.0..=1.0).contains(&p_exit),
            "invalid probability"
        );
        Self {
            num_devices,
            mode: Mode::Bursty {
                cycles_range,
                bits_range,
                burst_multiplier,
                p_enter,
                p_exit,
                in_burst: vec![false; num_devices],
                rng,
            },
        }
    }

    /// Number of devices this model generates for.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Draws `(f_t, d_t)` for slot `t`.
    pub fn sample(&mut self, slot: u64) -> WorkloadSample {
        match &mut self.mode {
            Mode::UniformIid { cycles_range, bits_range, rng } => {
                let task_cycles = (0..self.num_devices)
                    .map(|_| rng.uniform_in(cycles_range.0, cycles_range.1))
                    .collect();
                let data_bits = (0..self.num_devices)
                    .map(|_| rng.uniform_in(bits_range.0, bits_range.1))
                    .collect();
                WorkloadSample { task_cycles, data_bits }
            }
            Mode::Diurnal { cycles, bits } => WorkloadSample {
                task_cycles: cycles.iter_mut().map(|p| p.sample(slot)).collect(),
                data_bits: bits.iter_mut().map(|p| p.sample(slot)).collect(),
            },
            Mode::Bursty {
                cycles_range,
                bits_range,
                burst_multiplier,
                p_enter,
                p_exit,
                in_burst,
                rng,
            } => {
                let mut task_cycles = Vec::with_capacity(self.num_devices);
                let mut data_bits = Vec::with_capacity(self.num_devices);
                for burst in in_burst.iter_mut() {
                    // Markov transition, then draw at the state's scale.
                    let u = rng.uniform();
                    *burst = if *burst { u >= *p_exit } else { u < *p_enter };
                    let mult = if *burst { *burst_multiplier } else { 1.0 };
                    task_cycles.push(mult * rng.uniform_in(cycles_range.0, cycles_range.1));
                    data_bits.push(mult * rng.uniform_in(bits_range.0, bits_range.1));
                }
                WorkloadSample { task_cycles, data_bits }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::stats::Summary;

    #[test]
    fn uniform_ranges() {
        let mut w = WorkloadModel::uniform_iid(8, (50e6, 200e6), (3e6, 10e6), Pcg32::seed(1));
        for t in 0..100 {
            let s = w.sample(t);
            assert!(s.task_cycles.iter().all(|&f| (50e6..=200e6).contains(&f)));
            assert!(s.data_bits.iter().all(|&d| (3e6..=10e6).contains(&d)));
        }
    }

    #[test]
    fn uniform_mean_matches_midpoint() {
        let mut w = WorkloadModel::uniform_iid(1, (100.0, 200.0), (1.0, 2.0), Pcg32::seed(2));
        let xs: Vec<f64> = (0..50_000).map(|t| w.sample(t).task_cycles[0]).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 150.0).abs() < 1.0, "mean {}", s.mean);
    }

    #[test]
    fn diurnal_tracks_demand_shape() {
        let mut w = WorkloadModel::diurnal(3, 24, (100e6, 100e6), (5e6, 5e6), 0.0, Pcg32::seed(3));
        // Noise-free: hour 19 (peak 1.50) demand > hour 3 (trough 0.38).
        let peak = w.sample(19);
        let trough = w.sample(3);
        for i in 0..3 {
            assert!(peak.task_cycles[i] > trough.task_cycles[i]);
            assert!(peak.data_bits[i] > trough.data_bits[i]);
        }
    }

    #[test]
    fn diurnal_is_periodic_without_noise() {
        let mut w = WorkloadModel::diurnal(2, 24, (80e6, 120e6), (3e6, 10e6), 0.0, Pcg32::seed(4));
        let a = w.sample(5);
        let b = w.sample(5 + 24);
        assert_eq!(a, b);
    }

    #[test]
    fn devices_have_distinct_bases() {
        let mut w = WorkloadModel::diurnal(4, 24, (50e6, 200e6), (3e6, 10e6), 0.0, Pcg32::seed(5));
        let s = w.sample(0);
        let all_same = s.task_cycles.windows(2).all(|p| p[0] == p[1]);
        assert!(!all_same, "devices should draw different base demands");
    }

    #[test]
    fn bursty_state_persists_and_amplifies() {
        // With p_exit = 0 a device that enters a burst stays bursting, and
        // all its draws exceed the baseline maximum.
        let mut w =
            WorkloadModel::bursty(4, (100.0, 200.0), (10.0, 20.0), 10.0, 0.5, 0.0, Pcg32::seed(6));
        let mut ever_burst = [false; 4];
        for t in 0..50 {
            let s = w.sample(t);
            for (i, flag) in ever_burst.iter_mut().enumerate() {
                let bursting_now = s.task_cycles[i] > 200.0;
                if *flag {
                    assert!(bursting_now, "device {i} left an absorbing burst at t={t}");
                }
                *flag |= bursting_now;
            }
        }
        assert!(ever_burst.iter().all(|&b| b), "p_enter=0.5 over 50 slots must trigger bursts");
    }

    #[test]
    fn bursty_occupancy_matches_chain_stationary_distribution() {
        // Stationary P(burst) = p_enter / (p_enter + p_exit).
        let (pe, px) = (0.1, 0.3);
        let mut w = WorkloadModel::bursty(1, (1.0, 1.0), (1.0, 1.0), 5.0, pe, px, Pcg32::seed(7));
        let n = 200_000;
        let bursting = (0..n).filter(|&t| w.sample(t).task_cycles[0] > 1.5).count();
        let expected = pe / (pe + px);
        let measured = bursting as f64 / n as f64;
        assert!((measured - expected).abs() < 0.01, "{measured} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "burst multiplier")]
    fn bursty_rejects_shrinking_multiplier() {
        WorkloadModel::bursty(1, (1.0, 2.0), (1.0, 2.0), 0.5, 0.1, 0.1, Pcg32::seed(0));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        WorkloadModel::uniform_iid(0, (1.0, 2.0), (1.0, 2.0), Pcg32::seed(0));
    }

    #[test]
    #[should_panic(expected = "invalid cycles range")]
    fn reversed_range_panics() {
        WorkloadModel::uniform_iid(1, (2.0, 1.0), (1.0, 2.0), Pcg32::seed(0));
    }
}
