//! Embedded daily profiles substituting the paper's external traces.
//!
//! The paper drives its simulations with (a) NYISO real-time hourly
//! electricity prices and (b) an hourly YouTube view-count trace (its Fig. 2)
//! to justify the periodic-plus-iid state model. Neither dataset ships with
//! the paper, so this module embeds *shape-faithful* 24-hour profiles:
//!
//! * [`NYISO_LIKE_PRICE_24H`] follows the characteristic day-ahead LBMP
//!   curve for NYC: an overnight trough (~$25/MWh), a morning ramp, and an
//!   evening peak (~$70/MWh). Values are stored in $/kWh.
//! * [`DIURNAL_DEMAND_24H`] is a dimensionless demand multiplier (mean ≈ 1)
//!   with the two-hump work-hour/evening-leisure shape seen in the paper's
//!   video-views trace: low 3 a.m. trough, evening maximum.
//!
//! DESIGN.md records this substitution; the algorithms only depend on the
//! periodic-plus-iid *structure*, which these profiles preserve.

/// NYISO-shaped hourly electricity prices in $/kWh (24 entries, midnight
/// first).
pub const NYISO_LIKE_PRICE_24H: [f64; 24] = [
    0.031, 0.028, 0.026, 0.025, 0.026, 0.029, //  0–5: overnight trough
    0.036, 0.045, 0.052, 0.055, 0.057, 0.058, //  6–11: morning ramp
    0.059, 0.060, 0.062, 0.064, 0.067, 0.070, // 12–17: afternoon climb
    0.069, 0.065, 0.058, 0.049, 0.041, 0.035, // 18–23: evening decline
];

/// Dimensionless diurnal demand multiplier (24 entries, midnight first);
/// mean ≈ 1.0.
pub const DIURNAL_DEMAND_24H: [f64; 24] = [
    0.62, 0.50, 0.42, 0.38, 0.40, 0.50, //  0–5: night trough
    0.68, 0.90, 1.08, 1.18, 1.22, 1.25, //  6–11: morning ramp-up
    1.24, 1.20, 1.18, 1.20, 1.26, 1.35, // 12–17: workday plateau
    1.45, 1.50, 1.42, 1.22, 0.98, 0.77, // 18–23: evening peak and decline
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_profile_shape() {
        // Trough at night, peak late afternoon/evening.
        let min_idx = NYISO_LIKE_PRICE_24H
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let max_idx = NYISO_LIKE_PRICE_24H
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((0..=5).contains(&min_idx), "trough at hour {min_idx}");
        assert!((15..=20).contains(&max_idx), "peak at hour {max_idx}");
        assert!(NYISO_LIKE_PRICE_24H.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn price_peak_to_trough_ratio_realistic() {
        let max = NYISO_LIKE_PRICE_24H.iter().cloned().fold(0.0, f64::max);
        let min = NYISO_LIKE_PRICE_24H.iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio = max / min;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn demand_profile_mean_near_one() {
        let mean: f64 = DIURNAL_DEMAND_24H.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn demand_profile_peaks_in_evening() {
        let max_idx = DIURNAL_DEMAND_24H
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((17..=21).contains(&max_idx), "peak at hour {max_idx}");
    }
}
