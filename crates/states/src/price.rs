//! Electricity-price generator `p_t = p̄_t + e_t^p`.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::process::PeriodicProcess;
use crate::profiles::NYISO_LIKE_PRICE_24H;

/// Generates electricity prices in $/kWh with the paper's periodic-plus-iid
/// structure.
///
/// # Examples
///
/// ```
/// use eotora_states::price::PriceModel;
/// use eotora_util::rng::Pcg32;
///
/// let mut m = PriceModel::nyiso_like(24, 0.0, Pcg32::seed(1));
/// // Noiseless: exact daily periodicity.
/// assert_eq!(m.sample(0), m.sample(24));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceModel {
    process: PeriodicProcess,
}

impl PriceModel {
    /// NYISO-shaped daily price curve resampled to `period` slots per day,
    /// with relative Gaussian noise `noise_rel`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `noise_rel < 0`.
    pub fn nyiso_like(period: usize, noise_rel: f64, rng: Pcg32) -> Self {
        assert!(period > 0, "period must be positive");
        let trend: Vec<f64> = (0..period)
            .map(|s| {
                // Piecewise-linear resample of the 24-hour profile.
                let pos = s as f64 * 24.0 / period as f64;
                let lo = pos.floor() as usize % 24;
                let hi = (lo + 1) % 24;
                let frac = pos - pos.floor();
                NYISO_LIKE_PRICE_24H[lo] * (1.0 - frac) + NYISO_LIKE_PRICE_24H[hi] * frac
            })
            .collect();
        Self { process: PeriodicProcess::new(trend, noise_rel, rng) }
    }

    /// A constant price (handy for isolating latency effects in tests).
    ///
    /// # Panics
    ///
    /// Panics if `price` is not positive.
    pub fn constant(price: f64) -> Self {
        Self { process: PeriodicProcess::new(vec![price], 0.0, Pcg32::seed(0)) }
    }

    /// A custom trend with relative noise.
    pub fn from_trend(trend: Vec<f64>, noise_rel: f64, rng: Pcg32) -> Self {
        Self { process: PeriodicProcess::new(trend, noise_rel, rng) }
    }

    /// Period `D` of the trend.
    pub fn period(&self) -> usize {
        self.process.period()
    }

    /// Deterministic trend `p̄_t` at slot `t`.
    pub fn trend_at(&self, slot: u64) -> f64 {
        self.process.trend_at(slot)
    }

    /// Draws `p_t` for slot `t`.
    pub fn sample(&mut self, slot: u64) -> f64 {
        self.process.sample(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_period_and_positivity() {
        let mut m = PriceModel::nyiso_like(24, 0.1, Pcg32::seed(2));
        assert_eq!(m.period(), 24);
        for t in 0..200 {
            assert!(m.sample(t) > 0.0);
        }
    }

    #[test]
    fn resampling_to_other_period() {
        let m48 = PriceModel::nyiso_like(48, 0.0, Pcg32::seed(0));
        assert_eq!(m48.period(), 48);
        // Slot 0 of the 48-slot day equals hour 0 of the profile.
        assert_eq!(m48.trend_at(0), NYISO_LIKE_PRICE_24H[0]);
        // Slot 2 equals hour 1.
        assert_eq!(m48.trend_at(2), NYISO_LIKE_PRICE_24H[1]);
        // Interpolated half-hour slot sits between its neighbours.
        let mid = m48.trend_at(1);
        let (a, b) = (NYISO_LIKE_PRICE_24H[0], NYISO_LIKE_PRICE_24H[1]);
        assert!(mid >= a.min(b) && mid <= a.max(b));
    }

    #[test]
    fn constant_price() {
        let mut m = PriceModel::constant(0.05);
        assert_eq!(m.sample(0), 0.05);
        assert_eq!(m.sample(99), 0.05);
    }

    #[test]
    fn noise_perturbs_but_tracks_trend() {
        let mut m = PriceModel::nyiso_like(24, 0.05, Pcg32::seed(3));
        let mut rel_errs = Vec::new();
        for t in 0..24 * 200 {
            let p = m.sample(t);
            rel_errs.push((p - m.trend_at(t)) / m.trend_at(t));
        }
        let mean: f64 = rel_errs.iter().sum::<f64>() / rel_errs.len() as f64;
        assert!(mean.abs() < 0.01, "noise should be zero-mean, got {mean}");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        PriceModel::nyiso_like(0, 0.0, Pcg32::seed(0));
    }
}
