//! Access-channel spectral-efficiency models `h_{i,k,t}`.
//!
//! The paper's evaluation draws spectral efficiencies uniformly in
//! 15–50 bit/s/Hz per device/base-station pair ([`UniformChannel`]).
//! [`MobilityChannel`] additionally implements the physical story the
//! formulation tells — devices move, so channels vary — via random-waypoint
//! motion, log-distance path loss, and the Shannon spectral efficiency
//! `log₂(1 + SNR)` clipped to a practical MCS ceiling.

use eotora_topology::Topology;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::mobility::RandomWaypoint;

/// A source of per-slot access spectral efficiencies.
///
/// Implementations return a matrix `h[i][k]` in bit/s/Hz for device `i` and
/// base station `k`.
pub trait ChannelModel: std::fmt::Debug {
    /// Samples `h_t` for slot `t` over the devices and stations of `topo`.
    fn sample(&mut self, slot: u64, topo: &Topology) -> Vec<Vec<f64>>;
}

/// Uniform iid spectral efficiencies (the paper's §VI-A setting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformChannel {
    num_devices: usize,
    num_base_stations: usize,
    range: (f64, f64),
    rng: Pcg32,
}

impl UniformChannel {
    /// Creates a model drawing each `h_{i,k,t}` uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if counts are zero or the range is reversed/non-positive.
    pub fn new(
        num_devices: usize,
        num_base_stations: usize,
        range: (f64, f64),
        rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0 && num_base_stations > 0, "empty channel matrix");
        assert!(0.0 < range.0 && range.0 <= range.1, "invalid efficiency range");
        Self { num_devices, num_base_stations, range, rng }
    }
}

impl ChannelModel for UniformChannel {
    fn sample(&mut self, _slot: u64, topo: &Topology) -> Vec<Vec<f64>> {
        assert_eq!(topo.num_devices(), self.num_devices, "device count mismatch");
        assert_eq!(topo.num_base_stations(), self.num_base_stations, "station count mismatch");
        (0..self.num_devices)
            .map(|_| {
                (0..self.num_base_stations)
                    .map(|_| self.rng.uniform_in(self.range.0, self.range.1))
                    .collect()
            })
            .collect()
    }
}

/// Configuration of the physical [`MobilityChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityChannelConfig {
    /// Path-loss exponent (urban macro ≈ 3.5).
    pub path_loss_exponent: f64,
    /// Reference SNR (linear) at `reference_distance_m`.
    pub reference_snr: f64,
    /// Reference distance in meters for `reference_snr`.
    pub reference_distance_m: f64,
    /// Log-normal shadowing standard deviation in dB.
    pub shadowing_std_db: f64,
    /// Spectral-efficiency ceiling in bit/s/Hz (MCS cap).
    pub max_efficiency: f64,
    /// Spectral-efficiency floor in bit/s/Hz (coverage edge).
    pub min_efficiency: f64,
    /// Device speed range in meters per slot.
    pub speed_range: (f64, f64),
}

impl Default for MobilityChannelConfig {
    fn default() -> Self {
        Self {
            path_loss_exponent: 3.5,
            reference_snr: 1e6, // 60 dB at 10 m
            reference_distance_m: 10.0,
            shadowing_std_db: 4.0,
            max_efficiency: 50.0,
            min_efficiency: 0.5,
            speed_range: (5.0, 30.0),
        }
    }
}

/// Spectral efficiency driven by random-waypoint motion and log-distance
/// path loss with log-normal shadowing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityChannel {
    config: MobilityChannelConfig,
    mobility: RandomWaypoint,
    rng: Pcg32,
    last_slot: Option<u64>,
}

impl MobilityChannel {
    /// Creates a channel for `num_devices` walkers in a square of side
    /// `area_side_m`.
    pub fn new(
        num_devices: usize,
        area_side_m: f64,
        config: MobilityChannelConfig,
        mut rng: Pcg32,
    ) -> Self {
        let mobility =
            RandomWaypoint::new(num_devices, area_side_m, config.speed_range, rng.fork(0));
        Self { config, mobility, rng, last_slot: None }
    }

    /// Current device positions (for visualization/diagnostics).
    pub fn positions(&self) -> &[eotora_topology::Point] {
        self.mobility.positions()
    }
}

impl ChannelModel for MobilityChannel {
    fn sample(&mut self, slot: u64, topo: &Topology) -> Vec<Vec<f64>> {
        // Advance the walkers once per new slot (idempotent within a slot).
        if self.last_slot != Some(slot) {
            self.mobility.step();
            self.last_slot = Some(slot);
        }
        let cfg = self.config;
        let positions = self.mobility.positions().to_vec();
        positions
            .iter()
            .map(|&pos| {
                topo.base_station_ids()
                    .map(|k| {
                        let d = topo.base_station(k).position.distance_to(pos).max(1.0);
                        let path_gain = (cfg.reference_distance_m / d).powf(cfg.path_loss_exponent);
                        let shadow_db = self.rng.normal(0.0, cfg.shadowing_std_db);
                        let snr = cfg.reference_snr * path_gain * 10f64.powf(shadow_db / 10.0);
                        (1.0 + snr).log2().clamp(cfg.min_efficiency, cfg.max_efficiency)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Temporally correlated spectral efficiency: a per-pair Gauss–Markov
/// (AR(1)) process in dB around a fixed mean, clipped to a feasible range.
///
/// The paper's evaluation redraws `h_{i,k,t}` independently each slot; real
/// channels decorrelate over seconds-to-minutes. This model interpolates:
/// `x_{t+1} = ρ·x_t + √(1−ρ²)·σ·ε`, applied in dB, so consecutive slots see
/// similar channels for `ρ` near 1 and the paper's iid draws at `ρ = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussMarkovChannel {
    mean: Vec<Vec<f64>>,
    deviation_db: Vec<Vec<f64>>,
    rho: f64,
    sigma_db: f64,
    range: (f64, f64),
    rng: Pcg32,
    last_slot: Option<u64>,
}

impl GaussMarkovChannel {
    /// Creates a channel with per-pair means drawn uniformly from `range`,
    /// correlation `rho ∈ [0, 1)`, and innovation deviation `sigma_db`.
    ///
    /// # Panics
    ///
    /// Panics on empty dimensions, invalid range, `rho ∉ [0, 1)`, or
    /// negative `sigma_db`.
    pub fn new(
        num_devices: usize,
        num_base_stations: usize,
        range: (f64, f64),
        rho: f64,
        sigma_db: f64,
        mut rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0 && num_base_stations > 0, "empty channel matrix");
        assert!(0.0 < range.0 && range.0 <= range.1, "invalid efficiency range");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        let mean = (0..num_devices)
            .map(|_| (0..num_base_stations).map(|_| rng.uniform_in(range.0, range.1)).collect())
            .collect();
        let deviation_db = vec![vec![0.0; num_base_stations]; num_devices];
        Self { mean, deviation_db, rho, sigma_db, range, rng, last_slot: None }
    }

    fn advance(&mut self) {
        let scale = (1.0 - self.rho * self.rho).sqrt() * self.sigma_db;
        for row in self.deviation_db.iter_mut() {
            for dev in row.iter_mut() {
                *dev = self.rho * *dev + self.rng.normal(0.0, scale);
            }
        }
    }

    fn matrix(&self) -> Vec<Vec<f64>> {
        self.mean
            .iter()
            .zip(&self.deviation_db)
            .map(|(means, devs)| {
                means
                    .iter()
                    .zip(devs)
                    .map(|(&m, &d)| (m * 10f64.powf(d / 10.0)).clamp(self.range.0, self.range.1))
                    .collect()
            })
            .collect()
    }
}

impl ChannelModel for GaussMarkovChannel {
    fn sample(&mut self, slot: u64, topo: &Topology) -> Vec<Vec<f64>> {
        assert_eq!(topo.num_devices(), self.mean.len(), "device count mismatch");
        // Advance once per new slot (idempotent within a slot).
        if self.last_slot != Some(slot) {
            self.advance();
            self.last_slot = Some(slot);
        }
        self.matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_topology::RandomTopologyConfig;

    fn topo(devices: usize) -> Topology {
        Topology::random(&RandomTopologyConfig::paper_defaults(devices), 11)
    }

    #[test]
    fn uniform_channel_range_and_shape() {
        let t = topo(7);
        let mut c = UniformChannel::new(7, 6, (15.0, 50.0), Pcg32::seed(1));
        let h = c.sample(0, &t);
        assert_eq!(h.len(), 7);
        assert_eq!(h[0].len(), 6);
        for row in &h {
            assert!(row.iter().all(|&v| (15.0..=50.0).contains(&v)));
        }
    }

    #[test]
    fn uniform_channel_varies_over_time() {
        let t = topo(3);
        let mut c = UniformChannel::new(3, 6, (15.0, 50.0), Pcg32::seed(2));
        let a = c.sample(0, &t);
        let b = c.sample(1, &t);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "device count mismatch")]
    fn uniform_channel_checks_topology() {
        let t = topo(3);
        let mut c = UniformChannel::new(5, 6, (15.0, 50.0), Pcg32::seed(2));
        c.sample(0, &t);
    }

    #[test]
    fn mobility_channel_bounds() {
        let t = topo(5);
        let mut c =
            MobilityChannel::new(5, 2000.0, MobilityChannelConfig::default(), Pcg32::seed(3));
        for slot in 0..20 {
            let h = c.sample(slot, &t);
            for row in &h {
                assert!(row.iter().all(|&v| (0.5..=50.0).contains(&v)), "row {row:?}");
            }
        }
    }

    #[test]
    fn mobility_channel_closer_is_better_on_average() {
        // One device pinned by zero speed; compare efficiencies toward the
        // nearest vs farthest base station over many shadowing draws.
        let t = topo(1);
        let cfg = MobilityChannelConfig {
            speed_range: (0.0, 0.0),
            shadowing_std_db: 2.0,
            ..Default::default()
        };
        let mut c = MobilityChannel::new(1, 2000.0, cfg, Pcg32::seed(4));
        let pos = c.positions()[0];
        let mut dists: Vec<(usize, f64)> = t
            .base_station_ids()
            .map(|k| (k.index(), t.base_station(k).position.distance_to(pos)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let (near, far) = (dists[0].0, dists[dists.len() - 1].0);
        let mut near_sum = 0.0;
        let mut far_sum = 0.0;
        for slot in 0..300 {
            let h = c.sample(slot, &t);
            near_sum += h[0][near];
            far_sum += h[0][far];
        }
        assert!(near_sum > far_sum, "near {near_sum} vs far {far_sum}");
    }

    #[test]
    fn gauss_markov_bounds_and_correlation() {
        let t = topo(3);
        let mut c = GaussMarkovChannel::new(3, 6, (15.0, 50.0), 0.9, 3.0, Pcg32::seed(6));
        let mut prev: Option<Vec<Vec<f64>>> = None;
        let mut step_sizes = Vec::new();
        for slot in 0..200 {
            let h = c.sample(slot, &t);
            for row in &h {
                assert!(row.iter().all(|&v| (15.0..=50.0).contains(&v)));
            }
            if let Some(p) = prev {
                step_sizes.push((h[0][0] - p[0][0]).abs());
            }
            prev = Some(h);
        }
        // High correlation ⇒ consecutive values usually move slowly relative
        // to the full range.
        let mean_step: f64 = step_sizes.iter().sum::<f64>() / step_sizes.len() as f64;
        assert!(mean_step < 8.0, "mean step {mean_step} too jumpy for rho=0.9");
    }

    #[test]
    fn gauss_markov_rho_zero_is_memoryless_scale() {
        // rho = 0 decorrelates fully: lag-1 autocorrelation near zero.
        let t = topo(1);
        let mut c = GaussMarkovChannel::new(1, 6, (15.0, 50.0), 0.0, 2.0, Pcg32::seed(7));
        let xs: Vec<f64> = (0..2000).map(|slot| c.sample(slot, &t)[0][0]).collect();
        let ac = eotora_util::series::autocorrelation(&xs, 1).unwrap();
        assert!(ac.abs() < 0.1, "lag-1 autocorrelation {ac}");
    }

    #[test]
    fn gauss_markov_idempotent_within_slot() {
        let t = topo(2);
        let mut c = GaussMarkovChannel::new(2, 6, (15.0, 50.0), 0.5, 2.0, Pcg32::seed(8));
        let a = c.sample(3, &t);
        let b = c.sample(3, &t);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn gauss_markov_rejects_rho_one() {
        GaussMarkovChannel::new(1, 1, (1.0, 2.0), 1.0, 1.0, Pcg32::seed(0));
    }

    #[test]
    fn mobility_channel_idempotent_within_slot() {
        let t = topo(2);
        let mut c =
            MobilityChannel::new(2, 1000.0, MobilityChannelConfig::default(), Pcg32::seed(5));
        let _ = c.sample(0, &t);
        let p1 = c.positions().to_vec();
        let _ = c.sample(0, &t);
        assert_eq!(p1, c.positions());
    }
}
