//! Random-waypoint mobility for mobile devices.
//!
//! The paper's channels vary because "the MDs move over time" (§III-A). Its
//! evaluation abstracts this into uniform per-slot draws; this module
//! provides the explicit movement model behind the alternative
//! [`crate::channel::MobilityChannel`], used by the `mobility_scenario`
//! example: each device repeatedly picks a uniform waypoint in the square
//! deployment area and walks toward it at its own speed, one step per slot.

use eotora_topology::Point;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Random-waypoint walker state for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Walker {
    position: Point,
    target: Point,
    speed_m_per_slot: f64,
}

/// A random-waypoint mobility model over a square area.
///
/// # Examples
///
/// ```
/// use eotora_states::mobility::RandomWaypoint;
/// use eotora_util::rng::Pcg32;
///
/// let mut m = RandomWaypoint::new(5, 1000.0, (10.0, 50.0), Pcg32::seed(1));
/// let before = m.positions().to_vec();
/// m.step();
/// let after = m.positions();
/// assert!(before.iter().zip(after).any(|(a, b)| a != b));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    walkers: Vec<Walker>,
    positions: Vec<Point>,
    area_side_m: f64,
    rng: Pcg32,
}

impl RandomWaypoint {
    /// Creates `num_devices` walkers uniformly placed in a
    /// `area_side_m × area_side_m` square, with per-device speeds drawn
    /// uniformly from `speed_range` (meters per slot).
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`, the area is non-positive, or the speed
    /// range is reversed or negative.
    pub fn new(
        num_devices: usize,
        area_side_m: f64,
        speed_range: (f64, f64),
        mut rng: Pcg32,
    ) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(area_side_m > 0.0, "area must be positive");
        assert!(0.0 <= speed_range.0 && speed_range.0 <= speed_range.1, "invalid speed range");
        let mut walkers = Vec::with_capacity(num_devices);
        for _ in 0..num_devices {
            let position =
                Point::new(rng.uniform_in(0.0, area_side_m), rng.uniform_in(0.0, area_side_m));
            let target =
                Point::new(rng.uniform_in(0.0, area_side_m), rng.uniform_in(0.0, area_side_m));
            let speed = rng.uniform_in(speed_range.0, speed_range.1);
            walkers.push(Walker { position, target, speed_m_per_slot: speed });
        }
        let positions = walkers.iter().map(|w| w.position).collect();
        Self { walkers, positions, area_side_m, rng }
    }

    /// Current positions, indexed by device.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Advances every walker by one slot; on reaching its waypoint a walker
    /// draws a fresh uniform target.
    pub fn step(&mut self) {
        for w in &mut self.walkers {
            let dist = w.position.distance_to(w.target);
            if dist <= w.speed_m_per_slot {
                w.position = w.target;
                w.target = Point::new(
                    self.rng.uniform_in(0.0, self.area_side_m),
                    self.rng.uniform_in(0.0, self.area_side_m),
                );
            } else {
                let t = w.speed_m_per_slot / dist;
                w.position = w.position.lerp(w.target, t);
            }
        }
        for (p, w) in self.positions.iter_mut().zip(&self.walkers) {
            *p = w.position;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkers_stay_in_area() {
        let mut m = RandomWaypoint::new(10, 500.0, (5.0, 40.0), Pcg32::seed(7));
        for _ in 0..1000 {
            m.step();
            for p in m.positions() {
                assert!((0.0..=500.0).contains(&p.x) && (0.0..=500.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn step_moves_at_most_speed() {
        let mut m = RandomWaypoint::new(5, 1000.0, (10.0, 10.0), Pcg32::seed(8));
        let before = m.positions().to_vec();
        m.step();
        for (a, b) in before.iter().zip(m.positions()) {
            assert!(a.distance_to(*b) <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn zero_speed_stays_put() {
        let mut m = RandomWaypoint::new(3, 100.0, (0.0, 0.0), Pcg32::seed(9));
        let before = m.positions().to_vec();
        for _ in 0..10 {
            m.step();
        }
        assert_eq!(before, m.positions());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = RandomWaypoint::new(4, 200.0, (1.0, 5.0), Pcg32::seed(3));
        let mut b = RandomWaypoint::new(4, 200.0, (1.0, 5.0), Pcg32::seed(3));
        for _ in 0..50 {
            a.step();
            b.step();
        }
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        RandomWaypoint::new(0, 100.0, (0.0, 1.0), Pcg32::seed(0));
    }
}
