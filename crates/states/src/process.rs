//! Periodic-trend-plus-iid-noise scalar processes.
//!
//! The paper models every system state as `s_t = s̄_t + e_t`, where `s̄_t` is
//! a deterministic trend with period `D` and `e_t` are iid, zero-mean random
//! variables (§III-A, motivated by Fig. 2). [`PeriodicProcess`] is that
//! object; the DPP convergence bound of Theorem 4 scales with the period `D`
//! exposed by [`PeriodicProcess::period`].

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// A scalar process `s_t = trend[t mod D] · (1 + ε_t)` with Gaussian relative
/// noise, clamped to stay positive.
///
/// Relative (multiplicative) noise is used instead of additive noise so one
/// noise level fits trends of any scale; for small noise the two coincide
/// with `σ_additive = σ_rel · s̄_t`, which still satisfies the paper's
/// "periodic trend + iid perturbation" structure.
///
/// # Examples
///
/// ```
/// use eotora_states::process::PeriodicProcess;
/// use eotora_util::rng::Pcg32;
///
/// let mut p = PeriodicProcess::new(vec![1.0, 2.0, 3.0], 0.0, Pcg32::seed(1));
/// assert_eq!(p.sample(0), 1.0);
/// assert_eq!(p.sample(4), 2.0); // period 3
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicProcess {
    trend: Vec<f64>,
    noise_rel: f64,
    rng: Pcg32,
}

impl PeriodicProcess {
    /// Creates a process from a one-period trend and relative noise level.
    ///
    /// # Panics
    ///
    /// Panics if `trend` is empty, contains non-positive values, or
    /// `noise_rel` is negative.
    pub fn new(trend: Vec<f64>, noise_rel: f64, rng: Pcg32) -> Self {
        assert!(!trend.is_empty(), "trend must be non-empty");
        assert!(trend.iter().all(|&v| v > 0.0), "trend values must be positive");
        assert!(noise_rel >= 0.0, "noise level must be non-negative");
        Self { trend, noise_rel, rng }
    }

    /// The period `D` of the underlying trend.
    pub fn period(&self) -> usize {
        self.trend.len()
    }

    /// The deterministic trend value `s̄_t` at slot `t` (no noise).
    pub fn trend_at(&self, slot: u64) -> f64 {
        self.trend[(slot % self.trend.len() as u64) as usize]
    }

    /// Draws `s_t` for slot `t`: trend times `(1 + ε)`, `ε ~ N(0, noise²)`,
    /// truncated so the result stays at least 1% of the trend value
    /// (prices/workloads are physically positive).
    pub fn sample(&mut self, slot: u64) -> f64 {
        let base = self.trend_at(slot);
        let noisy = base * (1.0 + self.rng.normal(0.0, self.noise_rel));
        noisy.max(0.01 * base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::stats::Summary;

    #[test]
    fn noiseless_process_repeats_trend() {
        let mut p = PeriodicProcess::new(vec![5.0, 7.0], 0.0, Pcg32::seed(0));
        let vals: Vec<f64> = (0..6).map(|t| p.sample(t)).collect();
        assert_eq!(vals, vec![5.0, 7.0, 5.0, 7.0, 5.0, 7.0]);
    }

    #[test]
    fn noise_centers_on_trend() {
        let mut p = PeriodicProcess::new(vec![10.0], 0.05, Pcg32::seed(4));
        let xs: Vec<f64> = (0..20_000).map(|t| p.sample(t)).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 10.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev - 0.5).abs() < 0.05, "std {}", s.std_dev);
    }

    #[test]
    fn samples_stay_positive_under_huge_noise() {
        let mut p = PeriodicProcess::new(vec![1.0], 5.0, Pcg32::seed(5));
        assert!((0..10_000).all(|t| p.sample(t) > 0.0));
    }

    #[test]
    fn period_and_trend_access() {
        let p = PeriodicProcess::new(vec![1.0, 2.0, 4.0], 0.1, Pcg32::seed(1));
        assert_eq!(p.period(), 3);
        assert_eq!(p.trend_at(5), 4.0);
        assert_eq!(p.trend_at(6), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trend_panics() {
        PeriodicProcess::new(vec![], 0.0, Pcg32::seed(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_trend_panics() {
        PeriodicProcess::new(vec![1.0, 0.0], 0.0, Pcg32::seed(0));
    }

    #[test]
    fn serde_roundtrip_preserves_stream() {
        let mut p = PeriodicProcess::new(vec![2.0], 0.3, Pcg32::seed(9));
        let _ = p.sample(0);
        let json = serde_json::to_string(&p).unwrap();
        let mut back: PeriodicProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sample(1), p.sample(1));
    }
}
