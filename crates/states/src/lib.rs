//! Time-varying system states of the MEC system (paper §III-B.1).
//!
//! At each slot the controller observes four states
//! `β_t = (f_t, d_t, h_t, p_t)`:
//!
//! * `f_t` — per-device task sizes in CPU cycles,
//! * `d_t` — per-device input-data lengths in bits,
//! * `h_t` — access-channel spectral efficiencies (device × base station),
//! * `p_t` — electricity price.
//!
//! The paper's key modeling assumption — motivated by NYISO price data and a
//! YouTube view-count trace — is that states are **non-iid**: each is a
//! *periodic trend plus iid noise* (`p_t = p̄_t + e_t^p`, etc., period `D`).
//! [`process::PeriodicProcess`] implements exactly that decomposition; the
//! embedded trends live in [`profiles`]. For the evaluation settings the
//! paper instead draws `f`, `d`, `h` uniformly per slot (§VI-A), which
//! [`workload::WorkloadModel::uniform_iid`] and
//! [`channel::UniformChannel`] provide.
//!
//! [`StateProvider`] bundles the four generators into the single `β_t`
//! object ([`SystemState`]) consumed by the controller in `eotora-core`.
//!
//! # Examples
//!
//! ```
//! use eotora_states::{PaperStateConfig, StateProvider};
//! use eotora_topology::{RandomTopologyConfig, Topology};
//!
//! let topo = Topology::random(&RandomTopologyConfig::paper_defaults(20), 1);
//! let mut provider = StateProvider::paper(&topo, &PaperStateConfig::default(), 7);
//! let beta = provider.observe(0, &topo);
//! assert_eq!(beta.task_cycles.len(), 20);
//! assert!(beta.price_per_kwh > 0.0);
//! ```

pub mod channel;
pub mod mobility;
pub mod price;
pub mod process;
pub mod profiles;
pub mod replay;
pub mod workload;

use serde::{Deserialize, Serialize};

use eotora_topology::Topology;
use eotora_util::rng::Pcg32;

pub use channel::{ChannelModel, GaussMarkovChannel, MobilityChannel, UniformChannel};
pub use price::PriceModel;
pub use process::PeriodicProcess;
pub use workload::{WorkloadModel, WorkloadSample};

/// The complete observed state `β_t` for one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Slot index `t`.
    pub slot: u64,
    /// Task sizes `f_{i,t}` in CPU cycles, indexed by device.
    pub task_cycles: Vec<f64>,
    /// Input data lengths `d_{i,t}` in bits, indexed by device.
    pub data_bits: Vec<f64>,
    /// Access spectral efficiency `h_{i,k,t}` in bit/s/Hz;
    /// `spectral_efficiency[i][k]` is device `i` → base station `k`.
    pub spectral_efficiency: Vec<Vec<f64>>,
    /// Fronthaul spectral efficiency `h_k^F(t)` per base station. Constant in
    /// the paper's evaluation, but the formulation allows time variation,
    /// which this field supports.
    pub fronthaul_efficiency: Vec<f64>,
    /// Electricity price `p_t` in $/kWh.
    pub price_per_kwh: f64,
}

impl SystemState {
    /// Largest relative deviation between `self` and `other` across every
    /// scalar in `β_t` (`|a − b| / max(|a|, |b|, ε)`), the distance the
    /// speculative repair pass compares against its tolerance. A slot or
    /// shape mismatch is an unconditional miss (`∞`); identical states
    /// return `0.0`.
    pub fn max_relative_delta(&self, other: &SystemState) -> f64 {
        if self.slot != other.slot
            || self.task_cycles.len() != other.task_cycles.len()
            || self.data_bits.len() != other.data_bits.len()
            || self.spectral_efficiency.len() != other.spectral_efficiency.len()
            || self.fronthaul_efficiency.len() != other.fronthaul_efficiency.len()
            || self
                .spectral_efficiency
                .iter()
                .zip(&other.spectral_efficiency)
                .any(|(a, b)| a.len() != b.len())
        {
            return f64::INFINITY;
        }
        fn rel(a: f64, b: f64) -> f64 {
            (a - b).abs() / a.abs().max(b.abs()).max(1e-30)
        }
        let mut worst: f64 = 0.0;
        let pairs = self
            .task_cycles
            .iter()
            .zip(&other.task_cycles)
            .chain(self.data_bits.iter().zip(&other.data_bits))
            .chain(self.fronthaul_efficiency.iter().zip(&other.fronthaul_efficiency))
            .chain(
                self.spectral_efficiency
                    .iter()
                    .zip(&other.spectral_efficiency)
                    .flat_map(|(a, b)| a.iter().zip(b)),
            );
        for (&a, &b) in pairs {
            worst = worst.max(rel(a, b));
        }
        worst.max(rel(self.price_per_kwh, other.price_per_kwh))
    }
}

/// Configuration of the paper's state generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperStateConfig {
    /// Uniform range of task sizes in CPU cycles (paper: 50–200 Mcycles).
    pub task_cycles_range: (f64, f64),
    /// Uniform range of data lengths in bits (paper: 3–10 Mb).
    pub data_bits_range: (f64, f64),
    /// Uniform range of access spectral efficiency in bit/s/Hz
    /// (paper: 15–50).
    pub spectral_efficiency_range: (f64, f64),
    /// Relative iid noise (std/mean) added to the periodic price trend.
    pub price_noise_rel: f64,
    /// Period `D` of the price trend in slots (24 = hourly slots, daily
    /// pattern).
    pub period: usize,
}

impl Default for PaperStateConfig {
    fn default() -> Self {
        Self {
            task_cycles_range: (50e6, 200e6),
            data_bits_range: (3e6, 10e6),
            spectral_efficiency_range: (15.0, 50.0),
            price_noise_rel: 0.10,
            period: 24,
        }
    }
}

impl PaperStateConfig {
    /// A fully deterministic variant where only the periodic price trend
    /// varies: workloads and channels are pinned to single values (ranges
    /// with `min == max` sample exactly that value) and the price noise is
    /// zero, leaving the noiseless NYISO-shaped daily trend. After one full
    /// period a periodic-price predictor forecasts every state exactly —
    /// the speculation benchmarks and CI smoke run on this.
    pub fn periodic_price() -> Self {
        Self {
            task_cycles_range: (125e6, 125e6),
            data_bits_range: (6.5e6, 6.5e6),
            spectral_efficiency_range: (32.0, 32.0),
            price_noise_rel: 0.0,
            period: 24,
        }
    }
}

/// Produces `β_t` for successive slots by combining workload, channel, and
/// price generators.
#[derive(Debug)]
pub struct StateProvider {
    workload: WorkloadModel,
    channel: Box<dyn ChannelModel>,
    price: PriceModel,
    /// Optional per-slot fronthaul-efficiency process (index = base station);
    /// `None` uses the topology's static values.
    fronthaul: Option<Vec<PeriodicProcess>>,
}

impl StateProvider {
    /// Builds the paper's §VI-A evaluation generators: uniform-iid workloads
    /// and channels, NYISO-shaped periodic price.
    pub fn paper(topo: &Topology, config: &PaperStateConfig, seed: u64) -> Self {
        let mut rng = Pcg32::seed_stream(seed, 0x57A7E);
        let workload = WorkloadModel::uniform_iid(
            topo.num_devices(),
            config.task_cycles_range,
            config.data_bits_range,
            rng.fork(1),
        );
        let channel = Box::new(UniformChannel::new(
            topo.num_devices(),
            topo.num_base_stations(),
            config.spectral_efficiency_range,
            rng.fork(2),
        ));
        let price = PriceModel::nyiso_like(config.period, config.price_noise_rel, rng.fork(3));
        Self { workload, channel, price, fronthaul: None }
    }

    /// Builds a provider with custom components.
    pub fn new(workload: WorkloadModel, channel: Box<dyn ChannelModel>, price: PriceModel) -> Self {
        Self { workload, channel, price, fronthaul: None }
    }

    /// Enables time-varying fronthaul efficiency, one process per base
    /// station (the paper's "the algorithm can handle the case that `h_k^F`
    /// varies over time").
    ///
    /// # Panics
    ///
    /// Panics if the number of processes differs from the number of base
    /// stations at observation time.
    pub fn with_fronthaul_processes(mut self, processes: Vec<PeriodicProcess>) -> Self {
        self.fronthaul = Some(processes);
        self
    }

    /// Observes `β_t` for slot `t`.
    pub fn observe(&mut self, slot: u64, topo: &Topology) -> SystemState {
        let WorkloadSample { task_cycles, data_bits } = self.workload.sample(slot);
        let spectral_efficiency = self.channel.sample(slot, topo);
        let fronthaul_efficiency = match &mut self.fronthaul {
            Some(procs) => {
                assert_eq!(
                    procs.len(),
                    topo.num_base_stations(),
                    "fronthaul processes must match base-station count"
                );
                procs.iter_mut().map(|p| p.sample(slot)).collect()
            }
            None => topo
                .base_station_ids()
                .map(|k| topo.base_station(k).fronthaul_spectral_efficiency)
                .collect(),
        };
        SystemState {
            slot,
            task_cycles,
            data_bits,
            spectral_efficiency,
            fronthaul_efficiency,
            price_per_kwh: self.price.sample(slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_topology::RandomTopologyConfig;

    fn topo() -> Topology {
        Topology::random(&RandomTopologyConfig::paper_defaults(10), 3)
    }

    #[test]
    fn paper_provider_shapes() {
        let t = topo();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::default(), 1);
        let s = p.observe(5, &t);
        assert_eq!(s.slot, 5);
        assert_eq!(s.task_cycles.len(), 10);
        assert_eq!(s.data_bits.len(), 10);
        assert_eq!(s.spectral_efficiency.len(), 10);
        assert_eq!(s.spectral_efficiency[0].len(), 6);
        assert_eq!(s.fronthaul_efficiency.len(), 6);
    }

    #[test]
    fn paper_ranges_respected() {
        let t = topo();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::default(), 2);
        for slot in 0..50 {
            let s = p.observe(slot, &t);
            assert!(s.task_cycles.iter().all(|&f| (50e6..=200e6).contains(&f)));
            assert!(s.data_bits.iter().all(|&d| (3e6..=10e6).contains(&d)));
            for row in &s.spectral_efficiency {
                assert!(row.iter().all(|&h| (15.0..=50.0).contains(&h)));
            }
            assert!(s.price_per_kwh > 0.0);
        }
    }

    #[test]
    fn static_fronthaul_matches_topology() {
        let t = topo();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::default(), 2);
        let s = p.observe(0, &t);
        assert!(s.fronthaul_efficiency.iter().all(|&h| h == 10.0));
    }

    #[test]
    fn dynamic_fronthaul_process() {
        let t = topo();
        let procs: Vec<PeriodicProcess> = (0..t.num_base_stations())
            .map(|k| PeriodicProcess::new(vec![8.0 + k as f64, 12.0], 0.0, Pcg32::seed(k as u64)))
            .collect();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::default(), 2)
            .with_fronthaul_processes(procs);
        let s0 = p.observe(0, &t);
        let s1 = p.observe(1, &t);
        assert_eq!(s0.fronthaul_efficiency[0], 8.0);
        assert_eq!(s1.fronthaul_efficiency[0], 12.0);
        assert_eq!(s0.fronthaul_efficiency[3], 11.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = topo();
        let mut a = StateProvider::paper(&t, &PaperStateConfig::default(), 9);
        let mut b = StateProvider::paper(&t, &PaperStateConfig::default(), 9);
        for slot in 0..10 {
            assert_eq!(a.observe(slot, &t), b.observe(slot, &t));
        }
    }

    #[test]
    fn periodic_price_config_is_period_exact() {
        let t = topo();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::periodic_price(), 4);
        let first: Vec<SystemState> = (0..24).map(|s| p.observe(s, &t)).collect();
        for slot in 24..48 {
            let s = p.observe(slot, &t);
            let prev = &first[(slot - 24) as usize];
            // Everything but the slot index repeats with period D = 24.
            assert_eq!(s.task_cycles, prev.task_cycles);
            assert_eq!(s.data_bits, prev.data_bits);
            assert_eq!(s.spectral_efficiency, prev.spectral_efficiency);
            assert_eq!(s.price_per_kwh, prev.price_per_kwh, "slot {slot}");
        }
    }

    #[test]
    fn max_relative_delta_basics() {
        let t = topo();
        let mut p = StateProvider::paper(&t, &PaperStateConfig::default(), 5);
        let a = p.observe(0, &t);
        assert_eq!(a.max_relative_delta(&a), 0.0);

        let mut near = a.clone();
        near.price_per_kwh *= 1.01;
        let d = a.max_relative_delta(&near);
        assert!(d > 0.0 && d < 0.011, "delta {d}");

        let mut shifted = a.clone();
        shifted.slot = 1;
        assert_eq!(a.max_relative_delta(&shifted), f64::INFINITY);

        let mut short = a.clone();
        short.task_cycles.pop();
        assert_eq!(a.max_relative_delta(&short), f64::INFINITY);
    }
}
