//! Replaying recorded traces as state processes.
//!
//! The paper drives its simulation from recorded data (NYISO prices, a
//! video-workload trace). This module lets downstream users do the same:
//! [`ReplayTrace`] wraps any recorded series as a repeating process (with
//! optional noise, preserving the paper's periodic-plus-iid structure), and
//! [`parse_csv_column`] pulls a column out of a simple CSV export so real
//! NYISO files can be dropped in without extra dependencies.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// A recorded series replayed cyclically, optionally with relative Gaussian
/// noise on top (set `noise_rel = 0` for exact replay).
///
/// # Examples
///
/// ```
/// use eotora_states::replay::ReplayTrace;
/// use eotora_util::rng::Pcg32;
///
/// let mut t = ReplayTrace::new(vec![1.0, 2.0, 3.0], 0.0, Pcg32::seed(1)).unwrap();
/// assert_eq!(t.sample(0), 1.0);
/// assert_eq!(t.sample(4), 2.0); // cycles with period 3
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayTrace {
    values: Vec<f64>,
    noise_rel: f64,
    rng: Pcg32,
}

impl ReplayTrace {
    /// Wraps a recorded series.
    ///
    /// # Errors
    ///
    /// Returns a message if the series is empty, contains non-finite or
    /// non-positive values, or `noise_rel` is negative.
    pub fn new(values: Vec<f64>, noise_rel: f64, rng: Pcg32) -> Result<Self, String> {
        if values.is_empty() {
            return Err("replay trace is empty".into());
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite() || **v <= 0.0) {
            return Err(format!("replay trace contains invalid value {bad}"));
        }
        if noise_rel < 0.0 {
            return Err("noise level must be non-negative".into());
        }
        Ok(Self { values, noise_rel, rng })
    }

    /// The replay period (number of recorded samples).
    pub fn period(&self) -> usize {
        self.values.len()
    }

    /// The recorded value at slot `t` (no noise).
    pub fn recorded_at(&self, slot: u64) -> f64 {
        self.values[(slot % self.values.len() as u64) as usize]
    }

    /// Samples slot `t`: the recorded value, perturbed by relative Gaussian
    /// noise and floored at 1% of the recorded value.
    pub fn sample(&mut self, slot: u64) -> f64 {
        let base = self.recorded_at(slot);
        if self.noise_rel == 0.0 {
            base
        } else {
            (base * (1.0 + self.rng.normal(0.0, self.noise_rel))).max(0.01 * base)
        }
    }
}

/// Extracts a numeric column from simple CSV text (comma-separated, one
/// header row, no quoting — the format of NYISO's OASIS exports after
/// trimming). Column selection is by header name, case-insensitive.
///
/// Rows whose cell fails to parse are skipped with their indices reported,
/// so a stray footer line does not poison the whole file.
///
/// # Errors
///
/// Returns a message when the header is missing, the column name is not
/// found, or no row parses.
///
/// # Examples
///
/// ```
/// use eotora_states::replay::parse_csv_column;
///
/// let csv = "time,lbmp\n00:00,25.1\n01:00,24.3\n";
/// let (values, skipped) = parse_csv_column(csv, "LBMP").unwrap();
/// assert_eq!(values, vec![25.1, 24.3]);
/// assert!(skipped.is_empty());
/// ```
pub fn parse_csv_column(text: &str, column: &str) -> Result<(Vec<f64>, Vec<usize>), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV input")?;
    let wanted = column.to_ascii_lowercase();
    let idx = header
        .split(',')
        .position(|h| h.trim().to_ascii_lowercase() == wanted)
        .ok_or_else(|| format!("column `{column}` not found in header `{header}`"))?;

    let mut values = Vec::new();
    let mut skipped = Vec::new();
    for (row, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match line.split(',').nth(idx).map(str::trim).map(str::parse::<f64>) {
            Some(Ok(v)) => values.push(v),
            _ => skipped.push(row + 1),
        }
    }
    if values.is_empty() {
        return Err("no parsable rows".into());
    }
    Ok((values, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price::PriceModel;

    #[test]
    fn exact_replay_cycles() {
        let mut t = ReplayTrace::new(vec![10.0, 20.0], 0.0, Pcg32::seed(0)).unwrap();
        let got: Vec<f64> = (0..5).map(|s| t.sample(s)).collect();
        assert_eq!(got, vec![10.0, 20.0, 10.0, 20.0, 10.0]);
        assert_eq!(t.period(), 2);
    }

    #[test]
    fn noisy_replay_centers_on_recording() {
        let mut t = ReplayTrace::new(vec![100.0], 0.05, Pcg32::seed(1)).unwrap();
        let mean: f64 = (0..20_000).map(|s| t.sample(s)).sum::<f64>() / 20_000.0;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn rejects_bad_traces() {
        assert!(ReplayTrace::new(vec![], 0.0, Pcg32::seed(0)).is_err());
        assert!(ReplayTrace::new(vec![1.0, -1.0], 0.0, Pcg32::seed(0)).is_err());
        assert!(ReplayTrace::new(vec![1.0, f64::NAN], 0.0, Pcg32::seed(0)).is_err());
        assert!(ReplayTrace::new(vec![1.0], -0.1, Pcg32::seed(0)).is_err());
    }

    #[test]
    fn csv_column_extraction() {
        let csv = "Time Stamp,Name,LBMP ($/MWHr)\n1,NYC,30.5\n2,NYC,28.25\n3,NYC,oops\n";
        let (values, skipped) = parse_csv_column(csv, "lbmp ($/mwhr)").unwrap();
        assert_eq!(values, vec![30.5, 28.25]);
        assert_eq!(skipped, vec![3]);
    }

    #[test]
    fn csv_errors() {
        assert!(parse_csv_column("", "x").is_err());
        assert!(parse_csv_column("a,b\n1,2\n", "c").is_err());
        assert!(parse_csv_column("a,b\nx,y\n", "a").is_err());
    }

    #[test]
    fn replayed_prices_feed_price_model() {
        // A recorded daily curve can replace the synthetic NYISO profile.
        let recorded: Vec<f64> = (0..24).map(|h| 0.02 + 0.002 * h as f64).collect();
        let mut price = PriceModel::from_trend(recorded.clone(), 0.0, Pcg32::seed(2));
        for t in 0..48 {
            assert_eq!(price.sample(t), recorded[(t % 24) as usize]);
        }
    }
}
