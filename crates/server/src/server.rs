//! The daemon loop: a hardened wrapper around [`StepDriver`] that turns
//! a JSONL state stream into a JSONL decision stream.
//!
//! Layout: a reader thread decodes input lines and feeds the bounded
//! [`AdmissionQueue`]; the solve loop pops frames, drives the engine,
//! and emits decisions. Signals (and in-band control frames) request
//! shutdown/reload; the loop polls them between pops, so every exit path
//! runs the same graceful sequence — close the queue, flush the journal,
//! write a snapshot, report final counters. Durability is always on:
//! restarting against the same checkpoint directory resumes mid-stream,
//! and a client that resends its full stream gets the already-solved
//! prefix deduplicated against the restored cursor.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use eotora_core::fault::FaultSchedule;
use eotora_core::system::MecSystem;
use eotora_durability::DurabilityError;
use eotora_obs::{Recorder, TelemetryConfig, TelemetrySession};
use eotora_sim::{
    open_session, robust_config, DriverMode, DriverTuning, DurabilityConfig, RunManifest,
    StepDriver, MANIFEST_VERSION,
};

use crate::config::{validate_reload, ConfigError, ServerConfig};
use crate::frame::{
    encode_error, encode_event, ControlFrame, DecisionRecord, FrameDecoder, FrameError, InputFrame,
};
use crate::queue::{Admission, AdmissionQueue, QueueStats};
use crate::signal::SignalFlags;
use serde_json::Value;

/// How long one queue pop waits before the loop re-polls signal flags.
const POLL: Duration = Duration::from_millis(25);

/// A fatal server failure (per-frame problems are reported on the error
/// stream and never end up here).
#[derive(Debug)]
pub enum ServerError {
    /// Startup configuration was unusable.
    Config(ConfigError),
    /// The durable session failed (journal/snapshot I/O).
    Durability(DurabilityError),
    /// An output stream died.
    Io(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "{e}"),
            Self::Durability(e) => write!(f, "durability: {e}"),
            Self::Io(reason) => write!(f, "i/o: {reason}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<DurabilityError> for ServerError {
    fn from(e: DurabilityError) -> Self {
        Self::Durability(e)
    }
}

/// Where input frames come from.
pub enum InputSource {
    /// A byte stream of JSONL frames (stdin, a file, a pipe). EOF ends
    /// the stream and drains the server.
    Reader(Box<dyn Read + Send>),
    /// A Unix listener serving sequential client connections (a second
    /// *concurrent* client is rejected with a typed error); the stream
    /// never self-terminates (shut down via signal or control frame).
    #[cfg(unix)]
    UnixSocket(std::os::unix::net::UnixListener),
}

/// What the daemon did, for the caller's exit report.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// The engine cursor at exit — slots solved plus slots skipped by
    /// shedding.
    pub slots_completed: u64,
    /// Decision records emitted this process lifetime.
    pub decisions: u64,
    /// Whether the kill-hook test crash fired (no graceful checkpoint).
    pub interrupted: bool,
    /// Final counter totals: engine counters (including restored ones)
    /// merged with the `server.*` family.
    pub counters: BTreeMap<String, u64>,
}

/// Runs the daemon to completion: EOF, shutdown signal/control, or the
/// kill-after-slot crash hook. `config_path` is re-read on hot-reload
/// requests (`None` makes path-less reloads a typed error). Decisions go
/// to `decisions`, events and per-frame errors to `events`, one JSON
/// object per line on both.
pub fn serve(
    mut config: ServerConfig,
    config_path: Option<&Path>,
    input: InputSource,
    decisions: &mut dyn Write,
    events: &mut dyn Write,
    flags: &SignalFlags,
) -> Result<ServerSummary, ServerError> {
    let manifest = RunManifest {
        version: MANIFEST_VERSION,
        mode: "server".to_owned(),
        scenario: config.scenario.clone(),
        faults: None,
        deadline_ms: config.deadline.map(|d| d.as_millis() as u64),
        checkpoint_every: config.durability.checkpoint_every,
        fsync: config.durability.fsync.to_string(),
    };
    let mut durability = DurabilityConfig::new(config.durability.dir.clone());
    durability.checkpoint_every = config.durability.checkpoint_every;
    durability.fsync = config.durability.fsync;
    durability.kill_at_slot = config.kill_after_slot;
    let session = open_session(&durability, &manifest)?;

    let system = MecSystem::random(&config.scenario.system, config.scenario.seed);
    let telemetry = TelemetrySession::new(TelemetryConfig {
        v: config.scenario.dpp.v,
        budget: system.budget_per_slot(),
        metrics_out: config.telemetry.metrics_out.clone(),
        metrics_every: config.telemetry.metrics_every,
        postmortem_dir: Some(config.durability.dir.join("postmortems")),
        flight_capacity: 0,
    });
    let mode = match config.deadline {
        None => DriverMode::Plain,
        Some(deadline) => DriverMode::Robust {
            faults: FaultSchedule::default(),
            robust: robust_config(&config.scenario, Some(deadline)),
        },
    };
    let mut driver = StepDriver::new(
        &config.scenario,
        system,
        mode,
        Some(session),
        Some(&telemetry),
        DriverTuning { horizon: Some(u64::MAX), bounded: true },
    );

    let queue = Arc::new(AdmissionQueue::new(config.admission.capacity, config.admission.policy));
    {
        let queue = Arc::clone(&queue);
        let devices = driver.topology().num_devices();
        let stations = driver.topology().num_base_stations();
        // Detached on purpose: a reader blocked on stdin/accept cannot be
        // interrupted portably; it dies with the process (or when its
        // byte stream ends) and only ever touches the Arc'd queue.
        std::thread::spawn(move || run_reader(input, &queue, devices, stations));
    }

    emit(
        events,
        &encode_event(
            "started",
            &[
                ("label", Value::Str(config.scenario.label.clone())),
                ("resumed_at_slot", Value::U64(driver.cursor())),
                ("capacity", Value::U64(config.admission.capacity as u64)),
                ("policy", Value::Str(config.admission.policy.to_string())),
            ],
        ),
    )?;

    let mut server_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut synced = QueueStats::default();
    let mut emitted = 0u64;
    let mut watchdog_streak = 0u64;
    let mut interrupted = false;

    loop {
        // Fold the reader thread's admission/shed totals into `server.*`.
        let stats = queue.stats();
        bump(
            &mut server_counters,
            &telemetry,
            eotora_obs::COUNTER_SERVER_ADMITTED,
            stats.admitted - synced.admitted,
        );
        bump(
            &mut server_counters,
            &telemetry,
            eotora_obs::COUNTER_SERVER_SHED_OLDEST,
            stats.shed_oldest - synced.shed_oldest,
        );
        bump(
            &mut server_counters,
            &telemetry,
            eotora_obs::COUNTER_SERVER_SHED_NEWEST,
            stats.shed_newest - synced.shed_newest,
        );
        synced = stats;

        if flags.shutdown_requested() {
            break;
        }
        if flags.take_reload() {
            reload(
                None,
                config_path,
                &mut config,
                &mut driver,
                &queue,
                &mut server_counters,
                &telemetry,
                events,
            )?;
        }
        let Some(item) = queue.pop_timeout(POLL) else {
            if queue.is_done() {
                break;
            }
            continue;
        };
        match item {
            Admission::Malformed(error) => {
                bump(&mut server_counters, &telemetry, eotora_obs::COUNTER_SERVER_MALFORMED, 1);
                emit(events, &encode_error(&error))?;
            }
            Admission::Control(ControlFrame::Shutdown) => break,
            Admission::Control(ControlFrame::Checkpoint) => {
                let wrote = driver.checkpoint_now()?;
                emit(
                    events,
                    &encode_event(
                        "checkpoint",
                        &[("slot", Value::U64(driver.cursor())), ("wrote", Value::Bool(wrote))],
                    ),
                )?;
            }
            Admission::Control(ControlFrame::Reload { path }) => {
                reload(
                    path,
                    config_path,
                    &mut config,
                    &mut driver,
                    &queue,
                    &mut server_counters,
                    &telemetry,
                    events,
                )?;
            }
            Admission::State(state) => {
                let cursor = driver.cursor();
                if state.slot < cursor {
                    // A restarted client resent its full stream; the
                    // journal already holds these slots.
                    bump(&mut server_counters, &telemetry, eotora_obs::COUNTER_SERVER_COALESCED, 1);
                    continue;
                }
                if state.slot > cursor {
                    // The states between cursor and here were shed under
                    // overload — those slots are never solved.
                    driver.seek(state.slot);
                }
                let expirations_before =
                    telemetry.registry().counter(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS);
                let report = driver.step(*state)?;
                let record = DecisionRecord::from_report(&report);
                writeln!(decisions, "{}", record.encode())
                    .and_then(|()| decisions.flush())
                    .map_err(|e| ServerError::Io(format!("decision stream: {e}")))?;
                emitted += 1;
                bump(&mut server_counters, &telemetry, eotora_obs::COUNTER_SERVER_DECISIONS, 1);

                if config.watchdog_expirations > 0 {
                    let expirations_after =
                        telemetry.registry().counter(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS);
                    if expirations_after > expirations_before {
                        watchdog_streak += 1;
                    } else {
                        watchdog_streak = 0;
                    }
                    if watchdog_streak >= config.watchdog_expirations {
                        telemetry.force_postmortem(&format!(
                            "watchdog: {watchdog_streak} consecutive slots hit the deadline \
                             ladder (last slot {})",
                            report.slot
                        ));
                        bump(
                            &mut server_counters,
                            &telemetry,
                            eotora_obs::COUNTER_SERVER_WATCHDOG_TRIPS,
                            1,
                        );
                        emit(
                            events,
                            &encode_event(
                                "watchdog_trip",
                                &[
                                    ("slot", Value::U64(report.slot)),
                                    ("streak", Value::U64(watchdog_streak)),
                                ],
                            ),
                        )?;
                        watchdog_streak = 0;
                    }
                }
                if report.interrupted {
                    interrupted = true;
                    break;
                }
            }
        }
    }

    queue.close();
    if interrupted {
        // The kill hook simulates a crash between slots: exit without
        // the graceful snapshot so resume exercises the journal replay.
        emit(events, &encode_event("killed", &[("slot", Value::U64(driver.cursor()))]))?;
    } else {
        // Drain without solving: anything still queued at shutdown is a
        // rejected frame, visible in the counters rather than silently
        // vanishing.
        while let Some(item) = queue.pop_timeout(Duration::ZERO) {
            match item {
                Admission::State(_) => {
                    bump(&mut server_counters, &telemetry, eotora_obs::COUNTER_SERVER_REJECTED, 1);
                }
                Admission::Malformed(error) => {
                    bump(&mut server_counters, &telemetry, eotora_obs::COUNTER_SERVER_MALFORMED, 1);
                    emit(events, &encode_error(&error))?;
                }
                Admission::Control(_) => {}
            }
        }
        driver.checkpoint_now()?;
    }

    let stats = queue.stats();
    bump(
        &mut server_counters,
        &telemetry,
        eotora_obs::COUNTER_SERVER_ADMITTED,
        stats.admitted - synced.admitted,
    );
    bump(
        &mut server_counters,
        &telemetry,
        eotora_obs::COUNTER_SERVER_SHED_OLDEST,
        stats.shed_oldest - synced.shed_oldest,
    );
    bump(
        &mut server_counters,
        &telemetry,
        eotora_obs::COUNTER_SERVER_SHED_NEWEST,
        stats.shed_newest - synced.shed_newest,
    );

    let slots_completed = driver.cursor();
    let mut counters = driver.counters();
    drop(driver);
    for (name, value) in &server_counters {
        *counters.entry(name.clone()).or_insert(0) += value;
    }
    emit(
        events,
        &encode_event(
            "shutdown",
            &[
                ("slots", Value::U64(slots_completed)),
                ("decisions", Value::U64(emitted)),
                ("interrupted", Value::Bool(interrupted)),
                ("max_queue_depth", Value::U64(stats.max_depth as u64)),
            ],
        ),
    )?;
    telemetry.finish().map_err(|e| ServerError::Io(format!("telemetry sink: {e}")))?;
    Ok(ServerSummary { slots_completed, decisions: emitted, interrupted, counters })
}

/// Writes one line to the event/error stream, flushing immediately so an
/// operator tailing the stream sees events as they happen.
fn emit(events: &mut dyn Write, line: &str) -> Result<(), ServerError> {
    writeln!(events, "{line}")
        .and_then(|()| events.flush())
        .map_err(|e| ServerError::Io(format!("event stream: {e}")))
}

/// Bumps one `server.*` counter, mirroring it into the telemetry
/// registry (NOT into the driver's metrics — those feed the durable
/// snapshot, whose counter totals must stay identical to a batch run's).
fn bump(
    counters: &mut BTreeMap<String, u64>,
    telemetry: &TelemetrySession,
    name: &str,
    delta: u64,
) {
    if delta == 0 {
        return;
    }
    *counters.entry(name.to_owned()).or_insert(0) += delta;
    telemetry.add(name, delta);
}

/// Attempts a hot reload. On success the hot-appliable fields (deadline,
/// admission capacity/policy, watchdog threshold) take effect
/// immediately; on any failure — unreadable file, parse error, invalid
/// value, restart-only change — the old config stays live and the typed
/// error goes to the error stream. Never fatal.
#[allow(clippy::too_many_arguments)]
fn reload(
    requested: Option<String>,
    startup_path: Option<&Path>,
    config: &mut ServerConfig,
    driver: &mut StepDriver<'_>,
    queue: &AdmissionQueue,
    counters: &mut BTreeMap<String, u64>,
    telemetry: &TelemetrySession,
    events: &mut dyn Write,
) -> Result<(), ServerError> {
    let path = requested.map(PathBuf::from).or_else(|| startup_path.map(Path::to_path_buf));
    let outcome = match path {
        None => Err(ConfigError::Reload {
            reason: "no config path to reload from (server started with an inline config)".into(),
        }),
        Some(path) => ServerConfig::load(&path)
            .and_then(|next| validate_reload(config, next))
            .map(|next| (path, next)),
    };
    match outcome {
        Ok((path, next)) => {
            driver.set_deadline(next.deadline);
            queue.reconfigure(next.admission.capacity, next.admission.policy);
            *config = next;
            bump(counters, telemetry, eotora_obs::COUNTER_SERVER_RELOADS, 1);
            emit(
                events,
                &encode_event(
                    "reload_applied",
                    &[
                        ("path", Value::Str(path.display().to_string())),
                        (
                            "deadline_ms",
                            match config.deadline {
                                Some(d) => Value::U64(d.as_millis() as u64),
                                None => Value::Null,
                            },
                        ),
                        ("capacity", Value::U64(config.admission.capacity as u64)),
                        ("policy", Value::Str(config.admission.policy.to_string())),
                    ],
                ),
            )
        }
        Err(error) => {
            bump(counters, telemetry, eotora_obs::COUNTER_SERVER_RELOADS_REJECTED, 1);
            let record = Value::Object(vec![
                ("error".to_owned(), Value::Str(error.to_string())),
                ("kind".to_owned(), Value::Str("config".to_owned())),
                ("event".to_owned(), Value::Str("reload_rejected".to_owned())),
            ]);
            emit(
                events,
                &serde_json::to_string(&record)
                    .unwrap_or_else(|_| unreachable!("error records are plain strings")),
            )
        }
    }
}

/// The reader thread: decode lines, apply admission, forward controls
/// and malformed-line reports at priority.
fn run_reader(input: InputSource, queue: &AdmissionQueue, devices: usize, stations: usize) {
    let mut decoder = FrameDecoder::new(devices, stations);
    match input {
        InputSource::Reader(reader) => {
            read_stream(reader, queue, &mut decoder);
            queue.close();
        }
        #[cfg(unix)]
        InputSource::UnixSocket(listener) => {
            // Sequential clients share one line-number space: the decoder
            // travels from each finished stream to the next connection. A
            // *concurrent* second client is rejected with a typed error
            // record — never silently interleaved into the live stream.
            let slot = DecoderSlot::new(decoder);
            std::thread::scope(|scope| loop {
                let Ok((stream, _)) = listener.accept() else {
                    queue.close();
                    return;
                };
                match slot.claim(RECONNECT_GRACE) {
                    Some(decoder) => {
                        let slot = &slot;
                        scope.spawn(move || {
                            // The guard hands the decoder back (and wakes
                            // any waiting claim) even if decoding unwinds.
                            let mut guard = DecoderReturn { slot, decoder: Some(decoder) };
                            let decoder = guard.decoder.as_mut().expect("held until drop");
                            read_stream(Box::new(stream), queue, decoder);
                        });
                    }
                    None => reject_concurrent_client(stream, queue),
                }
            });
        }
    }
}

/// How long a new connection waits for the previous stream to hand its
/// decoder back before it is rejected as concurrent. The handback wakes
/// the waiter immediately, so a sequential reconnect racing the previous
/// stream's EOF handling claims the decoder as soon as it is free — the
/// full grace period is only ever served when the previous client really
/// is still connected, i.e. for a genuinely concurrent second client.
#[cfg(unix)]
const RECONNECT_GRACE: Duration = Duration::from_secs(2);

/// Hands the one [`FrameDecoder`] from each finished stream to the next:
/// `None` while a stream is live, `Some` between streams, with a condvar
/// signalling the handback.
#[cfg(unix)]
struct DecoderSlot {
    state: Mutex<Option<FrameDecoder>>,
    returned: std::sync::Condvar,
}

#[cfg(unix)]
impl DecoderSlot {
    fn new(decoder: FrameDecoder) -> Self {
        Self { state: Mutex::new(Some(decoder)), returned: std::sync::Condvar::new() }
    }

    /// Takes the decoder if no stream is active, waiting up to `grace`
    /// for a live stream to finish. `None` means another client held the
    /// stream for the whole grace period — a concurrent client.
    fn claim(&self, grace: Duration) -> Option<FrameDecoder> {
        let deadline = std::time::Instant::now() + grace;
        let mut state = self.lock();
        loop {
            if let Some(decoder) = state.take() {
                return Some(decoder);
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            state = match self.returned.wait_timeout(state, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn put_back(&self, decoder: FrameDecoder) {
        *self.lock() = Some(decoder);
        self.returned.notify_one();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<FrameDecoder>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Returns the decoder to its slot on drop, so a panicking reader thread
/// cannot strand the slot empty and lock every later client out.
#[cfg(unix)]
struct DecoderReturn<'a> {
    slot: &'a DecoderSlot,
    decoder: Option<FrameDecoder>,
}

#[cfg(unix)]
impl Drop for DecoderReturn<'_> {
    fn drop(&mut self) {
        if let Some(decoder) = self.decoder.take() {
            self.slot.put_back(decoder);
        }
    }
}

/// Turns a second concurrent client away: the typed record goes to the
/// rejected client (best effort — it may already be gone) and through
/// the queue to the error stream and `server.malformed_frames`.
#[cfg(unix)]
fn reject_concurrent_client(mut stream: std::os::unix::net::UnixStream, queue: &AdmissionQueue) {
    let error = FrameError::ConcurrentClient;
    // Enqueue before notifying the client: once the client sees the
    // rejection it may trigger shutdown, and a post-close push would be
    // dropped — the record must already be in the queue by then.
    let line = encode_error(&error);
    queue.push_priority(Admission::Malformed(error));
    let _ = writeln!(stream, "{line}");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn read_stream(reader: Box<dyn Read + Send>, queue: &AdmissionQueue, decoder: &mut FrameDecoder) {
    for line in BufReader::new(reader).lines() {
        let Ok(text) = line else { return };
        match decoder.decode_line(&text) {
            Ok(None) => {}
            Ok(Some(InputFrame::State(state))) => {
                queue.push_state(state);
            }
            Ok(Some(InputFrame::Control(control))) => {
                queue.push_priority(Admission::Control(control));
            }
            Err(error) => queue.push_priority(Admission::Malformed(error)),
        }
    }
}
