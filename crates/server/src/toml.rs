//! A hand-written parser for the TOML subset the server config uses.
//!
//! Supported: `[section]` headers (one level), `key = value` pairs with
//! string / integer / float / boolean / flat-array values, `#` comments,
//! and blank lines. The output is the same [`Value`] tree
//! `serde_json::parse` produces, so [`crate::config`] extracts fields from
//! TOML and JSON configs through one code path.
//!
//! Deliberately *not* supported (rejected with a line-numbered
//! [`TomlError`], never misparsed): dotted keys, nested tables, inline
//! tables, multi-line strings, dates, and duplicate keys.

use serde_json::Value;

/// A parse failure, pinned to the 1-indexed config line that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-indexed line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

fn err(line: usize, reason: impl Into<String>) -> TomlError {
    TomlError { line, reason: reason.into() }
}

/// Parses the TOML subset into a two-level object tree: top-level bare
/// keys live on the root object, `[section]` keys under one nested object
/// per section.
pub fn parse(text: &str) -> Result<Value, TomlError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Index into `root` of the section currently being filled.
    let mut section: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?
                .trim();
            if name.is_empty() || !name.chars().all(is_key_char) {
                return Err(err(lineno, format!("invalid section name `{name}`")));
            }
            if root.iter().any(|(k, _)| k == name) {
                return Err(err(lineno, format!("duplicate section `{name}`")));
            }
            root.push((name.to_owned(), Value::Object(Vec::new())));
            section = Some(root.len() - 1);
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(is_key_char) {
            return Err(err(lineno, format!("invalid key `{key}`")));
        }
        let value = parse_value(value.trim(), lineno)?;
        let fields = match section {
            Some(i) => match &mut root[i].1 {
                Value::Object(fields) => fields,
                _ => unreachable!("sections are always objects"),
            },
            None => &mut root,
        };
        if fields.iter().any(|(k, _)| k == key) {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
        fields.push((key.to_owned(), value));
    }
    Ok(Value::Object(root))
}

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Drops a trailing `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest, lineno);
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner =
            inner.strip_suffix(']').ok_or_else(|| err(lineno, "unterminated array"))?.trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in split_array_items(inner, lineno)? {
                items.push(parse_value(item.trim(), lineno)?);
            }
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML numbers: integer unless a `.`, exponent, or special marks a
    // float. `nan`/`inf` are rejected outright — config values must be
    // finite.
    if text.contains(['n', 'N', 'i', 'I']) {
        return Err(err(lineno, format!("unsupported value `{text}` (nan/inf are rejected)")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    if let Ok(x) = text.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::F64(x));
        }
    }
    Err(err(lineno, format!("cannot parse value `{text}`")))
}

fn parse_string(rest: &str, lineno: usize) -> Result<Value, TomlError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            None => return Err(err(lineno, "unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => {
                    return Err(err(lineno, format!("unsupported string escape `\\{other:?}`")))
                }
            },
            Some(c) => out.push(c),
        }
    }
    let trailing: String = chars.collect();
    if !trailing.trim().is_empty() {
        return Err(err(lineno, format!("trailing garbage after string: `{}`", trailing.trim())));
    }
    Ok(Value::Str(out))
}

/// Splits `a, "b,c", 3` on top-level commas (strings may contain commas).
fn split_array_items(inner: &str, lineno: usize) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return Err(err(lineno, "unterminated string in array"));
    }
    items.push(&inner[start..]);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'v>(value: &'v Value, key: &str) -> &'v Value {
        let Value::Object(fields) = value else { panic!("not an object") };
        &fields.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("missing {key}")).1
    }

    #[test]
    fn parses_sections_and_scalars() {
        let v = parse(
            "top = 1\n\
             [server]\n\
             # a comment\n\
             deadline_ms = 250  # trailing comment\n\
             name = \"paper # not a comment\"\n\
             ratio = 1.5\n\
             on = true\n\
             slots = [1, 2, 3]\n",
        )
        .expect("parses");
        assert_eq!(get(&v, "top"), &Value::I64(1));
        let server = get(&v, "server");
        assert_eq!(get(server, "deadline_ms"), &Value::I64(250));
        assert_eq!(get(server, "name"), &Value::Str("paper # not a comment".into()));
        assert_eq!(get(server, "ratio"), &Value::F64(1.5));
        assert_eq!(get(server, "on"), &Value::Bool(true));
        assert_eq!(
            get(server, "slots"),
            &Value::Array(vec![Value::I64(1), Value::I64(2), Value::I64(3)])
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, want_line) in [
            ("ok = 1\nbroken", 2),
            ("[unterminated\n", 1),
            ("x = ", 1),
            ("x = \"open", 1),
            ("x = nan", 1),
            ("x = inf", 1),
            ("a = 1\na = 2", 2),
            ("[s]\n[s]", 2),
            ("x = [1, \"open]", 1),
        ] {
            let e = parse(text).expect_err(text);
            assert_eq!(e.line, want_line, "{text}: {e}");
        }
    }

    #[test]
    fn floats_and_integers_are_distinguished() {
        let v = parse("i = 7\nf = 7.0\ne = 1e3\nneg = -4").expect("parses");
        assert_eq!(get(&v, "i"), &Value::I64(7));
        assert_eq!(get(&v, "f"), &Value::F64(7.0));
        assert_eq!(get(&v, "e"), &Value::F64(1000.0));
        assert_eq!(get(&v, "neg"), &Value::I64(-4));
    }
}
