//! The server's JSONL wire codec: input frames (slot states and control
//! verbs) and output records (decisions, events, errors).
//!
//! Every input line is one JSON object. A `"control"` key makes it a
//! control frame; anything else must be the serde form of
//! [`SystemState`]. Decoding never panics: every malformed, truncated,
//! non-finite, or mis-shaped line maps to one typed [`FrameError`]
//! carrying the input line number, and the decoder's internal state is
//! just that line counter — a bad line can never desync the slot cursor
//! (which lives in the engine, not here).
//!
//! Output records are distinguished by shape, not a tag field: decisions
//! carry `"slot"` + `"latency_s"`, events carry `"event"`, errors carry
//! `"error"`.

use eotora_sim::StepReport;
use eotora_states::SystemState;
use serde::{Deserialize, Serialize};

/// A decode failure for one input line (or, for
/// [`FrameError::ConcurrentClient`], one rejected connection). Line
/// errors name the 1-indexed line so clients can report precisely; none
/// of them is fatal to the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line is not valid JSON (or not the serde shape of a state).
    Json {
        /// 1-indexed input line.
        line: u64,
        /// Parser message.
        reason: String,
    },
    /// The state decoded but carries a NaN or infinite scalar.
    NonFinite {
        /// 1-indexed input line.
        line: u64,
        /// Which β field held the non-finite value.
        field: &'static str,
    },
    /// The state decoded but its vectors do not match the topology.
    Shape {
        /// 1-indexed input line.
        line: u64,
        /// What was mis-shaped.
        reason: String,
    },
    /// A control frame named a verb the server does not know.
    UnknownControl {
        /// 1-indexed input line.
        line: u64,
        /// The unknown verb.
        control: String,
    },
    /// A second client connected while another input stream was active;
    /// the new connection was rejected — its frames are never
    /// interleaved into the live stream.
    ConcurrentClient,
}

impl FrameError {
    /// The 1-indexed input line the error is pinned to (`0` for
    /// [`FrameError::ConcurrentClient`], which rejects a whole
    /// connection rather than a line).
    pub fn line(&self) -> u64 {
        match self {
            Self::Json { line, .. }
            | Self::NonFinite { line, .. }
            | Self::Shape { line, .. }
            | Self::UnknownControl { line, .. } => *line,
            Self::ConcurrentClient => 0,
        }
    }

    /// Stable machine-readable kind tag for the error stream.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Json { .. } => "json",
            Self::NonFinite { .. } => "non-finite",
            Self::Shape { .. } => "shape",
            Self::UnknownControl { .. } => "unknown-control",
            Self::ConcurrentClient => "concurrent-client",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Json { line, reason } => write!(f, "line {line}: invalid frame: {reason}"),
            Self::NonFinite { line, field } => {
                write!(f, "line {line}: non-finite value in `{field}`")
            }
            Self::Shape { line, reason } => write!(f, "line {line}: bad state shape: {reason}"),
            Self::UnknownControl { line, control } => {
                write!(f, "line {line}: unknown control verb `{control}`")
            }
            Self::ConcurrentClient => {
                f.write_str("concurrent client rejected: another input stream is active")
            }
        }
    }
}

/// A control verb sent in-band on the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// Drain and shut down gracefully (same path as SIGTERM).
    Shutdown,
    /// Hot-reload the config, from `path` or the path served at startup.
    Reload {
        /// Config file to load; `None` re-reads the startup path.
        path: Option<String>,
    },
    /// Write a snapshot now, outside the regular cadence.
    Checkpoint,
}

/// One decoded input line.
#[derive(Debug, Clone, PartialEq)]
pub enum InputFrame {
    /// A slot state `β_t` to solve.
    State(Box<SystemState>),
    /// A control verb.
    Control(ControlFrame),
}

/// Decodes input lines one at a time, tracking only the line number.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Expected β dimensions: `(devices, base stations)`. `None` skips
    /// the shape check (tests); the server always sets it from the
    /// topology.
    dims: Option<(usize, usize)>,
    line: u64,
}

impl FrameDecoder {
    /// A decoder that validates states against `devices` × `stations`.
    pub fn new(devices: usize, stations: usize) -> Self {
        Self { dims: Some((devices, stations)), line: 0 }
    }

    /// Lines consumed so far (= the line number of the last input).
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Decodes the next line. Blank lines yield `Ok(None)` (and still
    /// count toward the line number, matching editor conventions).
    pub fn decode_line(&mut self, text: &str) -> Result<Option<InputFrame>, FrameError> {
        self.line += 1;
        let line = self.line;
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Ok(None);
        }
        let value = serde_json::parse(trimmed)
            .map_err(|e| FrameError::Json { line, reason: e.to_string() })?;
        let Some(fields) = value.as_object() else {
            return Err(FrameError::Json { line, reason: "frame is not a JSON object".into() });
        };
        if let Some((_, control)) = fields.iter().find(|(k, _)| k == "control") {
            let verb = control.as_str().ok_or_else(|| FrameError::Json {
                line,
                reason: "`control` must be a string".into(),
            })?;
            let frame = match verb {
                "shutdown" => ControlFrame::Shutdown,
                "checkpoint" => ControlFrame::Checkpoint,
                "reload" => ControlFrame::Reload {
                    path: fields
                        .iter()
                        .find(|(k, _)| k == "path")
                        .and_then(|(_, v)| v.as_str())
                        .map(str::to_owned),
                },
                other => {
                    return Err(FrameError::UnknownControl { line, control: other.to_owned() })
                }
            };
            return Ok(Some(InputFrame::Control(frame)));
        }
        let state: SystemState = serde_json::from_value(&value)
            .map_err(|e| FrameError::Json { line, reason: e.to_string() })?;
        self.validate(&state)?;
        Ok(Some(InputFrame::State(Box::new(state))))
    }

    fn validate(&self, state: &SystemState) -> Result<(), FrameError> {
        let line = self.line;
        if let Some((devices, stations)) = self.dims {
            if state.task_cycles.len() != devices
                || state.data_bits.len() != devices
                || state.spectral_efficiency.len() != devices
            {
                return Err(FrameError::Shape {
                    line,
                    reason: format!(
                        "expected {devices} devices, got {}/{}/{} \
                         (task_cycles/data_bits/spectral_efficiency)",
                        state.task_cycles.len(),
                        state.data_bits.len(),
                        state.spectral_efficiency.len()
                    ),
                });
            }
            if state.fronthaul_efficiency.len() != stations {
                return Err(FrameError::Shape {
                    line,
                    reason: format!(
                        "expected {stations} base stations, got {}",
                        state.fronthaul_efficiency.len()
                    ),
                });
            }
            if let Some(row) = state.spectral_efficiency.iter().find(|r| r.len() != stations) {
                return Err(FrameError::Shape {
                    line,
                    reason: format!(
                        "spectral_efficiency row has {} entries, expected {stations}",
                        row.len()
                    ),
                });
            }
        }
        let all_finite = |xs: &[f64]| xs.iter().all(|x| x.is_finite());
        if !all_finite(&state.task_cycles) {
            return Err(FrameError::NonFinite { line, field: "task_cycles" });
        }
        if !all_finite(&state.data_bits) {
            return Err(FrameError::NonFinite { line, field: "data_bits" });
        }
        if !state.spectral_efficiency.iter().all(|row| all_finite(row)) {
            return Err(FrameError::NonFinite { line, field: "spectral_efficiency" });
        }
        if !all_finite(&state.fronthaul_efficiency) {
            return Err(FrameError::NonFinite { line, field: "fronthaul_efficiency" });
        }
        if !state.price_per_kwh.is_finite() {
            return Err(FrameError::NonFinite { line, field: "price_per_kwh" });
        }
        Ok(())
    }
}

/// The decision record emitted for every solved slot — the JSONL twin of
/// one `slot_csv` row (minus the per-stage columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// The slot solved.
    pub slot: u64,
    /// Fleet latency `T_t` (seconds).
    pub latency_s: f64,
    /// Energy cost `C_t` (dollars).
    pub cost_usd: f64,
    /// Virtual-queue backlog `Q(t+1)`.
    pub queue: f64,
    /// Electricity price observed ($/kWh).
    pub price: f64,
    /// Wall-clock solve time (seconds; the one non-deterministic field).
    pub solve_time_s: f64,
    /// Jain's fairness index of per-device latencies.
    pub fairness: f64,
    /// Fraction of devices that changed base station.
    pub handover_rate: f64,
    /// Fleet mean clock (GHz).
    pub mean_clock_ghz: f64,
    /// BDMA alternation rounds executed.
    pub bdma_rounds: f64,
    /// Chosen base station per device.
    pub stations: Vec<u32>,
}

impl DecisionRecord {
    /// Builds the record from an engine step report.
    pub fn from_report(report: &StepReport) -> Self {
        Self {
            slot: report.slot,
            latency_s: report.latency_s,
            cost_usd: report.cost_usd,
            queue: report.queue,
            price: report.price,
            solve_time_s: report.solve_time_s,
            fairness: report.fairness,
            handover_rate: report.handover_rate,
            mean_clock_ghz: report.mean_clock_ghz,
            bdma_rounds: report.rounds_used,
            stations: report.stations.clone(),
        }
    }

    /// One JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| {
            unreachable!("decision records contain only finite floats and integers")
        })
    }
}

/// Encodes an error record for the error stream:
/// `{"error": "...", "kind": "...", "line": N}`.
pub fn encode_error(error: &FrameError) -> String {
    let value = serde_json::Value::Object(vec![
        ("error".to_owned(), serde_json::Value::Str(error.to_string())),
        ("kind".to_owned(), serde_json::Value::Str(error.kind().to_owned())),
        ("line".to_owned(), serde_json::Value::U64(error.line())),
    ]);
    serde_json::to_string(&value)
        .unwrap_or_else(|_| unreachable!("error records are plain strings and integers"))
}

/// Encodes an event record: `{"event": "...", <extra fields>}`. Extra
/// values must be finite/serializable (the caller builds them).
pub fn encode_event(event: &str, fields: &[(&str, serde_json::Value)]) -> String {
    let mut object = vec![("event".to_owned(), serde_json::Value::Str(event.to_owned()))];
    for (key, value) in fields {
        object.push(((*key).to_owned(), value.clone()));
    }
    serde_json::to_string(&serde_json::Value::Object(object))
        .unwrap_or_else(|_| unreachable!("event records are built from finite values"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(slot: u64) -> SystemState {
        SystemState {
            slot,
            task_cycles: vec![1.0e8, 2.0e8],
            data_bits: vec![1.0e6, 2.0e6],
            spectral_efficiency: vec![vec![3.0, 2.0, 1.0], vec![1.5, 2.5, 3.5]],
            fronthaul_efficiency: vec![4.0, 4.0, 4.0],
            price_per_kwh: 0.11,
        }
    }

    #[test]
    fn round_trips_a_state_frame() {
        let mut dec = FrameDecoder::new(2, 3);
        let line = serde_json::to_string(&state(7)).expect("states serialize");
        match dec.decode_line(&line) {
            Ok(Some(InputFrame::State(s))) => assert_eq!(*s, state(7)),
            other => panic!("expected a state frame, got {other:?}"),
        }
    }

    #[test]
    fn decodes_control_verbs() {
        let mut dec = FrameDecoder::new(2, 3);
        let cases = [
            (r#"{"control": "shutdown"}"#, ControlFrame::Shutdown),
            (r#"{"control": "checkpoint"}"#, ControlFrame::Checkpoint),
            (r#"{"control": "reload"}"#, ControlFrame::Reload { path: None }),
            (
                r#"{"control": "reload", "path": "new.toml"}"#,
                ControlFrame::Reload { path: Some("new.toml".into()) },
            ),
        ];
        for (line, want) in cases {
            match dec.decode_line(line) {
                Ok(Some(InputFrame::Control(got))) => assert_eq!(got, want, "{line}"),
                other => panic!("{line}: got {other:?}"),
            }
        }
        let e = dec.decode_line(r#"{"control": "launch"}"#).expect_err("unknown verb");
        assert_eq!(e, FrameError::UnknownControl { line: 5, control: "launch".into() });
    }

    #[test]
    fn garbage_yields_typed_errors_and_keeps_counting() {
        let mut dec = FrameDecoder::new(2, 3);
        assert!(matches!(dec.decode_line("not json"), Err(FrameError::Json { line: 1, .. })));
        assert!(matches!(dec.decode_line("[1,2,3]"), Err(FrameError::Json { line: 2, .. })));
        assert!(matches!(dec.decode_line(""), Ok(None)));
        let good = serde_json::to_string(&state(0)).expect("serializes");
        assert!(matches!(dec.decode_line(&good), Ok(Some(InputFrame::State(_)))));
        assert_eq!(dec.line(), 4);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let mut dec = FrameDecoder::new(3, 3);
        let line = serde_json::to_string(&state(0)).expect("serializes");
        assert!(matches!(dec.decode_line(&line), Err(FrameError::Shape { .. })));

        let mut ragged = state(0);
        ragged.spectral_efficiency[1] = vec![1.0];
        let mut dec = FrameDecoder::new(2, 3);
        let line = serde_json::to_string(&ragged).expect("serializes");
        assert!(matches!(dec.decode_line(&line), Err(FrameError::Shape { .. })));
    }

    #[test]
    fn non_finite_scalars_are_rejected() {
        // JSON cannot carry a literal NaN, but huge exponents overflow to
        // infinity in any conforming reader — the decoder must catch them.
        let mut dec = FrameDecoder::new(2, 3);
        let line =
            serde_json::to_string(&state(0)).expect("serializes").replace("0.11", "1e999999");
        match dec.decode_line(&line) {
            Err(FrameError::NonFinite { field: "price_per_kwh", .. }) => {}
            Err(FrameError::Json { .. }) => {} // also acceptable: parser rejects overflow
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn decision_record_encodes_round_trip() {
        let record = DecisionRecord {
            slot: 3,
            latency_s: 0.25,
            cost_usd: 0.9,
            queue: 1.5,
            price: 0.11,
            solve_time_s: 0.001,
            fairness: 0.99,
            handover_rate: 0.0,
            mean_clock_ghz: 2.4,
            bdma_rounds: 2.0,
            stations: vec![0, 2],
        };
        let line = record.encode();
        let back: DecisionRecord = serde_json::from_str(&line).expect("round-trips");
        assert_eq!(back, record);
    }

    #[test]
    fn output_records_are_distinguished_by_shape() {
        let err = encode_error(&FrameError::Json { line: 4, reason: "boom".into() });
        let event = encode_event("started", &[("slot", serde_json::Value::U64(0))]);
        let err_v = serde_json::parse(&err).expect("valid JSON");
        let event_v = serde_json::parse(&event).expect("valid JSON");
        let has = |v: &serde_json::Value, k: &str| {
            v.as_object().is_some_and(|fs| fs.iter().any(|(key, _)| key == k))
        };
        assert!(has(&err_v, "error") && !has(&err_v, "event"));
        assert!(has(&event_v, "event") && !has(&event_v, "error"));
    }
}
