//! The bounded admission queue between the input reader thread and the
//! solve loop.
//!
//! State frames are subject to the configured [`ShedPolicy`] when the
//! queue is at capacity; control frames and malformed-line reports are
//! *never* shed (an operator's shutdown must get through a flooded
//! queue). Every shed/coalesce decision is counted so the solve loop can
//! surface it through the `server.*` counters.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::frame::{ControlFrame, FrameError};
use eotora_states::SystemState;

/// What to do with a new state frame when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Block the reader until the solver drains a slot — true
    /// backpressure: the OS pipe fills and the client stalls.
    Block,
    /// Drop the oldest queued state to admit the newest (the solver skips
    /// the dropped slots and the decision stream gains a gap).
    DropOldest,
    /// Keep only the newest state: drop *all* queued states to admit the
    /// new one. Under sustained overload the solver always works on the
    /// freshest `β`, the online-control ideal.
    NewestWins,
}

impl ShedPolicy {
    /// Parses the config spelling (`block` / `drop-oldest` /
    /// `newest-wins`).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "block" => Some(Self::Block),
            "drop-oldest" => Some(Self::DropOldest),
            "newest-wins" => Some(Self::NewestWins),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Block => "block",
            Self::DropOldest => "drop-oldest",
            Self::NewestWins => "newest-wins",
        })
    }
}

/// One queued item, as the solve loop pops it.
#[derive(Debug)]
pub enum Admission {
    /// A slot state to solve.
    State(Box<SystemState>),
    /// A control verb (never shed).
    Control(ControlFrame),
    /// A malformed input line, forwarded for in-order error reporting
    /// (never shed).
    Malformed(FrameError),
}

/// What happened to a pushed state frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued (possibly after blocking).
    Admitted,
    /// Queued after dropping `shed` older states.
    AdmittedAfterShedding {
        /// States dropped to make room.
        shed: u64,
    },
}

/// Lifetime traffic accounting, read by the solve loop for `server.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// State frames admitted (including after shedding).
    pub admitted: u64,
    /// State frames dropped by the `DropOldest` policy.
    pub shed_oldest: u64,
    /// State frames dropped by the `NewestWins` policy.
    pub shed_newest: u64,
    /// Deepest the queue has ever been.
    pub max_depth: usize,
}

impl QueueStats {
    /// Total states shed under any policy.
    pub fn shed(&self) -> u64 {
        self.shed_oldest + self.shed_newest
    }
}

struct Inner {
    items: VecDeque<Admission>,
    states: usize,
    capacity: usize,
    policy: ShedPolicy,
    closed: bool,
    stats: QueueStats,
}

/// The bounded MPSC hand-off between reader and solver.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    room: Condvar,
    ready: Condvar,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` state frames at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (config validation rejects it first).
    pub fn new(capacity: usize, policy: ShedPolicy) -> Self {
        assert!(capacity > 0, "admission capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                states: 0,
                capacity,
                policy,
                closed: false,
                stats: QueueStats::default(),
            }),
            room: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Hot-reloads the capacity/policy pair. A shrink does not evict
    /// already-queued states; it only gates new admissions.
    pub fn reconfigure(&self, capacity: usize, policy: ShedPolicy) {
        let mut inner = self.lock();
        inner.capacity = capacity.max(1);
        inner.policy = policy;
        drop(inner);
        // A capacity increase may unblock a waiting `Block` producer.
        self.room.notify_all();
    }

    /// Pushes a state frame, applying the shed policy at capacity.
    /// Returns `Admitted` without queueing when the queue is closed.
    pub fn push_state(&self, state: Box<SystemState>) -> PushOutcome {
        let mut inner = self.lock();
        while !inner.closed && inner.states >= inner.capacity && inner.policy == ShedPolicy::Block {
            inner = match self.room.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        if inner.closed {
            return PushOutcome::Admitted;
        }
        let mut shed = 0u64;
        if inner.states >= inner.capacity {
            let keep = match inner.policy {
                ShedPolicy::DropOldest => inner.capacity.saturating_sub(1),
                ShedPolicy::NewestWins => 0,
                ShedPolicy::Block => unreachable!("block waits above"),
            };
            while inner.states > keep {
                // Shed the *oldest* state still queued; controls keep
                // their relative order and are never touched.
                let Some(pos) = inner.items.iter().position(|i| matches!(i, Admission::State(_)))
                else {
                    break;
                };
                inner.items.remove(pos);
                inner.states -= 1;
                shed += 1;
            }
        }
        inner.items.push_back(Admission::State(state));
        inner.states += 1;
        inner.stats.admitted += 1;
        match inner.policy {
            ShedPolicy::DropOldest => inner.stats.shed_oldest += shed,
            ShedPolicy::NewestWins => inner.stats.shed_newest += shed,
            ShedPolicy::Block => debug_assert_eq!(shed, 0, "block never sheds"),
        }
        inner.stats.max_depth = inner.stats.max_depth.max(inner.states);
        drop(inner);
        self.ready.notify_one();
        if shed > 0 {
            PushOutcome::AdmittedAfterShedding { shed }
        } else {
            PushOutcome::Admitted
        }
    }

    /// Pushes a control or malformed item — always admitted, never
    /// counted against capacity.
    pub fn push_priority(&self, item: Admission) {
        let mut inner = self.lock();
        if inner.closed {
            return;
        }
        debug_assert!(!matches!(item, Admission::State(_)), "states go through push_state");
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
    }

    /// Pops the next item, waiting up to `timeout`. `None` means either
    /// timeout or closed-and-drained — check [`AdmissionQueue::is_done`]
    /// to tell them apart.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Admission> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                if matches!(item, Admission::State(_)) {
                    inner.states -= 1;
                }
                drop(inner);
                self.room.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, result) = match self.ready.wait_timeout(inner, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
            if result.timed_out() && inner.items.is_empty() {
                return None;
            }
        }
    }

    /// Marks the stream finished: blocked producers wake and drop their
    /// frames, and `pop_timeout` returns `None` once drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.room.notify_all();
        self.ready.notify_all();
    }

    /// Whether the queue is closed *and* fully drained.
    pub fn is_done(&self) -> bool {
        let inner = self.lock();
        inner.closed && inner.items.is_empty()
    }

    /// Current queue depth in state frames.
    pub fn depth(&self) -> usize {
        self.lock().states
    }

    /// Lifetime traffic statistics.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn state(slot: u64) -> Box<SystemState> {
        Box::new(SystemState {
            slot,
            task_cycles: vec![1.0],
            data_bits: vec![1.0],
            spectral_efficiency: vec![vec![1.0]],
            fronthaul_efficiency: vec![1.0],
            price_per_kwh: 0.1,
        })
    }

    fn popped_slots(queue: &AdmissionQueue) -> Vec<u64> {
        let mut slots = Vec::new();
        while let Some(item) = queue.pop_timeout(Duration::from_millis(1)) {
            if let Admission::State(s) = item {
                slots.push(s.slot);
            }
        }
        slots
    }

    #[test]
    fn drop_oldest_sheds_the_oldest_state() {
        let q = AdmissionQueue::new(2, ShedPolicy::DropOldest);
        assert_eq!(q.push_state(state(0)), PushOutcome::Admitted);
        assert_eq!(q.push_state(state(1)), PushOutcome::Admitted);
        assert_eq!(q.push_state(state(2)), PushOutcome::AdmittedAfterShedding { shed: 1 });
        assert_eq!(popped_slots(&q), vec![1, 2]);
        let stats = q.stats();
        assert_eq!(
            (stats.admitted, stats.shed_oldest, stats.shed_newest, stats.max_depth),
            (3, 1, 0, 2)
        );
    }

    #[test]
    fn newest_wins_keeps_only_the_newest() {
        let q = AdmissionQueue::new(3, ShedPolicy::NewestWins);
        for slot in 0..3 {
            q.push_state(state(slot));
        }
        assert_eq!(q.push_state(state(3)), PushOutcome::AdmittedAfterShedding { shed: 3 });
        assert_eq!(popped_slots(&q), vec![3]);
        let stats = q.stats();
        assert_eq!((stats.shed_oldest, stats.shed_newest), (0, 3));
    }

    #[test]
    fn controls_are_never_shed() {
        let q = AdmissionQueue::new(1, ShedPolicy::NewestWins);
        q.push_state(state(0));
        q.push_priority(Admission::Control(ControlFrame::Checkpoint));
        q.push_state(state(1)); // sheds state 0, not the control
        let first = q.pop_timeout(Duration::from_millis(1)).expect("control queued");
        assert!(matches!(first, Admission::Control(ControlFrame::Checkpoint)));
        assert_eq!(popped_slots(&q), vec![1]);
        assert_eq!(q.stats().shed_newest, 1);
    }

    #[test]
    fn block_policy_applies_backpressure() {
        let q = Arc::new(AdmissionQueue::new(1, ShedPolicy::Block));
        q.push_state(state(0));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push_state(state(1)); // must block until the pop below
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "producer must be blocked at capacity");
        let popped = q.pop_timeout(Duration::from_millis(100)).expect("state queued");
        assert!(matches!(popped, Admission::State(_)));
        producer.join().expect("producer finishes after room opens");
        assert_eq!(popped_slots(&q), vec![1]);
        assert_eq!(q.stats().shed(), 0);
    }

    #[test]
    fn close_unblocks_producers_and_drains() {
        let q = Arc::new(AdmissionQueue::new(1, ShedPolicy::Block));
        q.push_state(state(0));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_state(state(1)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        producer.join().expect("close wakes the blocked producer");
        // The queued state is still drainable after close.
        assert_eq!(popped_slots(&q), vec![0]);
        assert!(q.is_done());
    }

    #[test]
    fn pop_times_out_on_an_empty_open_queue() {
        let q = AdmissionQueue::new(4, ShedPolicy::Block);
        assert!(q.pop_timeout(Duration::from_millis(5)).is_none());
        assert!(!q.is_done());
    }
}
