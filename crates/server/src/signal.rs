//! Minimal POSIX signal wiring — no `libc` crate, just the two syscall
//! shims the daemon needs: `signal(2)` to install handlers and (in
//! tests) `raise(3)` to fire them.
//!
//! SIGTERM and SIGINT request a graceful shutdown (flush journal, write
//! snapshot, exit); SIGHUP requests a config hot-reload. Handlers only
//! set process-global atomic flags — everything else happens on the
//! solve loop, which polls the flags between queue pops.
//!
//! Tests use [`SignalFlags::manual`], which backs the same API with
//! local atomics and never touches process signal dispositions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `SIGHUP` — config hot-reload.
pub const SIGHUP: i32 = 1;
/// `SIGINT` — graceful shutdown.
pub const SIGINT: i32 = 2;
/// `SIGTERM` — graceful shutdown.
pub const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    #[cfg(test)]
    fn raise(signum: i32) -> i32;
}

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);
static RELOAD_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

extern "C" fn on_hangup(_signum: i32) {
    RELOAD_REQUESTED.store(true, Ordering::SeqCst);
}

/// The solve loop's view of pending signal requests. Either backed by
/// the process-global handler flags ([`SignalFlags::install`]) or by
/// local atomics ([`SignalFlags::manual`]) that tests and embedding
/// callers set directly.
#[derive(Clone)]
pub struct SignalFlags {
    global: bool,
    term: Arc<AtomicBool>,
    reload: Arc<AtomicBool>,
}

impl SignalFlags {
    /// Installs SIGTERM/SIGINT/SIGHUP handlers and returns the flags
    /// they set. Process-wide; call once from the daemon entry point.
    pub fn install() -> Self {
        // SAFETY: `signal` with a valid extern "C" fn pointer is the
        // documented contract; the handlers only touch lock-free
        // atomics, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_terminate as *const () as usize);
            signal(SIGINT, on_terminate as *const () as usize);
            signal(SIGHUP, on_hangup as *const () as usize);
        }
        Self {
            global: true,
            term: Arc::new(AtomicBool::new(false)),
            reload: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Flags detached from process signals, driven via
    /// [`SignalFlags::request_shutdown`] / [`SignalFlags::request_reload`].
    pub fn manual() -> Self {
        Self {
            global: false,
            term: Arc::new(AtomicBool::new(false)),
            reload: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Requests a graceful shutdown (what SIGTERM does).
    pub fn request_shutdown(&self) {
        if self.global {
            TERM_REQUESTED.store(true, Ordering::SeqCst);
        } else {
            self.term.store(true, Ordering::SeqCst);
        }
    }

    /// Requests a config hot-reload (what SIGHUP does).
    pub fn request_reload(&self) {
        if self.global {
            RELOAD_REQUESTED.store(true, Ordering::SeqCst);
        } else {
            self.reload.store(true, Ordering::SeqCst);
        }
    }

    /// Whether shutdown has been requested (sticky).
    pub fn shutdown_requested(&self) -> bool {
        if self.global {
            TERM_REQUESTED.load(Ordering::SeqCst)
        } else {
            self.term.load(Ordering::SeqCst)
        }
    }

    /// Consumes a pending reload request, if any.
    pub fn take_reload(&self) -> bool {
        if self.global {
            RELOAD_REQUESTED.swap(false, Ordering::SeqCst)
        } else {
            self.reload.swap(false, Ordering::SeqCst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_flags_are_local() {
        let a = SignalFlags::manual();
        let b = SignalFlags::manual();
        a.request_shutdown();
        a.request_reload();
        assert!(a.shutdown_requested());
        assert!(!b.shutdown_requested());
        assert!(a.take_reload());
        assert!(!a.take_reload(), "reload requests are consumed");
        assert!(!b.take_reload());
    }

    #[test]
    fn installed_handlers_set_the_global_flags() {
        let flags = SignalFlags::install();
        assert!(!flags.take_reload());
        // SAFETY: raising a signal we just installed a no-op-ish handler
        // for; the handler only sets an atomic.
        unsafe {
            raise(SIGHUP);
        }
        assert!(flags.take_reload(), "SIGHUP must set the reload flag");
        unsafe {
            raise(SIGTERM);
        }
        assert!(flags.shutdown_requested(), "SIGTERM must set the shutdown flag");
        // Leave the process flags clean for any other test.
        TERM_REQUESTED.store(false, Ordering::SeqCst);
    }
}
