//! The server's validated configuration: parsing (TOML subset or JSON),
//! startup validation, and the hot-reload compatibility check.
//!
//! Missing optional fields take documented defaults; *unknown* keys are
//! rejected outright (a typo'd `deadline_mss` must not silently become
//! "no deadline"). Hot reloads revalidate from scratch and then pass
//! through [`validate_reload`], which partitions fields into hot-
//! appliable (deadline, admission, watchdog) and restart-only (scenario,
//! durability, telemetry) — a rejected reload leaves the running config
//! untouched.

use std::path::{Path, PathBuf};
use std::time::Duration;

use eotora_durability::FsyncPolicy;
use eotora_sim::Scenario;
use serde_json::Value;

use crate::queue::ShedPolicy;
use crate::toml;

/// A configuration failure, typed by where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The config (or referenced scenario) file could not be read.
    Io {
        /// Offending path.
        path: String,
        /// OS error text.
        reason: String,
    },
    /// The config text failed to parse (TOML line or JSON reason).
    Parse {
        /// Parser message, with line number for TOML.
        reason: String,
    },
    /// A field parsed but holds an unusable value.
    Invalid {
        /// Dotted field path, e.g. `admission.capacity`.
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A hot reload asked for a change that requires a restart.
    Reload {
        /// Which change was refused and why.
        reason: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
            Self::Parse { reason } => write!(f, "config parse error: {reason}"),
            Self::Invalid { field, reason } => write!(f, "config field `{field}`: {reason}"),
            Self::Reload { reason } => write!(f, "reload rejected: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// `[admission]` — the bounded queue between reader and solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionSettings {
    /// Maximum queued state frames (≥ 1).
    pub capacity: usize,
    /// What to do with new states at capacity.
    pub policy: ShedPolicy,
}

/// `[durability]` — always-on journal + checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilitySettings {
    /// Checkpoint directory (auto-resumed on restart).
    pub dir: PathBuf,
    /// Snapshot cadence in slots.
    pub checkpoint_every: u64,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
}

/// `[telemetry]` — periodic metrics dumps and postmortem flight dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySettings {
    /// Metrics snapshot file (`.prom` or JSONL); `None` disables.
    pub metrics_out: Option<PathBuf>,
    /// Snapshot interval in slots (0 = final only).
    pub metrics_every: u64,
}

/// The full validated server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The scenario the controller runs (fixed for the daemon's life).
    pub scenario: Scenario,
    /// Per-slot anytime deadline; `None` runs the plain engine,
    /// `Some(d)` the robust engine with its degradation ladder.
    pub deadline: Option<Duration>,
    /// Trip the watchdog after this many *consecutive* slots with
    /// deadline expirations (0 disables).
    pub watchdog_expirations: u64,
    /// Test hook: simulate a crash right after this slot commits (no
    /// graceful checkpoint) — drives the kill–restart chaos tests.
    pub kill_after_slot: Option<u64>,
    /// Admission queue settings.
    pub admission: AdmissionSettings,
    /// Journal/checkpoint settings.
    pub durability: DurabilitySettings,
    /// Metrics/postmortem settings.
    pub telemetry: TelemetrySettings,
}

fn invalid(field: &str, reason: impl Into<String>) -> ConfigError {
    ConfigError::Invalid { field: field.to_owned(), reason: reason.into() }
}

/// A section's fields plus cursor bookkeeping for unknown-key rejection.
struct Section<'v> {
    name: &'static str,
    fields: &'v [(String, Value)],
}

impl<'v> Section<'v> {
    fn get(&self, key: &str) -> Option<&'v Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), ConfigError> {
        for (key, _) in self.fields {
            if !known.contains(&key.as_str()) {
                return Err(invalid(
                    &format!("{}.{key}", self.name),
                    format!("unknown key (known: {})", known.join(", ")),
                ));
            }
        }
        Ok(())
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| invalid(&format!("{}.{key}", self.name), "expected an integer ≥ 0")),
        }
    }

    fn str(&self, key: &str) -> Result<Option<&'v str>, ConfigError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| invalid(&format!("{}.{key}", self.name), "expected a string")),
        }
    }
}

fn section<'v>(
    root: &'v [(String, Value)],
    name: &'static str,
) -> Result<Section<'v>, ConfigError> {
    static EMPTY: &[(String, Value)] = &[];
    match root.iter().find(|(k, _)| k == name) {
        None => Ok(Section { name, fields: EMPTY }),
        Some((_, Value::Object(fields))) => Ok(Section { name, fields }),
        Some(_) => Err(invalid(name, "expected a `[section]` table")),
    }
}

impl ServerConfig {
    /// Loads and validates a config file. The format is chosen by
    /// content: a leading `{` means JSON, anything else the TOML subset.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Self::from_str(&text)
    }

    /// Parses and validates config text (TOML subset or JSON).
    #[allow(clippy::should_implement_trait)] // fallible, multi-format
    pub fn from_str(text: &str) -> Result<Self, ConfigError> {
        let value = if text.trim_start().starts_with('{') {
            serde_json::parse(text).map_err(|e| ConfigError::Parse { reason: e.to_string() })?
        } else {
            toml::parse(text).map_err(|e| ConfigError::Parse { reason: e.to_string() })?
        };
        Self::from_value(&value)
    }

    /// Validates a parsed config tree.
    pub fn from_value(value: &Value) -> Result<Self, ConfigError> {
        let root = value
            .as_object()
            .ok_or_else(|| ConfigError::Parse { reason: "config is not an object".into() })?;
        for (key, _) in root {
            if !["scenario", "server", "admission", "durability", "telemetry"]
                .contains(&key.as_str())
            {
                return Err(invalid(key, "unknown section"));
            }
        }

        let scenario = parse_scenario(section(root, "scenario")?)?;

        let server = section(root, "server")?;
        server.reject_unknown(&["deadline_ms", "watchdog_expirations", "kill_after_slot"])?;
        let deadline_ms = server.u64("deadline_ms", 0)?;
        let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
        let watchdog_expirations = server.u64("watchdog_expirations", 8)?;
        let kill_after_slot = match server.get("kill_after_slot") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                invalid("server.kill_after_slot", "expected a slot index (integer ≥ 0)")
            })?),
        };

        let admission = section(root, "admission")?;
        admission.reject_unknown(&["capacity", "policy"])?;
        let capacity = admission.u64("capacity", 64)?;
        if capacity == 0 {
            return Err(invalid("admission.capacity", "must be at least 1"));
        }
        let policy = match admission.str("policy")? {
            None => ShedPolicy::NewestWins,
            Some(text) => ShedPolicy::parse(text).ok_or_else(|| {
                invalid(
                    "admission.policy",
                    format!("expected block|drop-oldest|newest-wins, got `{text}`"),
                )
            })?,
        };

        let durability = section(root, "durability")?;
        durability.reject_unknown(&["dir", "checkpoint_every", "fsync"])?;
        let dir = durability.str("dir")?.ok_or_else(|| {
            invalid("durability.dir", "required: the always-on checkpoint directory")
        })?;
        let checkpoint_every = durability.u64("checkpoint_every", 10)?;
        if checkpoint_every == 0 {
            return Err(invalid("durability.checkpoint_every", "must be at least 1"));
        }
        let fsync = match durability.str("fsync")? {
            None => FsyncPolicy::default(),
            Some(text) => {
                text.parse::<FsyncPolicy>().map_err(|e| invalid("durability.fsync", e))?
            }
        };

        let telemetry = section(root, "telemetry")?;
        telemetry.reject_unknown(&["metrics_out", "metrics_every"])?;
        let metrics_out = telemetry.str("metrics_out")?.map(PathBuf::from);
        let metrics_every = telemetry.u64("metrics_every", 0)?;

        Ok(ServerConfig {
            scenario,
            deadline,
            watchdog_expirations,
            kill_after_slot,
            admission: AdmissionSettings { capacity: capacity as usize, policy },
            durability: DurabilitySettings { dir: PathBuf::from(dir), checkpoint_every, fsync },
            telemetry: TelemetrySettings { metrics_out, metrics_every },
        })
    }
}

/// `[scenario]`: either `path = "scenario.json"` (the serde form
/// `eotora template` emits) or an inline paper scenario from `devices` /
/// `seed` / `horizon` / `bdma_rounds` / `label`.
fn parse_scenario(section: Section<'_>) -> Result<Scenario, ConfigError> {
    section.reject_unknown(&["path", "devices", "seed", "horizon", "bdma_rounds", "label"])?;
    if let Some(path) = section.str("path")? {
        for key in ["devices", "seed", "horizon", "bdma_rounds", "label"] {
            if section.get(key).is_some() {
                return Err(invalid(
                    &format!("scenario.{key}"),
                    "cannot be combined with scenario.path",
                ));
            }
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Io { path: path.to_owned(), reason: e.to_string() })?;
        return serde_json::from_str(&text)
            .map_err(|e| invalid("scenario.path", format!("{path} is not a scenario: {e}")));
    }
    let devices = section
        .get("devices")
        .ok_or_else(|| invalid("scenario", "required: either `path` or `devices`"))?
        .as_u64()
        .ok_or_else(|| invalid("scenario.devices", "expected an integer ≥ 1"))?;
    if devices == 0 {
        return Err(invalid("scenario.devices", "must be at least 1"));
    }
    let seed = section.u64("seed", 0)?;
    let mut scenario = Scenario::paper(devices as usize, seed);
    scenario.horizon = section.u64("horizon", scenario.horizon)?;
    if let Some(rounds) = section.get("bdma_rounds") {
        let rounds = rounds
            .as_u64()
            .ok_or_else(|| invalid("scenario.bdma_rounds", "expected an integer ≥ 1"))?;
        if rounds == 0 {
            return Err(invalid("scenario.bdma_rounds", "must be at least 1"));
        }
        scenario.dpp.bdma_rounds = rounds as usize;
    }
    if let Some(label) = section.str("label")? {
        scenario.label = label.to_owned();
    }
    Ok(scenario)
}

/// Splits a candidate reload against the running config: hot-appliable
/// changes (deadline, admission, watchdog, kill hook) pass through;
/// anything pinned by open resources (scenario, durability session,
/// telemetry sinks) or by the engine mode (plain ↔ robust) is rejected
/// with a typed [`ConfigError::Reload`] — and the caller keeps running
/// on the old config.
pub fn validate_reload(
    current: &ServerConfig,
    next: ServerConfig,
) -> Result<ServerConfig, ConfigError> {
    let refuse = |reason: &str| Err(ConfigError::Reload { reason: reason.to_owned() });
    if next.scenario != current.scenario {
        return refuse("the scenario cannot change while the controller is live; restart");
    }
    if next.durability != current.durability {
        return refuse("durability settings are pinned by the open journal; restart");
    }
    if next.telemetry != current.telemetry {
        return refuse("telemetry sinks are pinned for the session; restart");
    }
    match (current.deadline, next.deadline) {
        (Some(_), None) | (None, Some(_)) => {
            refuse("the engine mode (plain vs robust) is fixed at startup; restart")
        }
        _ => Ok(next),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
        [scenario]\n\
        devices = 4\n\
        seed = 9\n\
        [durability]\n\
        dir = \"ckpt\"\n";

    #[test]
    fn minimal_toml_gets_defaults() {
        let cfg = ServerConfig::from_str(MINIMAL).expect("valid");
        assert_eq!(cfg.scenario.system.topology.num_devices, 4);
        assert_eq!(cfg.scenario.seed, 9);
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.watchdog_expirations, 8);
        assert_eq!(cfg.admission.capacity, 64);
        assert_eq!(cfg.admission.policy, ShedPolicy::NewestWins);
        assert_eq!(cfg.durability.dir, PathBuf::from("ckpt"));
        assert_eq!(cfg.durability.checkpoint_every, 10);
        assert_eq!(cfg.telemetry.metrics_out, None);
    }

    #[test]
    fn json_config_parses_too() {
        let cfg = ServerConfig::from_str(
            r#"{"scenario": {"devices": 3}, "durability": {"dir": "d"},
                "server": {"deadline_ms": 50}}"#,
        )
        .expect("valid");
        assert_eq!(cfg.deadline, Some(Duration::from_millis(50)));
    }

    #[test]
    fn unknown_keys_are_typed_errors() {
        let text = format!("{MINIMAL}[server]\ndeadline_mss = 10\n");
        match ServerConfig::from_str(&text) {
            Err(ConfigError::Invalid { field, .. }) => assert_eq!(field, "server.deadline_mss"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        match ServerConfig::from_str(&format!("{MINIMAL}[extra]\nx = 1\n")) {
            Err(ConfigError::Invalid { field, .. }) => assert_eq!(field, "extra"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn invalid_values_are_typed_errors() {
        for (extra, field) in [
            ("[admission]\ncapacity = 0\n", "admission.capacity"),
            ("[admission]\npolicy = \"fifo\"\n", "admission.policy"),
            ("[server]\ndeadline_ms = -5\n", "server.deadline_ms"),
        ] {
            match ServerConfig::from_str(&format!("{MINIMAL}{extra}")) {
                Err(ConfigError::Invalid { field: got, .. }) => assert_eq!(got, field),
                other => panic!("{extra}: expected Invalid, got {other:?}"),
            }
        }
        assert!(matches!(
            ServerConfig::from_str("[scenario]\ndevices = ]\n"),
            Err(ConfigError::Parse { .. })
        ));
        assert!(matches!(
            ServerConfig::from_str("[scenario]\ndevices = 4\n"),
            Err(ConfigError::Invalid { .. }) // missing durability.dir
        ));
    }

    #[test]
    fn reload_applies_hot_fields_and_rejects_pinned_ones() {
        let base = || {
            ServerConfig::from_str(&format!("{MINIMAL}[server]\ndeadline_ms = 40\n"))
                .expect("valid")
        };
        let current = base();

        let mut hot = base();
        hot.deadline = Some(Duration::from_millis(80));
        hot.admission.capacity = 8;
        hot.watchdog_expirations = 3;
        let applied = validate_reload(&current, hot).expect("hot fields apply");
        assert_eq!(applied.deadline, Some(Duration::from_millis(80)));
        assert_eq!(applied.admission.capacity, 8);

        let mut other_scenario = base();
        other_scenario.scenario = Scenario::paper(5, 1);
        assert!(matches!(
            validate_reload(&current, other_scenario),
            Err(ConfigError::Reload { .. })
        ));

        let mut other_dir = base();
        other_dir.durability.dir = PathBuf::from("elsewhere");
        assert!(matches!(validate_reload(&current, other_dir), Err(ConfigError::Reload { .. })));

        let mut mode_flip = base();
        mode_flip.deadline = None;
        assert!(matches!(validate_reload(&current, mode_flip), Err(ConfigError::Reload { .. })));
    }
}
