//! `eotora-server` — the long-running controller daemon.
//!
//! Wraps the engine's [`StepDriver`](eotora_sim::StepDriver) in a
//! hardened service loop: JSONL slot states in (stdin, a pipe, or a Unix
//! socket), JSONL decision records out, with
//!
//! - a bounded [admission queue](queue::AdmissionQueue) applying a
//!   configurable [shed policy](queue::ShedPolicy) under overload —
//!   backpressure, drop-oldest, or newest-state-wins coalescing, every
//!   drop visible in the `server.*` counters;
//! - a validated [config](config::ServerConfig) (TOML subset or JSON)
//!   with atomic hot-reload on SIGHUP or an in-band `reload` control —
//!   a bad candidate config is rejected with a typed error on the error
//!   stream and the old config stays live;
//! - per-slot deadline enforcement through the robust engine's anytime
//!   ladder, with a watchdog that escalates repeated consecutive
//!   expirations into a flight-recorder postmortem dump;
//! - graceful shutdown on SIGTERM/SIGINT (journal synced, snapshot
//!   written, counters reported) and automatic resume from the
//!   checkpoint directory on restart — kill and restart yields a
//!   decision stream bit-identical to an uninterrupted run;
//! - always-on durability and optional periodic metrics dumps.
//!
//! The protocol intentionally has no framing beyond "one JSON object per
//! line": see [`frame`] for the codec and its typed, panic-free error
//! handling.

#![warn(missing_docs)]

pub mod config;
pub mod frame;
pub mod queue;
pub mod server;
pub mod signal;
pub mod toml;

pub use config::{validate_reload, ConfigError, ServerConfig};
pub use frame::{ControlFrame, DecisionRecord, FrameDecoder, FrameError, InputFrame};
pub use queue::{Admission, AdmissionQueue, PushOutcome, QueueStats, ShedPolicy};
pub use server::{serve, InputSource, ServerError, ServerSummary};
pub use signal::SignalFlags;
