//! End-to-end tests for the daemon loop: the decision stream must be
//! bit-identical to the batch engine (including across graceful and
//! hard restarts), overload must shed visibly while staying bounded,
//! hot-reloads must apply or reject atomically, and malformed input must
//! never derail the stream.

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use eotora_core::system::MecSystem;
use eotora_durability::FsyncPolicy;
use eotora_server::config::{AdmissionSettings, DurabilitySettings, TelemetrySettings};
use eotora_server::{
    serve, DecisionRecord, InputSource, ServerConfig, ServerSummary, ShedPolicy, SignalFlags,
};
use eotora_sim::{run, Scenario, SimulationResult};
use eotora_states::StateProvider;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eotora-serve-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> Scenario {
    Scenario::paper(6, 21).with_horizon(16).with_bdma_rounds(2)
}

fn config(s: &Scenario, dir: &Path) -> ServerConfig {
    ServerConfig {
        scenario: s.clone(),
        deadline: None,
        watchdog_expirations: 8,
        kill_after_slot: None,
        admission: AdmissionSettings { capacity: 64, policy: ShedPolicy::Block },
        durability: DurabilitySettings {
            dir: dir.to_path_buf(),
            checkpoint_every: 5,
            fsync: FsyncPolicy::Os,
        },
        telemetry: TelemetrySettings { metrics_out: None, metrics_every: 0 },
    }
}

/// The scenario's state stream as the JSONL a client would send.
fn states_jsonl(s: &Scenario, slots: u64) -> String {
    let system = MecSystem::random(&s.system, s.seed);
    let mut provider = StateProvider::paper(system.topology(), &s.states, s.seed);
    let mut out = String::new();
    for slot in 0..slots {
        let state = provider.observe(slot, system.topology());
        out.push_str(&serde_json::to_string(&state).expect("states serialize"));
        out.push('\n');
    }
    out
}

fn run_server(
    config: ServerConfig,
    input: &str,
) -> (ServerSummary, Vec<DecisionRecord>, Vec<String>) {
    let mut decisions = Vec::new();
    let mut events = Vec::new();
    let flags = SignalFlags::manual();
    let summary = serve(
        config,
        None,
        InputSource::Reader(Box::new(Cursor::new(input.as_bytes().to_vec()))),
        &mut decisions,
        &mut events,
        &flags,
    )
    .expect("serve runs to completion");
    let records = String::from_utf8(decisions)
        .expect("utf8")
        .lines()
        .map(|line| serde_json::from_str(line).expect("decision lines parse"))
        .collect();
    let events = String::from_utf8(events).expect("utf8").lines().map(str::to_owned).collect();
    (summary, records, events)
}

/// Every deterministic field of `record` must equal the batch run's
/// value at the same slot, bit for bit (`solve_time_s` is wall clock and
/// excluded).
fn assert_matches_batch(records: &[DecisionRecord], reference: &SimulationResult) {
    for rec in records {
        let i = rec.slot as usize;
        assert_eq!(rec.latency_s, reference.latency.values()[i], "latency at slot {i}");
        assert_eq!(rec.cost_usd, reference.cost.values()[i], "cost at slot {i}");
        assert_eq!(rec.queue, reference.queue.values()[i], "queue at slot {i}");
        assert_eq!(rec.price, reference.price.values()[i], "price at slot {i}");
        assert_eq!(rec.fairness, reference.fairness.values()[i], "fairness at slot {i}");
        assert_eq!(rec.handover_rate, reference.handover_rate.values()[i], "handover at slot {i}");
        assert_eq!(rec.mean_clock_ghz, reference.mean_clock_ghz.values()[i], "clock at slot {i}");
        assert_eq!(rec.bdma_rounds, reference.rounds_used.values()[i], "rounds at slot {i}");
    }
}

fn event_field(events: &[String], event: &str, field: &str) -> Option<serde_json::Value> {
    events.iter().find_map(|line| {
        let value = serde_json::parse(line).ok()?;
        let fields = value.as_object()?;
        let is_event = fields.iter().any(|(k, v)| k == "event" && v.as_str() == Some(event));
        if !is_event {
            return None;
        }
        fields.iter().find(|(k, _)| k == field).map(|(_, v)| v.clone())
    })
}

fn event_u64(events: &[String], event: &str, field: &str) -> Option<u64> {
    event_field(events, event, field).and_then(|v| v.as_u64())
}

#[test]
fn stream_is_bit_identical_to_batch() {
    let s = scenario();
    let reference = run(&s);
    let (summary, records, events) =
        run_server(config(&s, &temp_dir("identity")), &states_jsonl(&s, 16));
    assert_eq!(summary.slots_completed, 16);
    assert_eq!(summary.decisions, 16);
    assert!(!summary.interrupted);
    assert_eq!(records.len(), 16);
    assert_matches_batch(&records, &reference);
    assert_eq!(summary.counters["durability.frames_journaled"], 16);
    assert_eq!(summary.counters["server.decisions"], 16);
    assert_eq!(event_u64(&events, "started", "resumed_at_slot"), Some(0));
    assert_eq!(event_u64(&events, "shutdown", "slots"), Some(16));
}

#[test]
fn graceful_shutdown_and_restart_resume_without_duplicates() {
    let s = scenario();
    let reference = run(&s);
    let dir = temp_dir("graceful");
    let full = states_jsonl(&s, 16);

    // Insert a shutdown control after the first 7 states — the in-band
    // twin of SIGTERM (both exit through the same graceful path).
    let mut lines: Vec<&str> = full.lines().collect();
    lines.insert(7, r#"{"control": "shutdown"}"#);
    let (first, records_a, _) = run_server(config(&s, &dir), &lines.join("\n"));
    assert_eq!(first.slots_completed, 7);
    assert_eq!(records_a.iter().map(|r| r.slot).collect::<Vec<_>>(), (0..7).collect::<Vec<_>>());

    // Restart against the same directory; the client resends its full
    // stream and the already-solved prefix deduplicates.
    let (second, records_b, events_b) = run_server(config(&s, &dir), &full);
    assert_eq!(second.slots_completed, 16);
    assert_eq!(second.counters["server.coalesced"], 7);
    assert_eq!(records_b.iter().map(|r| r.slot).collect::<Vec<_>>(), (7..16).collect::<Vec<_>>());
    assert_eq!(event_u64(&events_b, "started", "resumed_at_slot"), Some(7));

    let mut all = records_a;
    all.extend(records_b);
    assert_eq!(all.len(), 16, "concatenated streams cover every slot exactly once");
    assert_matches_batch(&all, &reference);
}

#[test]
fn hard_kill_and_restart_re_emit_identical_decisions() {
    let s = scenario();
    let reference = run(&s);
    let dir = temp_dir("kill");
    let full = states_jsonl(&s, 16);

    // Crash (no graceful snapshot) after slot 7; the last cadence
    // snapshot is at slot 5, so the restart re-solves 5..=7.
    let mut killed = config(&s, &dir);
    killed.kill_after_slot = Some(7);
    let (first, records_a, events_a) = run_server(killed, &full);
    assert!(first.interrupted);
    assert_eq!(first.slots_completed, 8);
    assert!(event_field(&events_a, "killed", "slot").is_some());

    let (second, records_b, _) = run_server(config(&s, &dir), &full);
    assert!(!second.interrupted);
    assert_eq!(second.counters["durability.resumed_slots"], 5);
    assert_eq!(records_b.first().map(|r| r.slot), Some(5));
    assert_eq!(second.slots_completed, 16);

    // Re-emitted slots must be bit-identical to their first emission,
    // and the deduplicated union must match the batch run.
    let mut by_slot: std::collections::BTreeMap<u64, &DecisionRecord> = Default::default();
    for rec in records_a.iter().chain(&records_b) {
        if let Some(seen) = by_slot.get(&rec.slot) {
            assert_eq!(
                (seen.latency_s, seen.queue),
                (rec.latency_s, rec.queue),
                "slot {}",
                rec.slot
            );
        } else {
            by_slot.insert(rec.slot, rec);
        }
    }
    assert_eq!(by_slot.len(), 16);
    let deduped: Vec<DecisionRecord> = by_slot.into_values().cloned().collect();
    assert_matches_batch(&deduped, &reference);
}

#[test]
fn overload_sheds_and_keeps_the_queue_bounded() {
    let s = scenario();
    let mut cfg = config(&s, &temp_dir("overload"));
    cfg.admission.capacity = 4;
    cfg.admission.policy = ShedPolicy::NewestWins;
    // The in-memory reader floods 200 slots effectively instantly — far
    // beyond any solve rate — so the queue must shed.
    let (summary, records, events) = run_server(cfg, &states_jsonl(&s, 200));
    assert!(!summary.interrupted);
    assert!(summary.decisions >= 1);
    let shed = summary.counters.get("server.shed_newest").copied().unwrap_or(0);
    assert!(shed > 0, "200 instant slots against a real solver must shed");
    // The policy breakdown must attribute every drop to `NewestWins`.
    assert_eq!(summary.counters.get("server.shed_oldest").copied().unwrap_or(0), 0);
    assert_eq!(summary.counters["server.admitted"], 200);
    assert_eq!(shed + summary.decisions, 200, "every admitted state is solved or shed");
    match event_u64(&events, "shutdown", "max_queue_depth") {
        Some(depth) => {
            assert!(depth <= 4, "queue depth {depth} exceeded the capacity cap")
        }
        None => panic!("missing max_queue_depth in shutdown event"),
    }
    // The decision stream keeps strict slot order across the gaps.
    for pair in records.windows(2) {
        assert!(pair[0].slot < pair[1].slot, "slots must stay strictly increasing");
    }
    // Shed slots are journaled as gaps: a restart must resume cleanly.
    let s2 = scenario();
    let dir2 = temp_dir("overload-resume");
    let mut cfg = config(&s2, &dir2);
    cfg.admission.capacity = 4;
    cfg.admission.policy = ShedPolicy::NewestWins;
    let (first, _, _) = run_server(cfg, &states_jsonl(&s2, 120));
    let (second, _, _) = run_server(config(&s2, &dir2), &states_jsonl(&s2, 120));
    assert!(second.slots_completed >= first.slots_completed);
}

#[test]
fn hot_reload_applies_or_rejects_atomically() {
    let s = scenario();
    let dir = temp_dir("reload");
    let files = temp_dir("reload-files");
    fs::create_dir_all(&files).expect("mkdir");
    let toml_for = |devices: u64, capacity: u64| {
        format!(
            "[scenario]\ndevices = {devices}\nseed = 21\nhorizon = 16\nbdma_rounds = 2\n\
             [admission]\ncapacity = {capacity}\npolicy = \"block\"\n\
             [durability]\ndir = \"{}\"\ncheckpoint_every = 5\nfsync = \"os\"\n",
            dir.display()
        )
    };
    let good = files.join("good.toml");
    let bad = files.join("bad.toml");
    let garbage = files.join("garbage.toml");
    fs::write(&good, toml_for(6, 8)).expect("write");
    fs::write(&bad, toml_for(7, 8)).expect("write"); // scenario change: restart-only
    fs::write(&garbage, "definitely = not = toml\n").expect("write");

    let full = states_jsonl(&s, 16);
    let mut lines: Vec<String> = full.lines().map(str::to_owned).collect();
    lines.insert(3, format!(r#"{{"control": "reload", "path": "{}"}}"#, bad.display()));
    lines.insert(4, format!(r#"{{"control": "reload", "path": "{}"}}"#, garbage.display()));
    lines.insert(5, format!(r#"{{"control": "reload", "path": "{}"}}"#, good.display()));

    let (summary, records, events) = run_server(config(&s, &dir), &lines.join("\n"));
    assert_eq!(summary.counters["server.reloads_rejected"], 2);
    assert_eq!(summary.counters["server.reloads_applied"], 1);
    // Rejections carry a typed error record on the event stream...
    let rejections: Vec<&String> =
        events.iter().filter(|l| l.contains("reload_rejected")).collect();
    assert_eq!(rejections.len(), 2);
    assert!(rejections.iter().all(|l| l.contains("\"config\"")), "{rejections:?}");
    // ...and the applied reload reports the new admission settings.
    assert_eq!(event_u64(&events, "reload_applied", "capacity"), Some(8));
    // All 16 slots still solved — reload traffic never consumes states.
    assert_eq!(records.len(), 16);
    assert_eq!(summary.slots_completed, 16);
    assert_matches_batch(&records, &run(&s));
}

#[test]
fn malformed_lines_never_derail_the_stream() {
    let s = scenario();
    let full = states_jsonl(&s, 8);
    let mut lines: Vec<String> = full.lines().map(str::to_owned).collect();
    let truncated = lines[5].clone();
    lines.insert(2, "this is not json".to_owned());
    lines.insert(5, truncated[..truncated.len() / 2].to_owned());
    let (summary, records, events) =
        run_server(config(&s, &temp_dir("malformed")), &lines.join("\n"));
    assert_eq!(summary.counters["server.malformed_frames"], 2);
    assert_eq!(records.len(), 8, "every well-formed state still solves");
    assert_eq!(summary.slots_completed, 8);
    let errors: Vec<&String> = events.iter().filter(|l| l.contains("\"error\"")).collect();
    assert_eq!(errors.len(), 2);
    assert_matches_batch(&records, &run(&s));
}

#[cfg(unix)]
#[test]
fn unix_socket_clients_stream_states() {
    use std::io::Write as _;
    use std::os::unix::net::{UnixListener, UnixStream};

    let s = scenario();
    let sock_dir = temp_dir("sock");
    fs::create_dir_all(&sock_dir).expect("mkdir");
    let sock = sock_dir.join("eotora.sock");
    let listener = UnixListener::bind(&sock).expect("bind");
    let input = states_jsonl(&s, 6);

    let client = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&sock).expect("connect");
            stream.write_all(input.as_bytes()).expect("send states");
            stream.write_all(b"{\"control\": \"shutdown\"}\n").expect("send shutdown");
        })
    };

    let mut decisions = Vec::new();
    let mut events = Vec::new();
    let flags = SignalFlags::manual();
    let summary = serve(
        config(&s, &temp_dir("sock-ckpt")),
        None,
        InputSource::UnixSocket(listener),
        &mut decisions,
        &mut events,
        &flags,
    )
    .expect("serve");
    client.join().expect("client");
    assert_eq!(summary.slots_completed, 6);
    assert_eq!(summary.decisions, 6);
}

#[cfg(unix)]
#[test]
fn unix_socket_rejects_a_concurrent_second_client() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::{UnixListener, UnixStream};

    let s = scenario();
    let sock_dir = temp_dir("sock-concurrent");
    fs::create_dir_all(&sock_dir).expect("mkdir");
    let sock = sock_dir.join("eotora.sock");
    let listener = UnixListener::bind(&sock).expect("bind");
    let input = states_jsonl(&s, 4);

    let client = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut first = UnixStream::connect(&sock).expect("connect first");
            first.write_all(input.as_bytes()).expect("send states");
            // While the first stream is still open, a second connection
            // must be turned away with a typed error record on its own
            // stream — its frames never reach the solver.
            let second = UnixStream::connect(&sock).expect("connect second");
            let mut rejection = String::new();
            BufReader::new(second).read_line(&mut rejection).expect("read rejection");
            assert!(
                rejection.contains("concurrent-client"),
                "unexpected rejection line: {rejection:?}"
            );
            first.write_all(b"{\"control\": \"shutdown\"}\n").expect("send shutdown");
        })
    };

    let mut decisions = Vec::new();
    let mut events = Vec::new();
    let flags = SignalFlags::manual();
    let summary = serve(
        config(&s, &temp_dir("sock-concurrent-ckpt")),
        None,
        InputSource::UnixSocket(listener),
        &mut decisions,
        &mut events,
        &flags,
    )
    .expect("serve");
    client.join().expect("client");
    // Every state from the first client solved; the rejection shows up as
    // exactly one malformed-frame record, not as extra slots.
    assert_eq!(summary.slots_completed, 4);
    assert_eq!(summary.decisions, 4);
    assert_eq!(summary.counters["server.malformed_frames"], 1);
    let events = String::from_utf8(events).expect("utf8 events");
    assert_eq!(events.lines().filter(|l| l.contains("concurrent-client")).count(), 1);
}
