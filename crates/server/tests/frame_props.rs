//! Property tests for the server's input codec: no input line — garbage,
//! truncation, non-finite floats, wrong shapes — may panic the decoder
//! or desync its line cursor, and every rejection must be a typed
//! [`FrameError`]. The TOML-subset config parser gets the same
//! treatment.

use eotora_server::{FrameDecoder, FrameError, InputFrame};
use eotora_states::SystemState;
use proptest::prelude::*;

fn state(slot: u64) -> SystemState {
    SystemState {
        slot,
        task_cycles: vec![1.0e8, 2.0e8],
        data_bits: vec![1.0e6, 2.0e6],
        spectral_efficiency: vec![vec![3.0, 2.0, 1.0], vec![1.5, 2.5, 3.5]],
        fronthaul_efficiency: vec![4.0, 4.0, 4.0],
        price_per_kwh: 0.11,
    }
}

/// Arbitrary text lines, including JSON punctuation, control characters,
/// and non-ASCII codepoints (surrogates are filtered by `char::from_u32`).
fn garbage_line() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x2500, 0..60)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..Default::default() })]

    /// Arbitrary lines never panic, and the line cursor advances by
    /// exactly one per call.
    #[test]
    fn arbitrary_lines_never_panic_or_desync(lines in prop::collection::vec(garbage_line(), 1..16)) {
        let mut dec = FrameDecoder::new(2, 3);
        for (i, line) in lines.iter().enumerate() {
            let _ = dec.decode_line(line);
            prop_assert_eq!(dec.line(), i as u64 + 1);
        }
        // After any amount of garbage, a valid state still decodes — the
        // decoder has no internal parse state to corrupt.
        let good = serde_json::to_string(&state(7)).expect("serializes");
        match dec.decode_line(&good) {
            Ok(Some(InputFrame::State(s))) => prop_assert_eq!(s.slot, 7),
            other => return Err(TestCaseError::fail(format!("valid state rejected: {other:?}"))),
        }
    }

    /// Every strict prefix of a valid state line is rejected with a
    /// typed error (truncation can never be silently accepted or panic).
    #[test]
    fn truncated_states_yield_typed_errors(slot in 0u64..1000, frac in 0.0f64..1.0) {
        let full = serde_json::to_string(&state(slot)).expect("serializes");
        let cut = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        let mut dec = FrameDecoder::new(2, 3);
        match dec.decode_line(&full[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix may be a blank line"),
            Ok(Some(frame)) => {
                return Err(TestCaseError::fail(format!(
                    "truncated line decoded as {frame:?}"
                )))
            }
            Err(e) => prop_assert_eq!(e.kind(), "json"),
        }
        prop_assert_eq!(dec.line(), 1);
    }

    /// A non-finite scalar anywhere in the state is rejected as a typed
    /// error: either the parser refuses the overflow literal outright or
    /// the validator names the field.
    #[test]
    fn non_finite_values_are_rejected(which in 0usize..4, magnitude in 400i32..9000) {
        let mut s = state(0);
        let huge = format!("1e{magnitude}"); // overflows f64 to +inf
        let field = ["task_cycles", "data_bits", "fronthaul_efficiency", "price_per_kwh"][which];
        let line = match which {
            0 => serde_json::to_string(&s).unwrap().replacen("100000000.0", &huge, 1),
            1 => serde_json::to_string(&s).unwrap().replacen("1000000.0", &huge, 1),
            2 => serde_json::to_string(&s).unwrap().replacen("4.0,", &format!("{huge},"), 1),
            _ => {
                s.price_per_kwh = 0.25;
                serde_json::to_string(&s).unwrap().replace("0.25", &huge)
            }
        };
        let mut dec = FrameDecoder::new(2, 3);
        match dec.decode_line(&line) {
            Err(FrameError::NonFinite { field: got, .. }) => prop_assert_eq!(got, field),
            Err(FrameError::Json { .. }) => {} // parser may reject the overflow itself
            other => {
                return Err(TestCaseError::fail(format!(
                    "non-finite {field} accepted: {other:?}"
                )))
            }
        }
    }

    /// Wrong vector dimensions are always shape errors, whatever the
    /// sizes are.
    #[test]
    fn wrong_dimensions_are_shape_errors(devices in 1usize..6, stations in 1usize..6) {
        if (devices, stations) == (2, 3) {
            return Ok(()); // the one matching shape — decodes fine
        }
        let mut dec = FrameDecoder::new(devices, stations);
        let line = serde_json::to_string(&state(0)).expect("serializes");
        match dec.decode_line(&line) {
            Err(FrameError::Shape { .. }) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "{devices}x{stations} accepted a 2x3 state: {other:?}"
                )))
            }
        }
    }

    /// The config TOML parser never panics on arbitrary input, and every
    /// error carries a line number within the input.
    #[test]
    fn toml_parser_never_panics(lines in prop::collection::vec(garbage_line(), 0..12)) {
        let text = lines.join("\n");
        if let Err(e) = eotora_server::toml::parse(&text) {
            let count = text.lines().count().max(1);
            prop_assert!(e.line >= 1 && e.line <= count, "line {} of {}", e.line, count);
        }
    }
}
