//! `eotora` — command-line front end for the workspace.
//!
//! ```text
//! eotora template [--devices N] [--seed S]        # print a scenario JSON template
//! eotora run <scenario.json> [--out results.json] [--csv prefix] [--trace t.jsonl]
//! eotora trace <t.jsonl>                          # analyse a recorded trace
//! eotora topology [--devices N] [--seed S]        # summarize the generated network
//! eotora sweep <scenario.json> --budgets 0.7,1.0,1.3
//! ```
//!
//! Scenario files are the serde form of [`eotora_sim::Scenario`]; `template`
//! emits a starting point. `run` prints a summary table and optionally
//! writes full per-slot series as JSON and/or CSV, plus a JSONL event trace
//! (`--trace`) that `eotora trace` turns into per-span latency quantiles, a
//! BDMA iteration histogram, and a queue-drift plot.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use eotora_cli::{
    ascii_bar, ascii_plot, flag_value, format_seconds, parse_flag, parse_float_list,
    require_flag_values,
};
use eotora_core::speculate::{PredictorKind, SpeculativeConfig};
use eotora_core::system::MecSystem;
use eotora_federation::{LinkFaultConfig, RebalancePolicy};
use eotora_obs::{
    HealthMonitor, HealthSample, HealthSummary, Recorder, TelemetryConfig, TelemetrySession,
};
use eotora_sim::durable::{
    resume_durable_traced, run_durable_robust_traced, run_durable_traced, DurabilityConfig,
    DurableRun,
};
use eotora_sim::report::{ascii_table, num, slot_csv};
use eotora_sim::runner::{
    robust_config, run, run_many, run_robust, run_robust_traced, run_speculative,
    run_speculative_traced, run_traced, SimulationResult,
};
use eotora_sim::scenario::Scenario;
use eotora_sim::{FederationConfig, FederationReport, FederationRun};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => cmd_template(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("states") => cmd_states(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("health") => cmd_health(&args[1..]),
        Some("topology") => cmd_topology(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("federate") => cmd_federate(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
eotora — energy-aware online task offloading (ICDCS'23 reproduction)

USAGE:
  eotora template [--devices N] [--seed S] [--islands K]
  eotora run <scenario.json> [--out results.json] [--csv prefix] [--svg prefix]
             [--trace trace.jsonl] [--jobs N] [--cold-start] [--bdma-eps X]
             [--shards auto|N]
             [--fault-trace faults.json] [--slot-deadline-ms MS] [--no-sanitize]
             [--speculate] [--spec-tolerance T] [--spec-predictor NAME] [--spec-period K]
             [--metrics-out m.jsonl|m.prom] [--metrics-every K]
             [--checkpoint-dir D] [--checkpoint-every K] [--fsync every-slot|every-K|os]
  eotora run --resume <checkpoint-dir> [--out ...] [--csv ...] [--svg ...]
             [--metrics-out ...] [--metrics-every K]
  eotora serve --config server.toml [--input states.jsonl|-] [--socket path.sock]
             # daemon: JSONL states in, JSONL decisions on stdout, events on
             # stderr; SIGTERM/SIGINT graceful shutdown, SIGHUP hot-reload,
             # auto-resume from the checkpoint dir on restart
  eotora states <scenario.json> [--slots N] [--from S]
             # dump the scenario's slot-state stream as `serve` input JSONL
  eotora trace <trace.jsonl>                # span quantiles, BDMA rounds, queue drift
  eotora health <metrics.jsonl|m.prom|trace.jsonl> [--v X] [--budget C]
  eotora topology [--devices N] [--seed S]
  eotora sweep <scenario.json> --budgets 0.7,1.0,1.3 [--jobs N]
  eotora compare [--devices N] [--seed S]   # one-slot P2-A algorithm shoot-out
  eotora federate [--regions N] [--devices N] [--horizon T] [--seed S]
             [--sync-every K] [--budget C] [--policy fixed|queue-proportional]
             [--floor X] [--link-faults faults.json] [--checkpoint-dir D]
             [--checkpoint-every K] [--fsync every-slot|every-K|os]
             [--kill-at-slot N] [--csv-dir D] [--out report.json]
             # N per-region controllers sharing one fleet budget C̄ over a
             # (possibly faulty) peer link; --standalone runs the regions
             # with no link at fixed equal shares instead
  eotora federate --resume <checkpoint-root> [--csv-dir D] [--out report.json]
";

fn cmd_template(args: &[String]) -> Result<(), String> {
    require_flag_values(args, &["--devices", "--seed", "--islands"])?;
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    // `--islands K` (K ≥ 1) switches to the scale-out island topology whose
    // resource graph separates into K components — the shape `run --shards`
    // exploits.
    let islands: usize = parse_flag(args, "--islands", 0)?;
    let scenario = if islands > 0 {
        Scenario::scale_up(devices, islands, seed)
    } else {
        Scenario::paper(devices, seed)
    };
    let json = serde_json::to_string_pretty(&scenario).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

/// Parses `--shards auto|N` into the solver's shard-count convention
/// (`0` = one shard per connected component).
fn parse_shards_flag(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--shards") {
        None => Ok(None),
        Some("auto") => Ok(Some(0)),
        Some(raw) => {
            let n: usize =
                raw.parse().map_err(|_| format!("--shards expects `auto` or N≥1, got `{raw}`"))?;
            if n == 0 {
                return Err("--shards 0 is not a shard count; use `auto`".into());
            }
            Ok(Some(n))
        }
    }
}

/// Applies `--jobs N` (if present) to the process-wide worker-pool default
/// that `run_many` and the sweep experiments size themselves by.
fn apply_jobs_flag(args: &[String]) -> Result<(), String> {
    if let Some(raw) = flag_value(args, "--jobs") {
        let jobs: usize =
            raw.parse().map_err(|_| format!("--jobs expects a positive integer, got `{raw}`"))?;
        if jobs == 0 {
            return Err("--jobs must be at least 1".into());
        }
        eotora_util::pool::set_default_workers(jobs);
    }
    Ok(())
}

fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// The always-printed one-line digest of a finished run. Counters from the
/// exported event families ([`eotora_obs::EXPORTED_COUNTER_FAMILIES`]) are
/// appended only when nonzero, so plain runs read exactly as before.
fn run_summary(result: &SimulationResult) -> String {
    let mut line = format!(
        "summary: {} slots | p95 slot solve {} | mean BDMA rounds {:.2} | final Q(t) {}",
        result.latency.len(),
        format_seconds(result.solve_time_quantile(0.95).unwrap_or(0.0)),
        result.mean_bdma_rounds,
        num(result.queue.last().unwrap_or(0.0)),
    );
    for (name, value) in &result.counters {
        if *value > 0 && eotora_obs::is_exported_counter(name) {
            line.push_str(&format!(" | {name} {value}"));
        }
    }
    line
}

/// Reconciles `--speculate` with `--checkpoint-dir`. Staged solves are not
/// journaled, so a durable run cannot replay them deterministically; rather
/// than reject the combination outright, the durable path wins and
/// speculation is dropped. Returns the (possibly cleared) speculative
/// config plus the warning to print when it was cleared.
fn reconcile_speculation(
    spec: Option<SpeculativeConfig>,
    durable: bool,
) -> (Option<SpeculativeConfig>, Option<&'static str>) {
    if durable && spec.is_some() {
        (
            None,
            Some(
                "warning: --speculate is ignored with --checkpoint-dir (staged solves are not \
                 journaled); running without speculation",
            ),
        )
    } else {
        (spec, None)
    }
}

/// Loads a JSON [`FaultSchedule`](eotora_core::fault::FaultSchedule) file
/// (the serde form: `{"events": [{"slot": 10, "action": {...}}, ...]}`).
fn load_fault_trace(path: &str) -> Result<eotora_core::fault::FaultSchedule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Builds the checkpointing configuration for `dir` from the `run` flags.
fn durability_config(args: &[String], dir: &str) -> Result<DurabilityConfig, String> {
    let mut cfg = DurabilityConfig::new(dir);
    cfg.checkpoint_every = parse_flag(args, "--checkpoint-every", cfg.checkpoint_every)?;
    if cfg.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if let Some(raw) = flag_value(args, "--fsync") {
        cfg.fsync = raw.parse().map_err(|e: String| format!("--fsync: {e}"))?;
    }
    if let Some(raw) = flag_value(args, "--kill-at-slot") {
        let slot: u64 =
            raw.parse().map_err(|_| format!("--kill-at-slot expects a slot index, got `{raw}`"))?;
        cfg.kill_at_slot = Some(slot);
    }
    Ok(cfg)
}

/// The `--metrics-out` / `--metrics-every` / `--no-sanitize` flag group.
struct MetricsFlags {
    out: Option<PathBuf>,
    every: u64,
    no_sanitize: bool,
}

impl MetricsFlags {
    fn parse(args: &[String]) -> Result<Self, String> {
        Ok(MetricsFlags {
            out: flag_value(args, "--metrics-out").map(PathBuf::from),
            every: parse_flag(args, "--metrics-every", 0)?,
            no_sanitize: args.iter().any(|a| a == "--no-sanitize"),
        })
    }

    /// Whether a live [`TelemetrySession`] should be attached at all.
    fn active(&self) -> bool {
        self.out.is_some() || self.no_sanitize
    }

    /// Builds the session. Postmortems land in the checkpoint directory
    /// when the run is durable, else next to the metrics file.
    fn session(&self, v: f64, budget: f64, checkpoint_dir: Option<&str>) -> TelemetrySession {
        let postmortem_dir = checkpoint_dir.map(PathBuf::from).or_else(|| {
            self.out.as_deref().map(|p| match p.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
                _ => PathBuf::from("."),
            })
        });
        TelemetrySession::new(TelemetryConfig {
            v,
            budget,
            metrics_out: self.out.clone(),
            metrics_every: self.every,
            postmortem_dir,
            ..TelemetryConfig::default()
        })
    }
}

/// Prints the health line and flushes the metrics sink of a finished
/// telemetry session.
fn finish_telemetry(telemetry: TelemetrySession) -> Result<(), String> {
    let postmortems = telemetry.postmortems();
    let out = telemetry.config().metrics_out.clone();
    let summary = telemetry.finish().map_err(|e| format!("metrics sink: {e}"))?;
    let mut line = format!(
        "health: {} (worst {}, {} transition(s))",
        summary.final_status, summary.worst, summary.transitions
    );
    if postmortems > 0 {
        line.push_str(&format!(" | postmortems {postmortems}"));
    }
    println!("{line}");
    if let Some(path) = out {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// `eotora run --resume <dir>`: picks a checkpointed run back up. The
/// manifest in the directory supplies the scenario and mode, so no scenario
/// file is given; output flags work as on a fresh `run`.
fn cmd_run_resume(args: &[String]) -> Result<(), String> {
    require_flag_values(
        args,
        &[
            "--resume",
            "--out",
            "--csv",
            "--svg",
            "--checkpoint-every",
            "--fsync",
            "--kill-at-slot",
            "--metrics-out",
            "--metrics-every",
        ],
    )?;
    let dir = flag_value(args, "--resume").ok_or("--resume requires a checkpoint directory")?;
    if flag_value(args, "--trace").is_some() {
        return Err("--trace cannot be combined with checkpointed runs".into());
    }
    if args.iter().any(|a| a == "--speculate") {
        return Err(
            "--speculate cannot be combined with --resume (the manifest fixes the mode)".into()
        );
    }
    let metrics = MetricsFlags::parse(args)?;
    if metrics.no_sanitize {
        return Err(
            "--no-sanitize cannot be combined with --resume (the manifest fixes the mode)".into()
        );
    }
    let cfg = durability_config(args, dir)?;
    // V and budget for the health rules come from the manifest's scenario.
    let manifest = eotora_sim::durable::read_manifest_in(Path::new(dir)).ok();
    let telemetry = metrics.active().then(|| {
        let (v, budget) = manifest
            .as_ref()
            .map(|m| (m.scenario.dpp.v, m.scenario.system.budget_per_slot))
            .unwrap_or((100.0, 1.0));
        metrics.session(v, budget, Some(dir))
    });
    eprintln!("resuming checkpointed run in {dir} …");
    let outcome = resume_durable_traced(&cfg, telemetry.as_ref().map(|t| t as &dyn Recorder))
        .map_err(|e| e.to_string())?;
    match outcome {
        DurableRun::Interrupted { slot } => {
            println!("interrupted after slot {slot}; resume with `eotora run --resume {dir}`");
            Ok(())
        }
        DurableRun::Completed(result) => {
            report_run(args, &result)?;
            if let Some(t) = telemetry {
                finish_telemetry(t)?;
            }
            Ok(())
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    if flag_value(args, "--resume").is_some() {
        return cmd_run_resume(args);
    }
    let path = args.first().ok_or("run requires a scenario file")?;
    require_flag_values(
        args,
        &[
            "--out",
            "--csv",
            "--trace",
            "--jobs",
            "--bdma-eps",
            "--shards",
            "--fault-trace",
            "--slot-deadline-ms",
            "--spec-tolerance",
            "--spec-predictor",
            "--spec-period",
            "--checkpoint-dir",
            "--checkpoint-every",
            "--fsync",
            "--kill-at-slot",
            "--metrics-out",
            "--metrics-every",
        ],
    )?;
    apply_jobs_flag(args)?;
    let mut scenario = load_scenario(path)?;
    // `--cold-start` pins the paper-faithful solver regardless of what the
    // scenario file's `start` field says (it is a presence flag — no value —
    // so it must stay out of `require_flag_values`); `--bdma-eps` overrides
    // the warm-mode early-termination threshold.
    if args.iter().any(|a| a == "--cold-start") {
        scenario.dpp.start = eotora_core::bdma::StartPolicy::Cold;
    }
    scenario.dpp.bdma_epsilon = parse_flag(args, "--bdma-eps", scenario.dpp.bdma_epsilon)?;
    // `--shards` switches the P2-A solve to the sharded CGBA engine
    // (decision-identical to the sequential solver on separable topologies,
    // and a safe no-op on dense ones — the partition pass refuses bad cuts).
    if let Some(shards) = parse_shards_flag(args)? {
        scenario = scenario.with_shards(shards);
    }
    eprintln!(
        "running `{}`: {} devices, {} slots, V={}, budget ${:.2}/slot, start {:?} …",
        scenario.label,
        scenario.system.topology.num_devices,
        scenario.horizon,
        scenario.dpp.v,
        scenario.system.budget_per_slot,
        scenario.dpp.start
    );
    // `--fault-trace` and/or `--slot-deadline-ms` switch to the robust slot
    // engine: failures are masked per slot, corrupt state is sanitized, and
    // each slot's solve honours the wall-clock deadline by returning its
    // best checkpointed incumbent.
    let fault_trace = flag_value(args, "--fault-trace").map(load_fault_trace).transpose()?;
    let deadline = match flag_value(args, "--slot-deadline-ms") {
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| format!("--slot-deadline-ms expects milliseconds, got `{raw}`"))?;
            Some(std::time::Duration::from_millis(ms))
        }
        None => None,
    };
    // `--speculate` switches to the speculative pipeline: a predicted
    // next-slot solve is staged in the inter-slot gap and adopted (or
    // repaired, or discarded) when the real state arrives. It reuses
    // `--slot-deadline-ms` as the staged solve's wall-clock budget, so a
    // deadline alone no longer implies the robust engine here.
    let speculate = args.iter().any(|a| a == "--speculate");
    let spec = if speculate {
        if fault_trace.is_some() {
            return Err("--speculate cannot be combined with --fault-trace".into());
        }
        let name = flag_value(args, "--spec-predictor").unwrap_or("last-value");
        let period: usize = parse_flag(args, "--spec-period", 24)?;
        let predictor = PredictorKind::parse(name, period).ok_or_else(|| {
            format!(
                "--spec-predictor expects last-value|periodic-price|markov-ewma|adversarial, \
                 got `{name}`"
            )
        })?;
        let tolerance: f64 = parse_flag(args, "--spec-tolerance", 0.0)?;
        if tolerance.is_nan() || tolerance < 0.0 {
            return Err("--spec-tolerance must be a number ≥ 0".into());
        }
        Some(SpeculativeConfig { predictor, tolerance, deadline, ..Default::default() })
    } else {
        for flag in ["--spec-tolerance", "--spec-predictor", "--spec-period"] {
            if flag_value(args, flag).is_some() {
                return Err(format!("{flag} requires --speculate"));
            }
        }
        None
    };
    // `--checkpoint-dir` and `--speculate` cannot coexist (staged solves are
    // not journaled); the durable path wins and speculation is dropped with
    // a warning rather than failing the whole run.
    let (spec, spec_warning) =
        reconcile_speculation(spec, flag_value(args, "--checkpoint-dir").is_some());
    if let Some(warning) = spec_warning {
        eprintln!("{warning}");
    }
    let robust_mode = fault_trace.is_some() || (deadline.is_some() && spec.is_none());
    let faults = fault_trace.unwrap_or_default();
    let metrics = MetricsFlags::parse(args)?;
    if metrics.no_sanitize && !robust_mode {
        return Err(
            "--no-sanitize requires robust mode (--fault-trace or --slot-deadline-ms)".into()
        );
    }
    let mut robust = robust_config(&scenario, deadline);
    robust.sanitize = !metrics.no_sanitize;
    if robust_mode {
        eprintln!(
            "robust mode: {} fault event(s), slot deadline {}{}",
            faults.events.len(),
            deadline.map_or("none".into(), |d| format!("{} ms", d.as_millis())),
            if metrics.no_sanitize { ", sanitizer OFF (diagnostic)" } else { "" },
        );
    }
    if let Some(sc) = spec.as_ref() {
        eprintln!(
            "speculative mode: predictor {:?}, tolerance {}, staged-solve deadline {}",
            sc.predictor,
            sc.tolerance,
            sc.deadline.map_or("none".into(), |d| format!("{} ms", d.as_millis())),
        );
    }
    let make_telemetry = |checkpoint_dir: Option<&str>| {
        metrics.active().then(|| {
            metrics.session(scenario.dpp.v, scenario.system.budget_per_slot, checkpoint_dir)
        })
    };
    // `--checkpoint-dir` makes the run durable: a write-ahead slot journal
    // plus periodic controller snapshots, resumable with `run --resume`.
    if let Some(dir) = flag_value(args, "--checkpoint-dir") {
        if flag_value(args, "--trace").is_some() {
            return Err("--trace cannot be combined with --checkpoint-dir".into());
        }
        if metrics.no_sanitize {
            return Err("--no-sanitize cannot be combined with --checkpoint-dir (the journal \
                        must stay replayable)"
                .into());
        }
        let cfg = durability_config(args, dir)?;
        let telemetry = make_telemetry(Some(dir));
        let tsink = telemetry.as_ref().map(|t| t as &dyn Recorder);
        let outcome = if robust_mode {
            run_durable_robust_traced(&scenario, &faults, deadline, &cfg, tsink)
        } else {
            run_durable_traced(&scenario, &cfg, tsink)
        }
        .map_err(|e| e.to_string())?;
        return match outcome {
            DurableRun::Interrupted { slot } => {
                println!("interrupted after slot {slot}; resume with `eotora run --resume {dir}`");
                Ok(())
            }
            DurableRun::Completed(result) => {
                report_run(args, &result)?;
                if let Some(t) = telemetry {
                    finish_telemetry(t)?;
                }
                Ok(())
            }
        };
    }
    let telemetry = make_telemetry(None);
    let result = match flag_value(args, "--trace") {
        Some(trace_path) => {
            let file = std::fs::File::create(trace_path)
                .map_err(|e| format!("cannot create {trace_path}: {e}"))?;
            let sink = eotora_obs::JsonlRecorder::new(std::io::BufWriter::new(file));
            let result = match telemetry.as_ref() {
                Some(t) => {
                    let tee = eotora_obs::TeeRecorder::new(t, &sink);
                    if let Some(sc) = spec.as_ref() {
                        run_speculative_traced(&scenario, sc, &tee)
                    } else if robust_mode {
                        run_robust_traced(&scenario, &faults, &robust, &tee)
                    } else {
                        run_traced(&scenario, &tee)
                    }
                }
                None => {
                    if let Some(sc) = spec.as_ref() {
                        run_speculative_traced(&scenario, sc, &sink)
                    } else if robust_mode {
                        run_robust_traced(&scenario, &faults, &robust, &sink)
                    } else {
                        run_traced(&scenario, &sink)
                    }
                }
            };
            let events = sink.records_written();
            sink.finish().map_err(|e| format!("cannot write {trace_path}: {e}"))?;
            eprintln!("wrote {trace_path} ({events} events)");
            result
        }
        None => match (telemetry.as_ref(), spec.as_ref()) {
            (Some(t), Some(sc)) => run_speculative_traced(&scenario, sc, t),
            (Some(t), None) => {
                if robust_mode {
                    run_robust_traced(&scenario, &faults, &robust, t)
                } else {
                    run_traced(&scenario, t)
                }
            }
            (None, Some(sc)) => run_speculative(&scenario, sc),
            (None, None) if robust_mode => run_robust(&scenario, &faults, &robust),
            (None, None) => run(&scenario),
        },
    };
    report_run(args, &result)?;
    if let Some(t) = telemetry {
        finish_telemetry(t)?;
    }
    Ok(())
}

/// `eotora serve`: the long-running controller daemon. Slot states arrive
/// as JSONL on stdin (default), a file/pipe (`--input`), or a Unix socket
/// (`--socket`); decision records go to stdout and the event/error stream
/// to stderr. SIGTERM/SIGINT trigger a graceful shutdown (journal synced,
/// snapshot written), SIGHUP re-reads `--config`, and a restart against the
/// same checkpoint directory resumes where the last run stopped.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    require_flag_values(args, &["--config", "--input", "--socket"])?;
    let config_path =
        flag_value(args, "--config").ok_or("serve requires --config <server.toml|json>")?;
    let config_path = PathBuf::from(config_path);
    let config = eotora_server::ServerConfig::load(&config_path).map_err(|e| e.to_string())?;
    let input = match (flag_value(args, "--socket"), flag_value(args, "--input")) {
        (Some(_), Some(_)) => return Err("--socket and --input are mutually exclusive".into()),
        (Some(sock), None) => {
            #[cfg(not(unix))]
            {
                let _ = sock;
                return Err("--socket is only supported on Unix platforms".into());
            }
            #[cfg(unix)]
            {
                // A leftover socket file from a previous run would make bind fail.
                let _ = std::fs::remove_file(sock);
                let listener = std::os::unix::net::UnixListener::bind(sock)
                    .map_err(|e| format!("cannot bind {sock}: {e}"))?;
                eprintln!("listening on {sock}");
                eotora_server::InputSource::UnixSocket(listener)
            }
        }
        (None, Some(path)) if path != "-" => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            eotora_server::InputSource::Reader(Box::new(std::io::BufReader::new(file)))
        }
        _ => eotora_server::InputSource::Reader(Box::new(std::io::stdin())),
    };
    let flags = eotora_server::SignalFlags::install();
    let mut stdout = std::io::stdout();
    let mut stderr = std::io::stderr();
    let summary =
        eotora_server::serve(config, Some(&config_path), input, &mut stdout, &mut stderr, &flags)
            .map_err(|e| e.to_string())?;
    if summary.interrupted {
        eprintln!(
            "killed after slot {}; restart `eotora serve` to resume",
            summary.slots_completed.saturating_sub(1)
        );
    } else {
        eprintln!(
            "served {} decision(s) over {} slot(s)",
            summary.decisions, summary.slots_completed
        );
    }
    Ok(())
}

/// `eotora states`: dumps a scenario's slot-state stream as the JSONL that
/// `eotora serve` consumes — one `SystemState` object per line. `--slots`
/// caps the count (default: the scenario horizon); `--from` starts later,
/// which is how a client replays its tail after a server restart.
fn cmd_states(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    let path = args.first().ok_or("states requires a scenario file")?;
    require_flag_values(args, &["--slots", "--from"])?;
    let scenario = load_scenario(path)?;
    let slots: u64 = parse_flag(args, "--slots", scenario.horizon)?;
    let from: u64 = parse_flag(args, "--from", 0)?;
    let system = MecSystem::random(&scenario.system, scenario.seed);
    let mut provider =
        eotora_states::StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for slot in from..slots {
        let state = provider.observe(slot, system.topology());
        let line = serde_json::to_string(&state).map_err(|e| e.to_string())?;
        writeln!(out, "{line}").map_err(|e| format!("cannot write states: {e}"))?;
    }
    out.flush().map_err(|e| format!("cannot write states: {e}"))?;
    Ok(())
}

/// Prints the end-of-run table and summary line, then writes whichever of
/// `--out` / `--svg` / `--csv` were requested.
fn report_run(args: &[String], result: &SimulationResult) -> Result<(), String> {
    let rows = vec![
        vec!["slots".into(), result.latency.len().to_string()],
        vec!["avg latency (s)".into(), num(result.average_latency)],
        vec!["tail latency, 48 slots (s)".into(), num(result.latency.tail_average(48))],
        vec!["avg energy cost ($)".into(), num(result.average_cost)],
        vec!["budget ($)".into(), num(result.budget)],
        vec![
            "within budget".into(),
            if result.budget_satisfied(0.05) { "yes" } else { "no (check horizon/V)" }.into(),
        ],
        vec!["final queue backlog".into(), num(result.queue.last().unwrap_or(0.0))],
        vec!["mean solve time (s)".into(), num(result.solve_time.time_average())],
        vec!["mean BDMA rounds used".into(), num(result.rounds_used.time_average())],
    ];
    println!("{}", ascii_table(&["metric", "value"], &rows));
    println!("{}", run_summary(result));

    if let Some(out) = flag_value(args, "--out") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if let Some(prefix) = flag_value(args, "--svg") {
        use eotora_sim::svg::{render_line_chart, SvgChart, SvgSeries};
        let as_points = |s: &eotora_util::series::TimeSeries| {
            s.values().iter().enumerate().map(|(t, &v)| (t as f64, v)).collect::<Vec<_>>()
        };
        for (name, title, ylabel, series) in [
            ("queue", "virtual-queue backlog Q(t)", "backlog", &result.queue),
            ("latency", "per-slot latency", "seconds", &result.latency),
            ("cost", "per-slot energy cost", "dollars", &result.cost),
        ] {
            let path = format!("{prefix}_{name}.svg");
            let svg = render_line_chart(
                &SvgChart {
                    title: title.into(),
                    x_label: "slot".into(),
                    y_label: ylabel.into(),
                    ..Default::default()
                },
                &[SvgSeries { label: result.label.clone(), points: as_points(series) }],
            );
            std::fs::write(&path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    if let Some(prefix) = flag_value(args, "--csv") {
        let path = format!("{prefix}_slots.csv");
        std::fs::write(&path, slot_csv(result)).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `eotora federate`: N per-region DPP controllers sharing one fleet
/// budget `C̄` over a (possibly faulty) peer link. With
/// `--checkpoint-dir` the whole federation is durable; `--resume` picks
/// a killed federation back up from its checkpoint root.
fn cmd_federate(args: &[String]) -> Result<(), String> {
    require_flag_values(
        args,
        &[
            "--regions",
            "--devices",
            "--horizon",
            "--seed",
            "--sync-every",
            "--budget",
            "--policy",
            "--floor",
            "--link-faults",
            "--checkpoint-dir",
            "--checkpoint-every",
            "--fsync",
            "--kill-at-slot",
            "--resume",
            "--csv-dir",
            "--out",
        ],
    )?;
    let standalone = args.iter().any(|a| a == "--standalone");
    if standalone {
        // Checked before any config or fault file is loaded, so the
        // conflict surfaces even when the named file does not exist.
        for flag in
            ["--link-faults", "--checkpoint-dir", "--checkpoint-every", "--fsync", "--kill-at-slot"]
        {
            if flag_value(args, flag).is_some() {
                return Err(format!(
                    "{flag} does not apply to --standalone (independent regions, no peer link)"
                ));
            }
        }
    }

    let (cfg, faults, root) = if let Some(dir) = flag_value(args, "--resume") {
        if standalone {
            return Err("--standalone cannot be combined with --resume".into());
        }
        for flag in [
            "--regions",
            "--devices",
            "--horizon",
            "--seed",
            "--sync-every",
            "--budget",
            "--policy",
            "--floor",
            "--link-faults",
            "--checkpoint-dir",
        ] {
            if flag_value(args, flag).is_some() {
                return Err(format!(
                    "{flag} cannot be combined with --resume (the manifest in the checkpoint \
                     root fixes it)"
                ));
            }
        }
        let manifest = eotora_sim::read_federation_manifest(Path::new(dir))
            .map_err(|e| format!("cannot resume from {dir}: {e}"))?;
        eprintln!("resuming federation in {dir} …");
        (manifest.config, manifest.faults, Some(dir.to_owned()))
    } else {
        let regions: u32 = parse_flag(args, "--regions", 3)?;
        let devices: usize = parse_flag(args, "--devices", 30)?;
        let seed: u64 = parse_flag(args, "--seed", 0)?;
        let mut cfg = FederationConfig::new(regions, devices, seed);
        let horizon = parse_flag(args, "--horizon", cfg.horizon)?;
        let sync_every = parse_flag(args, "--sync-every", cfg.sync_every)?;
        cfg = cfg.with_horizon(horizon).with_sync_every(sync_every);
        if let Some(raw) = flag_value(args, "--budget") {
            let budget: f64 =
                raw.parse().map_err(|_| format!("invalid value `{raw}` for --budget"))?;
            cfg = cfg.with_total_budget(budget);
        }
        cfg = cfg.with_policy(parse_policy_flags(args, regions)?);
        let faults = match flag_value(args, "--link-faults") {
            None => LinkFaultConfig::clean(),
            Some(path) => load_link_faults(path)?,
        };
        (cfg, faults, flag_value(args, "--checkpoint-dir").map(str::to_owned))
    };

    if standalone {
        let results = eotora_sim::run_standalone(&cfg);
        let shares = vec![cfg.equal_share(); results.len()];
        print_federation_table(&results, &shares);
        let fleet_cost: f64 = results.iter().map(|r| r.cost.time_average()).sum();
        println!(
            "standalone: {} independent region(s) at fixed share {} | fleet avg cost {} vs \
             budget {}",
            cfg.regions,
            num(cfg.equal_share()),
            num(fleet_cost),
            num(cfg.total_budget),
        );
        if let Some(out) = flag_value(args, "--out") {
            let json = serde_json::to_string_pretty(&results).map_err(|e| e.to_string())?;
            std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        return write_region_csvs(args, &results);
    }

    if root.is_none() {
        // Durability knobs without a checkpoint root would be silently
        // ignored — reject them so a mistyped invocation cannot look
        // durable while running purely in memory.
        for flag in ["--checkpoint-every", "--fsync", "--kill-at-slot"] {
            if flag_value(args, flag).is_some() {
                return Err(format!(
                    "{flag} requires a durable federation (add --checkpoint-dir, or --resume an \
                     existing root)"
                ));
            }
        }
    }
    let durability = match &root {
        Some(dir) => Some(durability_config(args, dir)?),
        None => None,
    };
    let outcome = eotora_sim::run_federation(&cfg, &faults, durability.as_ref())
        .map_err(|e| e.to_string())?;
    match outcome {
        FederationRun::Interrupted { slot } => {
            let dir = root.as_deref().unwrap_or(".");
            println!("interrupted after slot {slot}; resume with `eotora federate --resume {dir}`");
            Ok(())
        }
        FederationRun::Completed(report) => report_federation(args, &report),
    }
}

/// Parses `--policy` / `--floor` into a [`RebalancePolicy`] (default:
/// queue-proportional with the same floor `FederationConfig::new` picks).
fn parse_policy_flags(args: &[String], regions: u32) -> Result<RebalancePolicy, String> {
    let floor_flag = flag_value(args, "--floor");
    match flag_value(args, "--policy") {
        None | Some("queue-proportional") => {
            let floor = match floor_flag {
                None => 0.5 / f64::from(regions.max(1)),
                Some(raw) => {
                    raw.parse().map_err(|_| format!("invalid value `{raw}` for --floor"))?
                }
            };
            Ok(RebalancePolicy::QueueProportional { floor })
        }
        Some("fixed") => {
            if floor_flag.is_some() {
                return Err("--floor only applies to --policy queue-proportional".into());
            }
            Ok(RebalancePolicy::Fixed)
        }
        Some(other) => {
            Err(format!("--policy expects `fixed` or `queue-proportional`, got `{other}`"))
        }
    }
}

/// Loads a JSON [`LinkFaultConfig`] file. All fields are required —
/// `seed`, `drop_prob`, `dup_prob`, `delay_prob`, `max_delay_slots`,
/// `reorder_prob`, and `partitions` (a list of
/// `{"from_slot": A, "to_slot": B, "regions": [i, ...]}` windows).
fn load_link_faults(path: &str) -> Result<LinkFaultConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn print_federation_table(regions: &[SimulationResult], shares: &[f64]) {
    let rows: Vec<Vec<String>> = regions
        .iter()
        .zip(shares)
        .enumerate()
        .map(|(i, (region, share))| {
            vec![
                format!("region {i}"),
                region.latency.len().to_string(),
                num(region.average_latency),
                num(region.average_cost),
                num(*share),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["region", "slots", "avg latency (s)", "avg cost ($)", "final share"], &rows)
    );
}

/// Prints the fleet table/summary for a completed federated run and
/// writes `--out` / `--csv-dir` outputs.
fn report_federation(args: &[String], report: &FederationReport) -> Result<(), String> {
    print_federation_table(&report.regions, &report.final_shares);
    let tolerance = 0.05 * report.config.total_budget;
    println!(
        "fleet: avg cost {} vs budget {} — {}",
        num(report.fleet_average_cost),
        num(report.config.total_budget),
        if report.budget_satisfied(tolerance) {
            "within budget"
        } else {
            "over budget (check horizon/V)"
        },
    );
    let mut line = "federation:".to_owned();
    for (name, value) in &report.counters {
        if name.starts_with("fed.") {
            line.push_str(&format!(" {name} {value}"));
        }
    }
    println!("{line}");
    if let Some(out) = flag_value(args, "--out") {
        let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    write_region_csvs(args, &report.regions)
}

/// Writes one `region-<i>.csv` per region under `--csv-dir` (if given).
fn write_region_csvs(args: &[String], regions: &[SimulationResult]) -> Result<(), String> {
    let Some(dir) = flag_value(args, "--csv-dir") else {
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for (i, region) in regions.iter().enumerate() {
        let path = Path::new(dir).join(format!("region-{i}.csv"));
        std::fs::write(&path, slot_csv(region))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("trace requires a JSONL trace file")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let analysis = eotora_obs::TraceAnalysis::from_reader(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    if !analysis.malformed.is_empty() {
        eprintln!(
            "warning: {} malformed line(s), first at line {}: {}",
            analysis.malformed.len(),
            analysis.malformed[0].0,
            analysis.malformed[0].1
        );
    }
    println!("{path}: {} events over {} slots", analysis.records, analysis.slots);

    let span_rows: Vec<Vec<String>> = analysis
        .spans
        .iter()
        .map(|(name, h)| {
            let q = |q: f64| format_seconds(h.quantile(q).unwrap_or(0.0) / 1e9);
            vec![
                name.clone(),
                h.count().to_string(),
                q(0.50),
                q(0.95),
                q(0.99),
                format_seconds(h.sum() as f64 / 1e9),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["span", "count", "p50", "p95", "p99", "total"], &span_rows));

    if !analysis.counters.is_empty() {
        let rows: Vec<Vec<String>> =
            analysis.counters.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
        println!("{}", ascii_table(&["counter", "total"], &rows));
    }

    let rounds = &analysis.bdma_rounds_per_slot;
    if rounds.count() > 0 {
        let saved =
            analysis.counters.get(eotora_obs::COUNTER_BDMA_ROUNDS_SAVED).copied().unwrap_or(0);
        println!(
            "BDMA rounds_used per slot (mean {:.2}, max {}, {saved} saved by ε-termination):",
            rounds.mean().unwrap_or(0.0),
            rounds.max().unwrap_or(0)
        );
        let peak = rounds.nonzero_buckets().map(|(_, n)| n).max().unwrap_or(1) as f64;
        for (value, n) in rounds.nonzero_buckets() {
            println!("  {value:>4} | {:<40} {n}", ascii_bar(n as f64, peak, 40));
        }
        println!();
    }

    if !analysis.queue_by_slot.is_empty() {
        let queue: Vec<f64> = analysis.queue_by_slot.iter().map(|&(_, q)| q).collect();
        println!("virtual-queue backlog Q(t), {} slots:", queue.len());
        print!("{}", ascii_plot(&queue, 72, 12));
    }
    Ok(())
}

/// Plucks `key` out of a flat JSON object.
fn field<'v>(value: &'v serde_json::Value, key: &str) -> Option<&'v serde_json::Value> {
    match value {
        serde_json::Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// `eotora health <file>`: evaluates the health rules over a recorded run
/// artifact — a metrics snapshot file (JSONL from `--metrics-out m.jsonl`),
/// a Prometheus exposition (`--metrics-out m.prom`), or a full event trace
/// (`--trace t.jsonl`). V and budget default to the run's own `config_*`
/// gauges where the artifact carries them, else to `--v` / `--budget`.
fn cmd_health(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("health requires a metrics (.jsonl/.prom) or trace file")?;
    require_flag_values(args, &["--v", "--budget"])?;
    let v: f64 = parse_flag(args, "--v", 100.0)?;
    let budget: f64 = parse_flag(args, "--budget", 1.0)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = if path.ends_with(".prom") {
        health_from_prom(&text, v, budget)?
    } else {
        let first = text
            .lines()
            .find(|l| !l.trim().is_empty())
            .ok_or_else(|| format!("{path} is empty"))?;
        let value = serde_json::parse(first).map_err(|e| format!("{path} is not JSONL: {e}"))?;
        if field(&value, "type").is_some() {
            health_from_trace(&text, v, budget)?
        } else {
            health_from_snapshots(&text, v, budget)?
        }
    };
    let rows: Vec<Vec<String>> = summary
        .rules
        .iter()
        .map(|r| vec![r.name.to_string(), r.status.to_string(), r.worst.to_string(), num(r.value)])
        .collect();
    println!("{}", ascii_table(&["rule", "status", "worst", "value"], &rows));
    println!(
        "{path}: overall {} (worst {}, {} transition(s))",
        summary.final_status, summary.worst, summary.transitions
    );
    Ok(())
}

/// Whole-run assessment from a Prometheus text exposition: counters and
/// gauges are read back through the same name mapping the exposition was
/// written with, and the journal p99 is recovered from the cumulative
/// bucket series.
fn health_from_prom(text: &str, v_flag: f64, budget_flag: f64) -> Result<HealthSummary, String> {
    let mut values: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.contains('{') {
            continue;
        }
        let (name, value) =
            line.split_once(' ').ok_or_else(|| format!("malformed exposition line: `{line}`"))?;
        let value: f64 =
            value.trim().parse().map_err(|_| format!("bad sample value in `{line}`"))?;
        values.insert(name.to_owned(), value);
    }
    if values.is_empty() {
        return Err("no samples found in exposition".into());
    }
    let counter = |name: &str| {
        values.get(&format!("{}_total", eotora_obs::prometheus_name(name))).map_or(0, |&x| x as u64)
    };
    let gauge = |name: &str| values.get(&eotora_obs::prometheus_name(name)).copied();
    let v = gauge(eotora_obs::GAUGE_CONFIG_V).unwrap_or(v_flag);
    let budget = gauge(eotora_obs::GAUGE_CONFIG_BUDGET).unwrap_or(budget_flag);
    let totals = HealthSample {
        slot: counter(eotora_obs::COUNTER_SLOTS),
        queue: gauge(eotora_obs::GAUGE_QUEUE_BACKLOG).unwrap_or(0.0),
        avg_cost: gauge(eotora_obs::GAUGE_AVG_COST).unwrap_or(0.0),
        masked_resources: counter(eotora_obs::COUNTER_FAULT_MASKED_RESOURCES),
        substitutions: counter(eotora_obs::COUNTER_FAULT_STATE_SUBSTITUTIONS),
        deadline_expirations: counter(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS),
        escalations: counter(eotora_obs::COUNTER_ROBUST_SOLVE_ERRORS)
            + counter(eotora_obs::COUNTER_ROBUST_LIFEBOAT_DECISIONS)
            + counter(eotora_obs::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS),
        journal_p99_ms: prom_histogram_quantile(
            text,
            &format!("{}_ns", eotora_obs::prometheus_name(eotora_obs::SPAN_JOURNAL_APPEND)),
            0.99,
        )
        .map_or(0.0, |ns| ns / 1e6),
    };
    Ok(eotora_obs::health::assess_totals(v, budget, &totals))
}

/// Recovers a quantile from a Prometheus cumulative-bucket series
/// (`<prefix>_bucket{le="..."} <count>`). Returns the upper bound of the
/// first bucket whose cumulative count reaches the quantile.
fn prom_histogram_quantile(text: &str, prefix: &str, q: f64) -> Option<f64> {
    let marker = format!("{prefix}_bucket{{le=\"");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&marker) else { continue };
        let (le, rest) = rest.split_once('"')?;
        let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
        let cum: f64 = rest.strip_prefix("} ")?.trim().parse().ok()?;
        buckets.push((le, cum));
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let target = q * total;
    buckets.iter().find(|&&(_, cum)| cum >= target).map(|&(le, _)| le)
}

/// Builds a [`HealthSample`] from one metrics-snapshot JSON object
/// (the line format written by `run --metrics-out m.jsonl`).
fn snapshot_sample(value: &serde_json::Value) -> Result<HealthSample, String> {
    let counters = field(value, "counters").ok_or("snapshot line is missing `counters`")?;
    let gauges = field(value, "gauges").ok_or("snapshot line is missing `gauges`")?;
    let cget = |name: &str| {
        field(counters, name).and_then(serde_json::Value::as_f64).map_or(0, |x| x as u64)
    };
    let gget = |name: &str| field(gauges, name).and_then(serde_json::Value::as_f64);
    let journal_p99_ms = field(value, "spans")
        .and_then(|s| field(s, eotora_obs::SPAN_JOURNAL_APPEND))
        .and_then(|s| field(s, "p99_ns"))
        .and_then(serde_json::Value::as_f64)
        .map_or(0.0, |ns| ns / 1e6);
    Ok(HealthSample {
        slot: field(value, "slot").and_then(serde_json::Value::as_f64).map_or(0, |x| x as u64),
        queue: gget(eotora_obs::GAUGE_QUEUE_BACKLOG).unwrap_or(0.0),
        avg_cost: gget(eotora_obs::GAUGE_AVG_COST).unwrap_or(0.0),
        masked_resources: cget(eotora_obs::COUNTER_FAULT_MASKED_RESOURCES),
        substitutions: cget(eotora_obs::COUNTER_FAULT_STATE_SUBSTITUTIONS),
        deadline_expirations: cget(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS),
        escalations: cget(eotora_obs::COUNTER_ROBUST_SOLVE_ERRORS)
            + cget(eotora_obs::COUNTER_ROBUST_LIFEBOAT_DECISIONS)
            + cget(eotora_obs::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS),
        journal_p99_ms,
    })
}

/// Health over a metrics JSONL file. Multiple snapshots are replayed
/// through the hysteresis monitor; a single (final-only) snapshot falls
/// back to whole-run classification.
fn health_from_snapshots(
    text: &str,
    v_flag: f64,
    budget_flag: f64,
) -> Result<HealthSummary, String> {
    let mut v = v_flag;
    let mut budget = budget_flag;
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(gauges) = field(&value, "gauges") {
            v = field(gauges, eotora_obs::GAUGE_CONFIG_V)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(v);
            budget = field(gauges, eotora_obs::GAUGE_CONFIG_BUDGET)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(budget);
        }
        samples.push(snapshot_sample(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    match samples.as_slice() {
        [] => Err("no snapshots in file".into()),
        [only] => Ok(eotora_obs::health::assess_totals(v, budget, only)),
        many => {
            let mut monitor = HealthMonitor::paper_defaults(v, budget);
            for sample in many {
                monitor.observe(*sample);
            }
            Ok(monitor.summary())
        }
    }
}

/// Health by replaying a full `--trace` JSONL event stream slot by slot:
/// counter events maintain the cumulative totals, `journal.append` spans
/// feed the latency histogram, and each `slot` event closes one
/// [`HealthSample`].
fn health_from_trace(text: &str, v: f64, budget: f64) -> Result<HealthSummary, String> {
    let mut counters: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut journal = eotora_obs::Histogram::new();
    let mut monitor = HealthMonitor::paper_defaults(v, budget);
    let mut cost_sum = 0.0;
    let mut slots = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = serde_json::parse(line) else { continue };
        match field(&value, "type").and_then(serde_json::Value::as_str) {
            Some("counter") => {
                if let (Some(name), Some(total)) = (
                    field(&value, "name").and_then(serde_json::Value::as_str),
                    field(&value, "value").and_then(serde_json::Value::as_f64),
                ) {
                    counters.insert(name.to_owned(), total as u64);
                }
            }
            Some("span")
                if field(&value, "name").and_then(serde_json::Value::as_str)
                    == Some(eotora_obs::SPAN_JOURNAL_APPEND) =>
            {
                if let Some(nanos) = field(&value, "nanos").and_then(serde_json::Value::as_f64) {
                    journal.record(nanos as u64);
                }
            }
            Some("slot") => {
                let slot = field(&value, "slot")
                    .and_then(serde_json::Value::as_f64)
                    .map_or(0, |x| x as u64);
                cost_sum +=
                    field(&value, "cost").and_then(serde_json::Value::as_f64).unwrap_or(0.0);
                slots += 1;
                let cget = |name: &str| counters.get(name).copied().unwrap_or(0);
                monitor.observe(HealthSample {
                    slot,
                    queue: field(&value, "queue")
                        .and_then(serde_json::Value::as_f64)
                        .unwrap_or(0.0),
                    avg_cost: cost_sum / slots as f64,
                    masked_resources: cget(eotora_obs::COUNTER_FAULT_MASKED_RESOURCES),
                    substitutions: cget(eotora_obs::COUNTER_FAULT_STATE_SUBSTITUTIONS),
                    deadline_expirations: cget(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS),
                    escalations: cget(eotora_obs::COUNTER_ROBUST_SOLVE_ERRORS)
                        + cget(eotora_obs::COUNTER_ROBUST_LIFEBOAT_DECISIONS)
                        + cget(eotora_obs::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS),
                    journal_p99_ms: journal.quantile(0.99).map_or(0.0, |ns| ns / 1e6),
                });
            }
            _ => {}
        }
    }
    if slots == 0 {
        return Err("trace contains no slot events".into());
    }
    Ok(monitor.summary())
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let scenario = Scenario::paper(devices, seed);
    let system = MecSystem::random(&scenario.system, seed);
    let topo = system.topology();
    let mut rows = Vec::new();
    for k in topo.base_station_ids() {
        let bs = topo.base_station(k);
        rows.push(vec![
            k.to_string(),
            format!("{:.0} MHz", bs.access_bandwidth_hz / 1e6),
            format!("{:.2} GHz", bs.fronthaul_bandwidth_hz / 1e9),
            bs.linked_clusters.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("+"),
            topo.servers_reachable_from(k).len().to_string(),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["BS", "access BW", "fronthaul BW", "rooms", "reachable servers"], &rows)
    );
    println!(
        "{} rooms, {} servers ({} devices); fleet power {:.1}-{:.1} kW; budget ${:.2}/slot",
        topo.num_clusters(),
        topo.num_servers(),
        topo.num_devices(),
        system.fleet_power_watts(&system.min_frequencies()) / 1000.0,
        system.fleet_power_watts(&system.max_frequencies()) / 1000.0,
        system.budget_per_slot(),
    );
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    use eotora_sim::experiments::p2a_comparison::{p2a_comparison, P2aComparisonConfig};
    let devices: usize = parse_flag(args, "--devices", 60)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let config = P2aComparisonConfig {
        device_counts: vec![devices],
        trials: 3,
        seed,
        ..P2aComparisonConfig::paper()
    };
    eprintln!("comparing P2-A solvers at I={devices} (3 trials) …");
    let rows = p2a_comparison(&config);
    let r = &rows[0];
    let table = vec![
        vec!["CGBA(0)".to_string(), num(r.cgba.objective), num(r.cgba.time_s)],
        vec!["MCBA".to_string(), num(r.mcba.objective), num(r.mcba.time_s)],
        vec!["ROPT".to_string(), num(r.ropt.objective), num(r.ropt.time_s)],
        vec!["OPT (B&B)".to_string(), num(r.exact.objective), num(r.exact.time_s)],
    ];
    println!("{}", ascii_table(&["algorithm", "latency (s)", "time (s)"], &table));
    println!(
        "certified lower bound {} ({}% of trials proven optimal)",
        num(r.exact_lower_bound),
        (r.proven_fraction * 100.0) as u32
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sweep requires a scenario file")?;
    apply_jobs_flag(args)?;
    let base = load_scenario(path)?;
    let budgets =
        parse_float_list(flag_value(args, "--budgets").ok_or("sweep requires --budgets a,b,c")?)?;
    let scenarios: Vec<Scenario> = budgets
        .iter()
        .map(|&b| base.clone().with_budget(b).with_label(format!("{} C̄={b}", base.label)))
        .collect();
    eprintln!(
        "running {} scenarios on {} worker(s) …",
        scenarios.len(),
        eotora_util::pool::default_workers().min(scenarios.len().max(1))
    );
    let results = run_many(&scenarios);
    let rows: Vec<Vec<String>> = budgets
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            vec![
                num(b),
                num(r.latency.tail_average(48)),
                num(r.cost.tail_average(r.cost.len() / 2)),
                num(r.converged_queue(48)),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["budget $", "tail latency (s)", "converged cost ($)", "queue"], &rows)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculation_survives_without_checkpoint_dir() {
        let spec = Some(SpeculativeConfig::default());
        let (kept, warning) = reconcile_speculation(spec, false);
        assert!(kept.is_some());
        assert!(warning.is_none());
    }

    #[test]
    fn checkpoint_dir_downgrades_speculation_to_a_warning() {
        let spec = Some(SpeculativeConfig::default());
        let (kept, warning) = reconcile_speculation(spec, true);
        assert!(kept.is_none(), "speculation must be disabled for durable runs");
        let warning = warning.expect("dropping speculation must warn");
        assert!(warning.contains("--speculate"), "{warning}");
        assert!(warning.contains("--checkpoint-dir"), "{warning}");
    }

    #[test]
    fn durable_run_without_speculation_is_untouched() {
        let (kept, warning) = reconcile_speculation(None, true);
        assert!(kept.is_none());
        assert!(warning.is_none());
    }

    fn fed_args(extra: &[&str]) -> Vec<String> {
        let mut args = vec!["--regions", "2", "--devices", "4", "--horizon", "5"];
        args.extend_from_slice(extra);
        args.into_iter().map(str::to_owned).collect()
    }

    #[test]
    fn federate_rejects_durability_flags_without_a_checkpoint_root() {
        for flag in ["--kill-at-slot", "--checkpoint-every", "--fsync"] {
            let err = cmd_federate(&fed_args(&[flag, "3"]))
                .expect_err("durability flags without a root must not be silently ignored");
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("--checkpoint-dir"), "{err}");
        }
    }

    #[test]
    fn federate_standalone_rejects_durability_and_link_flags() {
        for flag in
            ["--link-faults", "--checkpoint-dir", "--checkpoint-every", "--fsync", "--kill-at-slot"]
        {
            let err = cmd_federate(&fed_args(&["--standalone", flag, "3"]))
                .expect_err("standalone must reject federation-only flags");
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("--standalone"), "{err}");
        }
    }
}
