//! `eotora` — command-line front end for the workspace.
//!
//! ```text
//! eotora template [--devices N] [--seed S]        # print a scenario JSON template
//! eotora run <scenario.json> [--out results.json] [--csv prefix] [--trace t.jsonl]
//! eotora trace <t.jsonl>                          # analyse a recorded trace
//! eotora topology [--devices N] [--seed S]        # summarize the generated network
//! eotora sweep <scenario.json> --budgets 0.7,1.0,1.3
//! ```
//!
//! Scenario files are the serde form of [`eotora_sim::Scenario`]; `template`
//! emits a starting point. `run` prints a summary table and optionally
//! writes full per-slot series as JSON and/or CSV, plus a JSONL event trace
//! (`--trace`) that `eotora trace` turns into per-span latency quantiles, a
//! BDMA iteration histogram, and a queue-drift plot.

use std::process::ExitCode;

use eotora_cli::{
    ascii_bar, ascii_plot, flag_value, format_seconds, parse_flag, parse_float_list,
    require_flag_values,
};
use eotora_core::system::MecSystem;
use eotora_sim::durable::{
    resume_durable, run_durable, run_durable_robust, DurabilityConfig, DurableRun,
};
use eotora_sim::report::{ascii_table, num, slot_csv};
use eotora_sim::runner::{
    robust_config, run, run_many, run_robust, run_robust_traced, run_traced, SimulationResult,
};
use eotora_sim::scenario::Scenario;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => cmd_template(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("topology") => cmd_topology(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
eotora — energy-aware online task offloading (ICDCS'23 reproduction)

USAGE:
  eotora template [--devices N] [--seed S]
  eotora run <scenario.json> [--out results.json] [--csv prefix] [--svg prefix]
             [--trace trace.jsonl] [--jobs N] [--cold-start] [--bdma-eps X]
             [--fault-trace faults.json] [--slot-deadline-ms MS]
             [--checkpoint-dir D] [--checkpoint-every K] [--fsync every-slot|every-K|os]
  eotora run --resume <checkpoint-dir> [--out ...] [--csv ...] [--svg ...]
  eotora trace <trace.jsonl>                # span quantiles, BDMA rounds, queue drift
  eotora topology [--devices N] [--seed S]
  eotora sweep <scenario.json> --budgets 0.7,1.0,1.3 [--jobs N]
  eotora compare [--devices N] [--seed S]   # one-slot P2-A algorithm shoot-out
";

fn cmd_template(args: &[String]) -> Result<(), String> {
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let scenario = Scenario::paper(devices, seed);
    let json = serde_json::to_string_pretty(&scenario).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

/// Applies `--jobs N` (if present) to the process-wide worker-pool default
/// that `run_many` and the sweep experiments size themselves by.
fn apply_jobs_flag(args: &[String]) -> Result<(), String> {
    if let Some(raw) = flag_value(args, "--jobs") {
        let jobs: usize =
            raw.parse().map_err(|_| format!("--jobs expects a positive integer, got `{raw}`"))?;
        if jobs == 0 {
            return Err("--jobs must be at least 1".into());
        }
        eotora_util::pool::set_default_workers(jobs);
    }
    Ok(())
}

fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// The always-printed one-line digest of a finished run. Fault, deadline,
/// and durability counters are appended only when nonzero, so plain runs
/// read exactly as before.
fn run_summary(result: &SimulationResult) -> String {
    let mut line = format!(
        "summary: {} slots | p95 slot solve {} | mean BDMA rounds {:.2} | final Q(t) {}",
        result.latency.len(),
        format_seconds(result.solve_time_quantile(0.95).unwrap_or(0.0)),
        result.mean_bdma_rounds,
        num(result.queue.last().unwrap_or(0.0)),
    );
    for (name, value) in &result.counters {
        if *value > 0
            && (name.starts_with("fault.")
                || name.starts_with("deadline.")
                || name.starts_with("durability."))
        {
            line.push_str(&format!(" | {name} {value}"));
        }
    }
    line
}

/// Loads a JSON [`FaultSchedule`](eotora_core::fault::FaultSchedule) file
/// (the serde form: `{"events": [{"slot": 10, "action": {...}}, ...]}`).
fn load_fault_trace(path: &str) -> Result<eotora_core::fault::FaultSchedule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Builds the checkpointing configuration for `dir` from the `run` flags.
fn durability_config(args: &[String], dir: &str) -> Result<DurabilityConfig, String> {
    let mut cfg = DurabilityConfig::new(dir);
    cfg.checkpoint_every = parse_flag(args, "--checkpoint-every", cfg.checkpoint_every)?;
    if cfg.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    if let Some(raw) = flag_value(args, "--fsync") {
        cfg.fsync = raw.parse().map_err(|e: String| format!("--fsync: {e}"))?;
    }
    if let Some(raw) = flag_value(args, "--kill-at-slot") {
        let slot: u64 =
            raw.parse().map_err(|_| format!("--kill-at-slot expects a slot index, got `{raw}`"))?;
        cfg.kill_at_slot = Some(slot);
    }
    Ok(cfg)
}

/// `eotora run --resume <dir>`: picks a checkpointed run back up. The
/// manifest in the directory supplies the scenario and mode, so no scenario
/// file is given; output flags work as on a fresh `run`.
fn cmd_run_resume(args: &[String]) -> Result<(), String> {
    require_flag_values(
        args,
        &["--resume", "--out", "--csv", "--svg", "--checkpoint-every", "--fsync", "--kill-at-slot"],
    )?;
    let dir = flag_value(args, "--resume").ok_or("--resume requires a checkpoint directory")?;
    if flag_value(args, "--trace").is_some() {
        return Err("--trace cannot be combined with checkpointed runs".into());
    }
    let cfg = durability_config(args, dir)?;
    eprintln!("resuming checkpointed run in {dir} …");
    match resume_durable(&cfg).map_err(|e| e.to_string())? {
        DurableRun::Interrupted { slot } => {
            println!("interrupted after slot {slot}; resume with `eotora run --resume {dir}`");
            Ok(())
        }
        DurableRun::Completed(result) => report_run(args, &result),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    if flag_value(args, "--resume").is_some() {
        return cmd_run_resume(args);
    }
    let path = args.first().ok_or("run requires a scenario file")?;
    require_flag_values(
        args,
        &[
            "--out",
            "--csv",
            "--trace",
            "--jobs",
            "--bdma-eps",
            "--fault-trace",
            "--slot-deadline-ms",
            "--checkpoint-dir",
            "--checkpoint-every",
            "--fsync",
            "--kill-at-slot",
        ],
    )?;
    apply_jobs_flag(args)?;
    let mut scenario = load_scenario(path)?;
    // `--cold-start` pins the paper-faithful solver regardless of what the
    // scenario file's `start` field says (it is a presence flag — no value —
    // so it must stay out of `require_flag_values`); `--bdma-eps` overrides
    // the warm-mode early-termination threshold.
    if args.iter().any(|a| a == "--cold-start") {
        scenario.dpp.start = eotora_core::bdma::StartPolicy::Cold;
    }
    scenario.dpp.bdma_epsilon = parse_flag(args, "--bdma-eps", scenario.dpp.bdma_epsilon)?;
    eprintln!(
        "running `{}`: {} devices, {} slots, V={}, budget ${:.2}/slot, start {:?} …",
        scenario.label,
        scenario.system.topology.num_devices,
        scenario.horizon,
        scenario.dpp.v,
        scenario.system.budget_per_slot,
        scenario.dpp.start
    );
    // `--fault-trace` and/or `--slot-deadline-ms` switch to the robust slot
    // engine: failures are masked per slot, corrupt state is sanitized, and
    // each slot's solve honours the wall-clock deadline by returning its
    // best checkpointed incumbent.
    let fault_trace = flag_value(args, "--fault-trace").map(load_fault_trace).transpose()?;
    let deadline = match flag_value(args, "--slot-deadline-ms") {
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| format!("--slot-deadline-ms expects milliseconds, got `{raw}`"))?;
            Some(std::time::Duration::from_millis(ms))
        }
        None => None,
    };
    let robust_mode = fault_trace.is_some() || deadline.is_some();
    let faults = fault_trace.unwrap_or_default();
    let robust = robust_config(&scenario, deadline);
    if robust_mode {
        eprintln!(
            "robust mode: {} fault event(s), slot deadline {}",
            faults.events.len(),
            deadline.map_or("none".into(), |d| format!("{} ms", d.as_millis())),
        );
    }
    // `--checkpoint-dir` makes the run durable: a write-ahead slot journal
    // plus periodic controller snapshots, resumable with `run --resume`.
    if let Some(dir) = flag_value(args, "--checkpoint-dir") {
        if flag_value(args, "--trace").is_some() {
            return Err("--trace cannot be combined with --checkpoint-dir".into());
        }
        let cfg = durability_config(args, dir)?;
        let outcome = if robust_mode {
            run_durable_robust(&scenario, &faults, deadline, &cfg)
        } else {
            run_durable(&scenario, &cfg)
        }
        .map_err(|e| e.to_string())?;
        return match outcome {
            DurableRun::Interrupted { slot } => {
                println!("interrupted after slot {slot}; resume with `eotora run --resume {dir}`");
                Ok(())
            }
            DurableRun::Completed(result) => report_run(args, &result),
        };
    }
    let result = match flag_value(args, "--trace") {
        Some(trace_path) => {
            let file = std::fs::File::create(trace_path)
                .map_err(|e| format!("cannot create {trace_path}: {e}"))?;
            let sink = eotora_obs::JsonlRecorder::new(std::io::BufWriter::new(file));
            let result = if robust_mode {
                run_robust_traced(&scenario, &faults, &robust, &sink)
            } else {
                run_traced(&scenario, &sink)
            };
            let events = sink.records_written();
            sink.finish().map_err(|e| format!("cannot write {trace_path}: {e}"))?;
            eprintln!("wrote {trace_path} ({events} events)");
            result
        }
        None if robust_mode => run_robust(&scenario, &faults, &robust),
        None => run(&scenario),
    };
    report_run(args, &result)
}

/// Prints the end-of-run table and summary line, then writes whichever of
/// `--out` / `--svg` / `--csv` were requested.
fn report_run(args: &[String], result: &SimulationResult) -> Result<(), String> {
    let rows = vec![
        vec!["slots".into(), result.latency.len().to_string()],
        vec!["avg latency (s)".into(), num(result.average_latency)],
        vec!["tail latency, 48 slots (s)".into(), num(result.latency.tail_average(48))],
        vec!["avg energy cost ($)".into(), num(result.average_cost)],
        vec!["budget ($)".into(), num(result.budget)],
        vec![
            "within budget".into(),
            if result.budget_satisfied(0.05) { "yes" } else { "no (check horizon/V)" }.into(),
        ],
        vec!["final queue backlog".into(), num(result.queue.last().unwrap_or(0.0))],
        vec!["mean solve time (s)".into(), num(result.solve_time.time_average())],
        vec!["mean BDMA rounds used".into(), num(result.rounds_used.time_average())],
    ];
    println!("{}", ascii_table(&["metric", "value"], &rows));
    println!("{}", run_summary(result));

    if let Some(out) = flag_value(args, "--out") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if let Some(prefix) = flag_value(args, "--svg") {
        use eotora_sim::svg::{render_line_chart, SvgChart, SvgSeries};
        let as_points = |s: &eotora_util::series::TimeSeries| {
            s.values().iter().enumerate().map(|(t, &v)| (t as f64, v)).collect::<Vec<_>>()
        };
        for (name, title, ylabel, series) in [
            ("queue", "virtual-queue backlog Q(t)", "backlog", &result.queue),
            ("latency", "per-slot latency", "seconds", &result.latency),
            ("cost", "per-slot energy cost", "dollars", &result.cost),
        ] {
            let path = format!("{prefix}_{name}.svg");
            let svg = render_line_chart(
                &SvgChart {
                    title: title.into(),
                    x_label: "slot".into(),
                    y_label: ylabel.into(),
                    ..Default::default()
                },
                &[SvgSeries { label: result.label.clone(), points: as_points(series) }],
            );
            std::fs::write(&path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    if let Some(prefix) = flag_value(args, "--csv") {
        let path = format!("{prefix}_slots.csv");
        std::fs::write(&path, slot_csv(result)).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("trace requires a JSONL trace file")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let analysis = eotora_obs::TraceAnalysis::from_reader(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    if !analysis.malformed.is_empty() {
        eprintln!(
            "warning: {} malformed line(s), first at line {}: {}",
            analysis.malformed.len(),
            analysis.malformed[0].0,
            analysis.malformed[0].1
        );
    }
    println!("{path}: {} events over {} slots", analysis.records, analysis.slots);

    let span_rows: Vec<Vec<String>> = analysis
        .spans
        .iter()
        .map(|(name, h)| {
            let q = |q: f64| format_seconds(h.quantile(q).unwrap_or(0.0) / 1e9);
            vec![
                name.clone(),
                h.count().to_string(),
                q(0.50),
                q(0.95),
                q(0.99),
                format_seconds(h.sum() as f64 / 1e9),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["span", "count", "p50", "p95", "p99", "total"], &span_rows));

    if !analysis.counters.is_empty() {
        let rows: Vec<Vec<String>> =
            analysis.counters.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
        println!("{}", ascii_table(&["counter", "total"], &rows));
    }

    let rounds = &analysis.bdma_rounds_per_slot;
    if rounds.count() > 0 {
        let saved =
            analysis.counters.get(eotora_obs::COUNTER_BDMA_ROUNDS_SAVED).copied().unwrap_or(0);
        println!(
            "BDMA rounds_used per slot (mean {:.2}, max {}, {saved} saved by ε-termination):",
            rounds.mean().unwrap_or(0.0),
            rounds.max().unwrap_or(0)
        );
        let peak = rounds.nonzero_buckets().map(|(_, n)| n).max().unwrap_or(1) as f64;
        for (value, n) in rounds.nonzero_buckets() {
            println!("  {value:>4} | {:<40} {n}", ascii_bar(n as f64, peak, 40));
        }
        println!();
    }

    if !analysis.queue_by_slot.is_empty() {
        let queue: Vec<f64> = analysis.queue_by_slot.iter().map(|&(_, q)| q).collect();
        println!("virtual-queue backlog Q(t), {} slots:", queue.len());
        print!("{}", ascii_plot(&queue, 72, 12));
    }
    Ok(())
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let scenario = Scenario::paper(devices, seed);
    let system = MecSystem::random(&scenario.system, seed);
    let topo = system.topology();
    let mut rows = Vec::new();
    for k in topo.base_station_ids() {
        let bs = topo.base_station(k);
        rows.push(vec![
            k.to_string(),
            format!("{:.0} MHz", bs.access_bandwidth_hz / 1e6),
            format!("{:.2} GHz", bs.fronthaul_bandwidth_hz / 1e9),
            bs.linked_clusters.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("+"),
            topo.servers_reachable_from(k).len().to_string(),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["BS", "access BW", "fronthaul BW", "rooms", "reachable servers"], &rows)
    );
    println!(
        "{} rooms, {} servers ({} devices); fleet power {:.1}-{:.1} kW; budget ${:.2}/slot",
        topo.num_clusters(),
        topo.num_servers(),
        topo.num_devices(),
        system.fleet_power_watts(&system.min_frequencies()) / 1000.0,
        system.fleet_power_watts(&system.max_frequencies()) / 1000.0,
        system.budget_per_slot(),
    );
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    use eotora_sim::experiments::p2a_comparison::{p2a_comparison, P2aComparisonConfig};
    let devices: usize = parse_flag(args, "--devices", 60)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let config = P2aComparisonConfig {
        device_counts: vec![devices],
        trials: 3,
        seed,
        ..P2aComparisonConfig::paper()
    };
    eprintln!("comparing P2-A solvers at I={devices} (3 trials) …");
    let rows = p2a_comparison(&config);
    let r = &rows[0];
    let table = vec![
        vec!["CGBA(0)".to_string(), num(r.cgba.objective), num(r.cgba.time_s)],
        vec!["MCBA".to_string(), num(r.mcba.objective), num(r.mcba.time_s)],
        vec!["ROPT".to_string(), num(r.ropt.objective), num(r.ropt.time_s)],
        vec!["OPT (B&B)".to_string(), num(r.exact.objective), num(r.exact.time_s)],
    ];
    println!("{}", ascii_table(&["algorithm", "latency (s)", "time (s)"], &table));
    println!(
        "certified lower bound {} ({}% of trials proven optimal)",
        num(r.exact_lower_bound),
        (r.proven_fraction * 100.0) as u32
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sweep requires a scenario file")?;
    apply_jobs_flag(args)?;
    let base = load_scenario(path)?;
    let budgets =
        parse_float_list(flag_value(args, "--budgets").ok_or("sweep requires --budgets a,b,c")?)?;
    let scenarios: Vec<Scenario> = budgets
        .iter()
        .map(|&b| base.clone().with_budget(b).with_label(format!("{} C̄={b}", base.label)))
        .collect();
    eprintln!(
        "running {} scenarios on {} worker(s) …",
        scenarios.len(),
        eotora_util::pool::default_workers().min(scenarios.len().max(1))
    );
    let results = run_many(&scenarios);
    let rows: Vec<Vec<String>> = budgets
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            vec![
                num(b),
                num(r.latency.tail_average(48)),
                num(r.cost.tail_average(r.cost.len() / 2)),
                num(r.converged_queue(48)),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["budget $", "tail latency (s)", "converged cost ($)", "queue"], &rows)
    );
    Ok(())
}
