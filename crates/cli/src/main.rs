//! `eotora` — command-line front end for the workspace.
//!
//! ```text
//! eotora template [--devices N] [--seed S]        # print a scenario JSON template
//! eotora run <scenario.json> [--out results.json] [--csv prefix]
//! eotora topology [--devices N] [--seed S]        # summarize the generated network
//! eotora sweep <scenario.json> --budgets 0.7,1.0,1.3
//! ```
//!
//! Scenario files are the serde form of [`eotora_sim::Scenario`]; `template`
//! emits a starting point. `run` prints a summary table and optionally
//! writes full per-slot series as JSON and/or CSV.

use std::process::ExitCode;

use eotora_cli::{flag_value, parse_flag, parse_float_list};
use eotora_core::system::MecSystem;
use eotora_sim::report::{ascii_table, csv, num};
use eotora_sim::runner::{run, run_many};
use eotora_sim::scenario::Scenario;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => cmd_template(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("topology") => cmd_topology(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
eotora — energy-aware online task offloading (ICDCS'23 reproduction)

USAGE:
  eotora template [--devices N] [--seed S]
  eotora run <scenario.json> [--out results.json] [--csv prefix] [--svg prefix]
  eotora topology [--devices N] [--seed S]
  eotora sweep <scenario.json> --budgets 0.7,1.0,1.3
  eotora compare [--devices N] [--seed S]   # one-slot P2-A algorithm shoot-out
";

fn cmd_template(args: &[String]) -> Result<(), String> {
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let scenario = Scenario::paper(devices, seed);
    let json = serde_json::to_string_pretty(&scenario).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run requires a scenario file")?;
    let scenario = load_scenario(path)?;
    eprintln!(
        "running `{}`: {} devices, {} slots, V={}, budget ${:.2}/slot …",
        scenario.label,
        scenario.system.topology.num_devices,
        scenario.horizon,
        scenario.dpp.v,
        scenario.system.budget_per_slot
    );
    let result = run(&scenario);

    let rows = vec![
        vec!["slots".into(), result.latency.len().to_string()],
        vec!["avg latency (s)".into(), num(result.average_latency)],
        vec!["tail latency, 48 slots (s)".into(), num(result.latency.tail_average(48))],
        vec!["avg energy cost ($)".into(), num(result.average_cost)],
        vec!["budget ($)".into(), num(result.budget)],
        vec![
            "within budget".into(),
            if result.budget_satisfied(0.05) { "yes" } else { "no (check horizon/V)" }.into(),
        ],
        vec!["final queue backlog".into(), num(result.queue.last().unwrap_or(0.0))],
        vec!["mean solve time (s)".into(), num(result.solve_time.time_average())],
    ];
    println!("{}", ascii_table(&["metric", "value"], &rows));

    if let Some(out) = flag_value(args, "--out") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if let Some(prefix) = flag_value(args, "--svg") {
        use eotora_sim::svg::{render_line_chart, SvgChart, SvgSeries};
        let as_points = |s: &eotora_util::series::TimeSeries| {
            s.values().iter().enumerate().map(|(t, &v)| (t as f64, v)).collect::<Vec<_>>()
        };
        for (name, title, ylabel, series) in [
            ("queue", "virtual-queue backlog Q(t)", "backlog", &result.queue),
            ("latency", "per-slot latency", "seconds", &result.latency),
            ("cost", "per-slot energy cost", "dollars", &result.cost),
        ] {
            let path = format!("{prefix}_{name}.svg");
            let svg = render_line_chart(
                &SvgChart {
                    title: title.into(),
                    x_label: "slot".into(),
                    y_label: ylabel.into(),
                    ..Default::default()
                },
                &[SvgSeries { label: result.label.clone(), points: as_points(series) }],
            );
            std::fs::write(&path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    if let Some(prefix) = flag_value(args, "--csv") {
        let header = ["slot", "latency_s", "cost_usd", "queue", "price"];
        let rows: Vec<Vec<String>> = (0..result.latency.len())
            .map(|t| {
                vec![
                    t.to_string(),
                    result.latency.values()[t].to_string(),
                    result.cost.values()[t].to_string(),
                    result.queue.values()[t].to_string(),
                    result.price.values()[t].to_string(),
                ]
            })
            .collect();
        let path = format!("{prefix}_slots.csv");
        std::fs::write(&path, csv(&header, &rows)).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let devices: usize = parse_flag(args, "--devices", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let scenario = Scenario::paper(devices, seed);
    let system = MecSystem::random(&scenario.system, seed);
    let topo = system.topology();
    let mut rows = Vec::new();
    for k in topo.base_station_ids() {
        let bs = topo.base_station(k);
        rows.push(vec![
            k.to_string(),
            format!("{:.0} MHz", bs.access_bandwidth_hz / 1e6),
            format!("{:.2} GHz", bs.fronthaul_bandwidth_hz / 1e9),
            bs.linked_clusters.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("+"),
            topo.servers_reachable_from(k).len().to_string(),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["BS", "access BW", "fronthaul BW", "rooms", "reachable servers"], &rows)
    );
    println!(
        "{} rooms, {} servers ({} devices); fleet power {:.1}-{:.1} kW; budget ${:.2}/slot",
        topo.num_clusters(),
        topo.num_servers(),
        topo.num_devices(),
        system.fleet_power_watts(&system.min_frequencies()) / 1000.0,
        system.fleet_power_watts(&system.max_frequencies()) / 1000.0,
        system.budget_per_slot(),
    );
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    use eotora_sim::experiments::p2a_comparison::{p2a_comparison, P2aComparisonConfig};
    let devices: usize = parse_flag(args, "--devices", 60)?;
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let config = P2aComparisonConfig {
        device_counts: vec![devices],
        trials: 3,
        seed,
        ..P2aComparisonConfig::paper()
    };
    eprintln!("comparing P2-A solvers at I={devices} (3 trials) …");
    let rows = p2a_comparison(&config);
    let r = &rows[0];
    let table = vec![
        vec!["CGBA(0)".to_string(), num(r.cgba.objective), num(r.cgba.time_s)],
        vec!["MCBA".to_string(), num(r.mcba.objective), num(r.mcba.time_s)],
        vec!["ROPT".to_string(), num(r.ropt.objective), num(r.ropt.time_s)],
        vec!["OPT (B&B)".to_string(), num(r.exact.objective), num(r.exact.time_s)],
    ];
    println!("{}", ascii_table(&["algorithm", "latency (s)", "time (s)"], &table));
    println!(
        "certified lower bound {} ({}% of trials proven optimal)",
        num(r.exact_lower_bound),
        (r.proven_fraction * 100.0) as u32
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sweep requires a scenario file")?;
    let base = load_scenario(path)?;
    let budgets =
        parse_float_list(flag_value(args, "--budgets").ok_or("sweep requires --budgets a,b,c")?)?;
    let scenarios: Vec<Scenario> = budgets
        .iter()
        .map(|&b| base.clone().with_budget(b).with_label(format!("{} C̄={b}", base.label)))
        .collect();
    eprintln!("running {} scenarios in parallel …", scenarios.len());
    let results = run_many(&scenarios);
    let rows: Vec<Vec<String>> = budgets
        .iter()
        .zip(&results)
        .map(|(&b, r)| {
            vec![
                num(b),
                num(r.latency.tail_average(48)),
                num(r.cost.tail_average(r.cost.len() / 2)),
                num(r.converged_queue(48)),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["budget $", "tail latency (s)", "converged cost ($)", "queue"], &rows)
    );
    Ok(())
}
