//! Argument-parsing helpers for the `eotora` CLI binary.
//!
//! Kept in a library target so the parsing logic is unit-testable; the
//! binary in `main.rs` stays a thin command dispatcher.

/// Returns the value following `--flag` in `args`, if present.
///
/// # Examples
///
/// ```
/// use eotora_cli::flag_value;
///
/// let args = vec!["--devices".to_string(), "50".to_string()];
/// assert_eq!(flag_value(&args, "--devices"), Some("50"));
/// assert_eq!(flag_value(&args, "--seed"), None);
/// ```
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}

/// Parses `--flag value` into `T`, falling back to `default` when absent.
///
/// # Errors
///
/// Returns a message naming the flag when the value fails to parse.
///
/// # Examples
///
/// ```
/// use eotora_cli::parse_flag;
///
/// let args: Vec<String> = vec!["--seed".into(), "7".into()];
/// assert_eq!(parse_flag(&args, "--seed", 0u64), Ok(7));
/// assert_eq!(parse_flag(&args, "--devices", 100usize), Ok(100));
/// assert!(parse_flag::<u64>(&["--seed".into(), "x".into()], "--seed", 0).is_err());
/// ```
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value `{v}` for {flag}")),
    }
}

/// Parses a comma-separated list of floats (the `--budgets` argument).
///
/// # Errors
///
/// Returns a message naming the offending entry, or "empty list".
///
/// # Examples
///
/// ```
/// use eotora_cli::parse_float_list;
///
/// assert_eq!(parse_float_list("0.7, 1.0,1.3"), Ok(vec![0.7, 1.0, 1.3]));
/// assert!(parse_float_list("0.7,x").is_err());
/// assert!(parse_float_list("").is_err());
/// ```
pub fn parse_float_list(text: &str) -> Result<Vec<f64>, String> {
    let items: Vec<&str> = text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if items.is_empty() {
        return Err("empty list".into());
    }
    items
        .iter()
        .map(|s| s.parse().map_err(|_| format!("invalid number `{s}`")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_pairs() {
        let a = args(&["run", "file.json", "--out", "r.json", "--csv", "pre"]);
        assert_eq!(flag_value(&a, "--out"), Some("r.json"));
        assert_eq!(flag_value(&a, "--csv"), Some("pre"));
        assert_eq!(flag_value(&a, "--missing"), None);
    }

    #[test]
    fn flag_at_end_without_value_is_none() {
        let a = args(&["run", "--out"]);
        assert_eq!(flag_value(&a, "--out"), None);
    }

    #[test]
    fn parse_flag_default_and_error() {
        let a = args(&["--devices", "64"]);
        assert_eq!(parse_flag(&a, "--devices", 10usize), Ok(64));
        assert_eq!(parse_flag(&a, "--seed", 3u64), Ok(3));
        assert!(parse_flag::<usize>(&args(&["--devices", "-2"]), "--devices", 1).is_err());
    }

    #[test]
    fn float_list_handles_whitespace_and_errors() {
        assert_eq!(parse_float_list(" 1.0 ,2.5 "), Ok(vec![1.0, 2.5]));
        assert!(parse_float_list(",,").is_err());
        assert!(parse_float_list("1.0,,2.0").map(|v| v.len()) == Ok(2));
    }
}
