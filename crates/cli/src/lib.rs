//! Argument-parsing helpers for the `eotora` CLI binary.
//!
//! Kept in a library target so the parsing logic is unit-testable; the
//! binary in `main.rs` stays a thin command dispatcher.

/// Returns the value following `--flag` in `args`, if present.
///
/// # Examples
///
/// ```
/// use eotora_cli::flag_value;
///
/// let args = vec!["--devices".to_string(), "50".to_string()];
/// assert_eq!(flag_value(&args, "--devices"), Some("50"));
/// assert_eq!(flag_value(&args, "--seed"), None);
/// ```
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}

/// Rejects value-taking flags that appear without a value (e.g. a trailing
/// `--trace`), which `flag_value` would otherwise silently treat as absent.
///
/// # Errors
///
/// Returns a message naming the first dangling flag.
///
/// # Examples
///
/// ```
/// use eotora_cli::require_flag_values;
///
/// let ok = vec!["--trace".to_string(), "t.jsonl".to_string()];
/// assert!(require_flag_values(&ok, &["--trace"]).is_ok());
/// let dangling = vec!["run.json".to_string(), "--trace".to_string()];
/// assert!(require_flag_values(&dangling, &["--trace"]).is_err());
/// let eaten = vec!["--trace".to_string(), "--csv".to_string(), "out".to_string()];
/// assert!(require_flag_values(&eaten, &["--trace", "--csv"]).is_err());
/// ```
pub fn require_flag_values(args: &[String], flags: &[&str]) -> Result<(), String> {
    for flag in flags {
        for (idx, arg) in args.iter().enumerate() {
            if arg != flag {
                continue;
            }
            match args.get(idx + 1) {
                Some(value) if !value.starts_with("--") => {}
                _ => return Err(format!("{flag} requires a value")),
            }
        }
    }
    Ok(())
}

/// Parses `--flag value` into `T`, falling back to `default` when absent.
///
/// # Errors
///
/// Returns a message naming the flag when the value fails to parse.
///
/// # Examples
///
/// ```
/// use eotora_cli::parse_flag;
///
/// let args: Vec<String> = vec!["--seed".into(), "7".into()];
/// assert_eq!(parse_flag(&args, "--seed", 0u64), Ok(7));
/// assert_eq!(parse_flag(&args, "--devices", 100usize), Ok(100));
/// assert!(parse_flag::<u64>(&["--seed".into(), "x".into()], "--seed", 0).is_err());
/// ```
pub fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value `{v}` for {flag}")),
    }
}

/// Parses a comma-separated list of floats (the `--budgets` argument).
///
/// # Errors
///
/// Returns a message naming the offending entry, or "empty list".
///
/// # Examples
///
/// ```
/// use eotora_cli::parse_float_list;
///
/// assert_eq!(parse_float_list("0.7, 1.0,1.3"), Ok(vec![0.7, 1.0, 1.3]));
/// assert!(parse_float_list("0.7,x").is_err());
/// assert!(parse_float_list("").is_err());
/// ```
pub fn parse_float_list(text: &str) -> Result<Vec<f64>, String> {
    let items: Vec<&str> = text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if items.is_empty() {
        return Err("empty list".into());
    }
    items.iter().map(|s| s.parse().map_err(|_| format!("invalid number `{s}`"))).collect()
}

/// Formats a duration in seconds with an adaptive unit (ns/µs/ms/s), three
/// significant digits — for the `eotora trace` span table.
///
/// # Examples
///
/// ```
/// use eotora_cli::format_seconds;
///
/// assert_eq!(format_seconds(0.0), "0ns");
/// assert_eq!(format_seconds(4.2e-8), "42.0ns");
/// assert_eq!(format_seconds(0.00315), "3.15ms");
/// assert_eq!(format_seconds(12.5), "12.5s");
/// ```
pub fn format_seconds(seconds: f64) -> String {
    if seconds == 0.0 {
        return "0ns".into();
    }
    let (value, unit) = if seconds < 1e-6 {
        (seconds * 1e9, "ns")
    } else if seconds < 1e-3 {
        (seconds * 1e6, "µs")
    } else if seconds < 1.0 {
        (seconds * 1e3, "ms")
    } else {
        (seconds, "s")
    };
    let digits = if value >= 100.0 {
        0
    } else if value >= 10.0 {
        1
    } else {
        2
    };
    format!("{value:.digits$}{unit}")
}

/// A horizontal bar of `#`s, `width` characters at `max`, scaled linearly.
/// Non-zero values always get at least one character.
///
/// # Examples
///
/// ```
/// use eotora_cli::ascii_bar;
///
/// assert_eq!(ascii_bar(10.0, 10.0, 4), "####");
/// assert_eq!(ascii_bar(5.0, 10.0, 4), "##");
/// assert_eq!(ascii_bar(0.01, 10.0, 4), "#");
/// assert_eq!(ascii_bar(0.0, 10.0, 4), "");
/// ```
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if value <= 0.0 || max <= 0.0 || width == 0 {
        return String::new();
    }
    let chars = ((value / max) * width as f64).round() as usize;
    "#".repeat(chars.clamp(1, width))
}

/// Renders `values` as a `width`×`height` ASCII line plot (`*` marks, one
/// column per bucket of consecutive samples), with y-axis extremes labelled
/// — the queue-drift view of `eotora trace`.
pub fn ascii_plot(values: &[f64], width: usize, height: usize) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Downsample to `width` columns by averaging each chunk.
    let columns: Vec<f64> = (0..width.min(values.len()))
        .map(|c| {
            let lo = c * values.len() / width.min(values.len());
            let hi = ((c + 1) * values.len() / width.min(values.len())).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let min = columns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = columns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if max > min { max - min } else { 1.0 };
    let row_of = |v: f64| {
        let frac = (v - min) / span;
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; columns.len()]; height];
    for (c, &v) in columns.iter().enumerate() {
        grid[row_of(v)][c] = '*';
    }
    let label_width = 10;
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>label_width$.3}")
        } else if r == height - 1 {
            format!("{min:>label_width$.3}")
        } else {
            " ".repeat(label_width)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_width));
    out.push_str(" +");
    out.push_str(&"-".repeat(columns.len()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_pairs() {
        let a = args(&["run", "file.json", "--out", "r.json", "--csv", "pre"]);
        assert_eq!(flag_value(&a, "--out"), Some("r.json"));
        assert_eq!(flag_value(&a, "--csv"), Some("pre"));
        assert_eq!(flag_value(&a, "--missing"), None);
    }

    #[test]
    fn flag_at_end_without_value_is_none() {
        let a = args(&["run", "--out"]);
        assert_eq!(flag_value(&a, "--out"), None);
    }

    #[test]
    fn parse_flag_default_and_error() {
        let a = args(&["--devices", "64"]);
        assert_eq!(parse_flag(&a, "--devices", 10usize), Ok(64));
        assert_eq!(parse_flag(&a, "--seed", 3u64), Ok(3));
        assert!(parse_flag::<usize>(&args(&["--devices", "-2"]), "--devices", 1).is_err());
    }

    #[test]
    fn float_list_handles_whitespace_and_errors() {
        assert_eq!(parse_float_list(" 1.0 ,2.5 "), Ok(vec![1.0, 2.5]));
        assert!(parse_float_list(",,").is_err());
        assert!(parse_float_list("1.0,,2.0").map(|v| v.len()) == Ok(2));
    }

    #[test]
    fn format_seconds_picks_sane_units() {
        assert_eq!(format_seconds(1.5e-9), "1.50ns");
        assert_eq!(format_seconds(2.34e-6), "2.34µs");
        assert_eq!(format_seconds(0.25), "250ms");
        assert_eq!(format_seconds(3.0), "3.00s");
        assert_eq!(format_seconds(123.4), "123s");
    }

    #[test]
    fn plot_has_height_rows_plus_axis_and_marks_every_column() {
        let values: Vec<f64> = (0..40).map(|t| (t as f64 / 5.0).sin()).collect();
        let plot = ascii_plot(&values, 20, 6);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 7);
        let marks: usize = lines.iter().map(|l| l.matches('*').count()).sum();
        assert_eq!(marks, 20);
        assert!(lines[0].contains('.'), "max label on top row: {}", lines[0]);
        assert!(lines[5].contains('.'), "min label on bottom row: {}", lines[5]);
    }

    #[test]
    fn plot_of_constant_series_is_flat_and_finite() {
        let plot = ascii_plot(&[2.0; 10], 10, 4);
        assert!(plot.contains("**********"));
        assert!(!plot.contains("NaN") && !plot.contains("inf"));
    }

    #[test]
    fn plot_handles_fewer_values_than_width() {
        let plot = ascii_plot(&[1.0, 2.0, 3.0], 80, 5);
        let marks: usize = plot.matches('*').count();
        assert_eq!(marks, 3);
    }
}
