//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Four questions, each isolated with everything else held fixed:
//!
//! 1. [`bdma_rounds`] — how many BDMA alternation rounds `z` are worth it?
//!    (The paper fixes z = 5; Theorem 3 already holds at z = 1.)
//! 2. [`scheduling_rules`] — does the paper's max-gain player scheduling in
//!    CGBA beat a cheap round-robin scan?
//! 3. [`energy_families`] — does the controller behave sensibly across the
//!    energy-model families from the literature (quadratic \[7\]\[21\],
//!    linear \[8\], cubic DVFS), which the paper's "no presumed functional
//!    form" design explicitly allows?
//! 4. [`per_slot_vs_dpp`] — what does the *time-average* (vs per-slot)
//!    budget buy? This quantifies the core benefit of the Lyapunov design.

use std::sync::Arc;

use eotora_core::bdma::{solve_p2, BdmaConfig, CgbaSolver};
use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::per_slot::PerSlotController;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_energy::{CubicEnergy, EnergyModel, LinearEnergy};
use eotora_game::{CgbaConfig, SchedulingRule};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// One row of the BDMA-rounds ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BdmaRoundsRow {
    /// Alternation rounds `z`.
    pub rounds: usize,
    /// Mean P2 objective across trials.
    pub objective: f64,
}

/// Sweeps the BDMA round count `z` on a fixed slot problem. Each round
/// count is an independent, fully seeded job, so the sweep runs on the
/// bounded worker pool with results in round-count order.
pub fn bdma_rounds(devices: usize, trials: usize, seed: u64) -> Vec<BdmaRoundsRow> {
    let rounds_list = [1usize, 2, 3, 5, 8];
    eotora_util::pool::WorkerPool::with_default().map(&rounds_list, |&rounds| {
        let mut total = 0.0;
        for trial in 0..trials {
            let s = seed + trial as u64 * 37;
            let system = MecSystem::random(&SystemConfig::paper_defaults(devices), s);
            let mut states =
                StateProvider::paper(system.topology(), &PaperStateConfig::default(), s);
            let state = states.observe(0, system.topology());
            let mut solver = CgbaSolver::default();
            let mut rng = Pcg32::seed(s);
            let sol = solve_p2(
                &system,
                &state,
                100.0,
                20.0,
                &BdmaConfig { rounds, ..Default::default() },
                &mut solver,
                &mut rng,
            );
            total += sol.objective;
        }
        BdmaRoundsRow { rounds, objective: total / trials as f64 }
    })
}

/// One row of the CGBA-scheduling ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulingRow {
    /// Which rule ("max-gain" or "round-robin").
    pub rule: String,
    /// Mean converged objective.
    pub objective: f64,
    /// Mean best-response iterations to converge.
    pub iterations: f64,
}

/// Compares the paper's max-gain scheduling against round-robin. The two
/// rules are independent jobs on the bounded worker pool.
pub fn scheduling_rules(devices: usize, trials: usize, seed: u64) -> Vec<SchedulingRow> {
    let rules =
        [("max-gain", SchedulingRule::MaxGain), ("round-robin", SchedulingRule::RoundRobin)];
    eotora_util::pool::WorkerPool::with_default().map(&rules, |&(name, scheduling)| {
        let mut objective = 0.0;
        let mut iterations = 0.0;
        for trial in 0..trials {
            let s = seed + trial as u64 * 41;
            let system = MecSystem::random(&SystemConfig::paper_defaults(devices), s);
            let mut states =
                StateProvider::paper(system.topology(), &PaperStateConfig::default(), s);
            let state = states.observe(0, system.topology());
            let p2a =
                eotora_core::p2a::P2aProblem::build(&system, &state, &system.min_frequencies());
            let mut rng = Pcg32::seed(s);
            let cfg = CgbaConfig { scheduling, ..Default::default() };
            let report = p2a.solve_cgba(&cfg, &mut rng);
            assert!(report.converged);
            objective += report.total_cost;
            iterations += report.iterations as f64;
        }
        SchedulingRow {
            rule: name.to_string(),
            objective: objective / trials as f64,
            iterations: iterations / trials as f64,
        }
    })
}

/// One row of the energy-family ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyFamilyRow {
    /// Family name.
    pub family: String,
    /// Time-average latency over the run.
    pub average_latency: f64,
    /// Time-average energy cost over the run.
    pub average_cost: f64,
}

/// Runs the DPP controller under three convex energy families with matched
/// power at the frequency extremes, so differences come from curvature only.
pub fn energy_families(devices: usize, horizon: u64, seed: u64) -> Vec<EnergyFamilyRow> {
    // Matched endpoints per 4-core package: 27 W at 1.8 GHz, 78.5 W at 3.6 GHz.
    let (f_lo, f_hi, p_lo, p_hi) = (1.8, 3.6, 27.0, 78.5);
    let quadratic = eotora_energy::fit_i7_3770k();
    let slope = (p_hi - p_lo) / (f_hi - f_lo);
    let linear = LinearEnergy::new(slope, p_lo - slope * f_lo);
    let k = (p_hi - p_lo) / (f_hi * f_hi * f_hi - f_lo * f_lo * f_lo);
    let cubic = CubicEnergy::new(k, p_lo - k * f_lo * f_lo * f_lo);

    let families: Vec<(&str, Arc<dyn EnergyModel>)> = vec![
        ("quadratic (paper)", Arc::new(quadratic)),
        ("linear [8]", Arc::new(linear)),
        ("cubic DVFS", Arc::new(cubic)),
    ];

    // Each family is a full DPP run on its own system — independent, seeded
    // jobs for the bounded worker pool (results in family order).
    eotora_util::pool::WorkerPool::with_default().map(&families, |(name, base)| {
        let reference = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let topo = reference.topology().clone();
        let energy: Vec<Arc<dyn EnergyModel>> = topo
            .server_ids()
            .map(|n| {
                let scale = topo.server(n).cores as f64 / 4.0;
                Arc::new(ScaledArc { inner: base.clone(), scale }) as Arc<dyn EnergyModel>
            })
            .collect();
        let suitability: Vec<Vec<f64>> = (0..devices)
            .map(|i| {
                topo.server_ids()
                    .map(|n| reference.suitability(eotora_topology::DeviceId(i), n))
                    .collect()
            })
            .collect();
        let system = MecSystem::new(topo, energy, suitability, 1.0, 1.0);
        let mut states =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let mut dpp = EotoraDpp::new(
            system,
            DppConfig { v: 100.0, bdma_rounds: 1, seed, ..Default::default() },
        );
        for t in 0..horizon {
            let beta = states.observe(t, dpp.system().topology());
            dpp.step(&beta);
        }
        EnergyFamilyRow {
            family: name.to_string(),
            average_latency: dpp.average_latency(),
            average_cost: dpp.average_cost(),
        }
    })
}

/// `Arc`-sharing scale wrapper (the `eotora_energy::Scaled` owns a `Box`,
/// which cannot be cloned across the per-server fleet here).
#[derive(Debug)]
struct ScaledArc {
    inner: Arc<dyn EnergyModel>,
    scale: f64,
}

impl EnergyModel for ScaledArc {
    fn power_watts(&self, freq_hz: f64) -> f64 {
        self.scale * self.inner.power_watts(freq_hz)
    }
    fn power_derivative(&self, freq_hz: f64) -> f64 {
        self.scale * self.inner.power_derivative(freq_hz)
    }
}

/// Result of the per-slot-vs-DPP comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerSlotComparison {
    /// Time-average latency of the DPP controller.
    pub dpp_latency: f64,
    /// Time-average cost of the DPP controller.
    pub dpp_cost: f64,
    /// Time-average latency of the per-slot-budget controller.
    pub per_slot_latency: f64,
    /// Time-average cost of the per-slot-budget controller.
    pub per_slot_cost: f64,
    /// The shared budget in $/slot.
    pub budget: f64,
}

/// Compares DPP against the per-slot-budget controller at the same budget —
/// quantifying what time-averaging buys (the Lyapunov design's core value).
pub fn per_slot_vs_dpp(devices: usize, horizon: u64, budget: f64, seed: u64) -> PerSlotComparison {
    let system =
        MecSystem::random(&SystemConfig::paper_defaults(devices), seed).with_budget(budget);

    // The two controllers consume identically seeded (but independent)
    // state streams, so they are two jobs for the worker pool; index 0 is
    // per-slot, index 1 is DPP.
    let runs = eotora_util::pool::WorkerPool::with_default().map_indexed(2, |which| {
        let mut states =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        if which == 0 {
            let mut per_slot = PerSlotController::new(system.clone(), seed);
            for t in 0..horizon {
                let beta = states.observe(t, per_slot.system().topology());
                per_slot.step(&beta);
            }
            (per_slot.average_latency(), per_slot.average_cost())
        } else {
            let mut dpp = EotoraDpp::new(
                system.clone(),
                DppConfig { v: 100.0, bdma_rounds: 2, seed, ..Default::default() },
            );
            for t in 0..horizon {
                let beta = states.observe(t, dpp.system().topology());
                dpp.step(&beta);
            }
            (dpp.average_latency(), dpp.average_cost())
        }
    });
    PerSlotComparison {
        dpp_latency: runs[1].0,
        dpp_cost: runs[1].1,
        per_slot_latency: runs[0].0,
        per_slot_cost: runs[0].1,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdma_rounds_monotone_improvement() {
        let rows = bdma_rounds(10, 2, 111);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(
                w[1].objective <= w[0].objective + 1e-9,
                "objective should not worsen with more rounds: {rows:?}"
            );
        }
    }

    #[test]
    fn both_scheduling_rules_converge_to_similar_quality() {
        let rows = scheduling_rules(15, 3, 112);
        assert_eq!(rows.len(), 2);
        let (mg, rr) = (&rows[0], &rows[1]);
        // Equilibrium quality should be comparable (both are equilibria).
        assert!((mg.objective - rr.objective).abs() <= 0.10 * mg.objective);
        assert!(mg.iterations > 0.0 && rr.iterations > 0.0);
    }

    #[test]
    fn energy_families_all_meet_budget_and_order_by_curvature() {
        let rows = energy_families(8, 72, 113);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.average_cost <= 1.0 * 1.15, "{} cost {}", r.family, r.average_cost);
            assert!(r.average_latency > 0.0);
        }
    }

    #[test]
    fn dpp_beats_per_slot_budgeting() {
        let c = per_slot_vs_dpp(10, 72, 0.8, 114);
        assert!(c.per_slot_cost <= c.budget * (1.0 + 1e-6));
        assert!(c.dpp_cost <= c.budget * 1.15);
        assert!(
            c.dpp_latency < c.per_slot_latency,
            "DPP {} should beat per-slot {}",
            c.dpp_latency,
            c.per_slot_latency
        );
    }
}
