//! Fig. 9 — time-average latency and energy cost versus the budget `C̄`,
//! for BDMA-based, MCBA-based, and ROPT-based DPP.
//!
//! Paper shapes: BDMA-based DPP achieves the lowest latency at every budget;
//! all variants keep the average energy cost at or below the budget; larger
//! budgets buy lower latency (more frequency headroom).

use eotora_core::dpp::SolverKind;
use serde::{Deserialize, Serialize};

use crate::runner::{run_many, SimulationResult};
use crate::scenario::Scenario;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSweepConfig {
    /// Budgets `C̄` in $/slot.
    pub budgets: Vec<f64>,
    /// DPP variants to compare.
    pub solvers: Vec<SolverKind>,
    /// Number of devices `I`.
    pub devices: usize,
    /// Penalty weight `V`.
    pub v: f64,
    /// BDMA rounds `z`.
    pub bdma_rounds: usize,
    /// Horizon in slots.
    pub horizon: u64,
    /// Averaging window in slots (paper: 48).
    pub window: usize,
    /// Master seed.
    pub seed: u64,
}

impl BudgetSweepConfig {
    /// The paper's Fig. 9 setting (budgets spanning the binding region of
    /// the default fleet).
    pub fn paper() -> Self {
        Self {
            budgets: vec![0.7, 0.85, 1.0, 1.15, 1.3],
            solvers: vec![
                SolverKind::Cgba { lambda: 0.0 },
                SolverKind::Mcba { iterations: 5_000 },
                SolverKind::Ropt,
            ],
            devices: 100,
            v: 100.0,
            bdma_rounds: 5,
            horizon: 720,
            window: 48,
            seed: 99,
        }
    }

    /// A fast scaled-down sweep for tests.
    pub fn small() -> Self {
        Self {
            budgets: vec![0.7, 1.2],
            solvers: vec![SolverKind::Cgba { lambda: 0.0 }, SolverKind::Ropt],
            devices: 8,
            v: 60.0,
            bdma_rounds: 1,
            horizon: 96,
            window: 48,
            seed: 6,
        }
    }
}

/// One algorithm's metrics at one budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetPoint {
    /// Display name of the DPP variant.
    pub algorithm: String,
    /// Latency averaged over the final `window` slots.
    pub tail_latency: f64,
    /// Energy cost averaged over the second half of the run (the converged
    /// regime; the full-horizon average would still carry the queue-filling
    /// transient, which is bounded by `Q(T)/T` and vanishes as `T → ∞`).
    pub average_cost: f64,
}

/// One sweep row (fixed budget, all algorithms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSweepRow {
    /// The budget `C̄` in $/slot.
    pub budget: f64,
    /// Per-algorithm results, in `config.solvers` order.
    pub points: Vec<BudgetPoint>,
}

/// Runs the Fig. 9 sweep.
pub fn budget_sweep(config: &BudgetSweepConfig) -> Vec<BudgetSweepRow> {
    config
        .budgets
        .iter()
        .map(|&budget| {
            let scenarios: Vec<Scenario> = config
                .solvers
                .iter()
                .map(|&solver| {
                    Scenario::paper(config.devices, config.seed)
                        .with_budget(budget)
                        .with_v(config.v)
                        .with_horizon(config.horizon)
                        .with_bdma_rounds(config.bdma_rounds)
                        .with_solver(solver)
                        .with_label(solver.name())
                })
                .collect();
            let results: Vec<SimulationResult> = run_many(&scenarios);
            let points = config
                .solvers
                .iter()
                .zip(results)
                .map(|(&solver, r)| BudgetPoint {
                    algorithm: solver.name().to_string(),
                    tail_latency: r.latency.tail_average(config.window),
                    average_cost: r.cost.tail_average((config.horizon / 2) as usize),
                })
                .collect();
            BudgetSweepRow { budget, points }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdma_dominates_and_budget_holds() {
        let rows = budget_sweep(&BudgetSweepConfig::small());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let bdma = &row.points[0];
            let ropt = &row.points[1];
            assert_eq!(bdma.algorithm, "BDMA-based DPP");
            assert!(
                bdma.tail_latency < ropt.tail_latency,
                "BDMA should beat ROPT at C̄={}: {} vs {}",
                row.budget,
                bdma.tail_latency,
                ropt.tail_latency
            );
            // Average cost stays under budget up to the O(V/T) transient.
            assert!(
                bdma.average_cost <= row.budget * 1.10,
                "cost {} exceeds budget {}",
                bdma.average_cost,
                row.budget
            );
        }
    }

    #[test]
    fn larger_budget_means_lower_latency() {
        let rows = budget_sweep(&BudgetSweepConfig::small());
        let bdma = |r: &BudgetSweepRow| r.points[0].tail_latency;
        assert!(
            bdma(&rows[1]) <= bdma(&rows[0]) + 1e-6,
            "latency should fall as budget rises: {rows:?}"
        );
    }
}
