//! Fig. 6 — CGBA(λ) objective and convergence iterations versus λ.
//!
//! Paper shape: the number of best-response iterations to converge falls as
//! λ grows (the stopping condition loosens), while the objective stays close
//! to the λ = 0 value, degrading gracefully within the Theorem 2 bound.

use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_game::CgbaConfig;
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LambdaSweepConfig {
    /// λ values (paper: 0, 0.02, …, 0.12).
    pub lambdas: Vec<f64>,
    /// Number of devices `I` (paper: 100).
    pub devices: usize,
    /// Independent trials averaged per λ.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl LambdaSweepConfig {
    /// The paper's Fig. 6 setting.
    pub fn paper() -> Self {
        Self {
            lambdas: (0..=6).map(|i| i as f64 * 0.02).collect(),
            devices: 100,
            trials: 10,
            seed: 66,
        }
    }

    /// A fast scaled-down sweep for tests.
    pub fn small() -> Self {
        Self { lambdas: vec![0.0, 0.06, 0.12], devices: 20, trials: 4, seed: 5 }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LambdaSweepRow {
    /// The λ value.
    pub lambda: f64,
    /// Mean P2-A objective at convergence.
    pub objective: f64,
    /// Mean best-response iterations to converge.
    pub iterations: f64,
}

/// Runs the Fig. 6 sweep. All λ values share the same instances and initial
/// profiles (seed-aligned), isolating the effect of λ. The λ points are
/// independent (each trial reseeds its own RNG), so they run on the bounded
/// worker pool; results come back in `config.lambdas` order.
pub fn lambda_sweep(config: &LambdaSweepConfig) -> Vec<LambdaSweepRow> {
    let instances: Vec<P2aProblem> = (0..config.trials)
        .map(|trial| {
            let seed = config.seed + trial as u64 * 100;
            let system = MecSystem::random(&SystemConfig::paper_defaults(config.devices), seed);
            let mut states =
                StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
            let state = states.observe(0, system.topology());
            P2aProblem::build(&system, &state, &system.min_frequencies())
        })
        .collect();

    eotora_util::pool::WorkerPool::with_default().map(&config.lambdas, |&lambda| {
        let mut objective = 0.0;
        let mut iterations = 0.0;
        for (trial, p2a) in instances.iter().enumerate() {
            let mut rng = Pcg32::seed(config.seed + trial as u64);
            let cfg = CgbaConfig { lambda, ..Default::default() };
            let report = p2a.solve_cgba(&cfg, &mut rng);
            assert!(report.converged, "CGBA must converge");
            objective += report.total_cost;
            iterations += report.iterations as f64;
        }
        let n = config.trials as f64;
        LambdaSweepRow { lambda, objective: objective / n, iterations: iterations / n }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_fall_with_lambda() {
        let rows = lambda_sweep(&LambdaSweepConfig::small());
        assert_eq!(rows.len(), 3);
        assert!(
            rows.last().unwrap().iterations <= rows[0].iterations,
            "λ=0.12 should need no more iterations than λ=0: {rows:?}"
        );
    }

    #[test]
    fn objective_stays_within_theorem_band() {
        let rows = lambda_sweep(&LambdaSweepConfig::small());
        let base = rows[0].objective;
        for r in &rows {
            // Theorem 2's bound loosens from 2.62 to 2.62/(1−8λ); relative to
            // the λ=0 equilibrium we never see more than that widening.
            let bound = base * 2.62 / (1.0 - 8.0 * r.lambda);
            assert!(r.objective <= bound, "λ={} objective {} > {}", r.lambda, r.objective, bound);
        }
    }
}
