//! Federation chaos harness: shared-budget control vs link quality.
//!
//! Four arms run the *same* fleet (devices, seeds, horizon, budget):
//!
//! * **global** — one controller over the whole fleet with the whole
//!   budget: the coordination upper bound.
//! * **clean** — the federation over a perfect peer link.
//! * **lossy** — the federation under seeded drops, duplication, delay,
//!   and reordering.
//! * **partitioned** — the lossy link plus a scheduled full partition of
//!   one region for a contiguous slot window.
//!
//! Expected shape: zero panics everywhere; every arm holds the fleet
//! time-average budget within the `O(V/T)` transient; the clean arm drops
//! nothing; the partitioned arm walks the stale → partitioned → heal
//! ladder (non-zero `fed.partitions` and `fed.stale_epochs`) while the
//! cut-off region freezes on its applied share — degrading latency,
//! never feasibility (applied shares sum ≤ 1 even under asymmetric
//! loss, via the two-phase round protocol in `eotora-federation`).

use std::collections::BTreeMap;

use eotora_federation::{LinkFaultConfig, PartitionWindow};
use serde::{Deserialize, Serialize};

use crate::federation::{global_scenario, run_federation, FederationConfig, FederationRun};
use crate::runner::run;

/// One arm of the federation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationArm {
    /// "global", "clean", "lossy", or "partitioned".
    pub label: String,
    /// Fleet time-average energy cost ($/slot), from the per-slot series.
    pub fleet_average_cost: f64,
    /// Mean of the regions' time-average latencies (the global arm's own
    /// average latency for the baseline).
    pub fleet_average_latency: f64,
    /// Whether the fleet cost stayed within `budget_tolerance` of `C̄`.
    pub budget_satisfied: bool,
    /// Final per-region budget shares (empty for the global arm).
    pub final_shares: Vec<f64>,
    /// Monotonic counters summed across regions (`fed.*` included).
    pub counters: BTreeMap<String, u64>,
}

/// Result of the global-vs-federated link-quality comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationChaosReport {
    /// The fleet budget every arm ran against.
    pub total_budget: f64,
    /// Absolute budget tolerance used for the satisfaction verdicts.
    pub budget_tolerance: f64,
    /// Single global controller (coordination upper bound).
    pub global: FederationArm,
    /// Federation over a perfect link.
    pub clean: FederationArm,
    /// Federation under drops/duplication/delay/reordering.
    pub lossy: FederationArm,
    /// Lossy link plus a full partition window on one region.
    pub partitioned: FederationArm,
}

impl FederationChaosReport {
    /// The arms in report order, for table rendering.
    pub fn arms(&self) -> [&FederationArm; 4] {
        [&self.global, &self.clean, &self.lossy, &self.partitioned]
    }
}

fn federated_arm(
    label: &str,
    cfg: &FederationConfig,
    faults: &LinkFaultConfig,
    tolerance: f64,
) -> FederationArm {
    let report = match run_federation(cfg, faults, None) {
        Ok(FederationRun::Completed(report)) => report,
        Ok(FederationRun::Interrupted { slot }) => {
            unreachable!("non-durable federation cannot interrupt (slot {slot})")
        }
        Err(e) => unreachable!("non-durable federation cannot fail: {e}"),
    };
    FederationArm {
        label: label.to_owned(),
        fleet_average_cost: report.fleet_average_cost,
        fleet_average_latency: report.fleet_average_latency,
        budget_satisfied: report.budget_satisfied(tolerance),
        final_shares: report.final_shares.clone(),
        counters: report.counters.clone(),
    }
}

/// The scripted partition window the default report uses: the last region
/// cut off for the middle ~third of the run.
pub fn default_partition(cfg: &FederationConfig) -> PartitionWindow {
    PartitionWindow {
        from_slot: cfg.horizon / 4,
        to_slot: cfg.horizon / 4 + cfg.horizon * 2 / 5,
        regions: vec![cfg.regions - 1],
    }
}

/// Runs all four arms of the federation comparison. `budget_tolerance` is
/// the absolute slack on the fleet time-average budget check (absorbing
/// the `O(V/T)` transient of short horizons).
pub fn federation_report(cfg: &FederationConfig, budget_tolerance: f64) -> FederationChaosReport {
    let global_result = run(&global_scenario(cfg));
    let global = FederationArm {
        label: "global".to_owned(),
        fleet_average_cost: global_result.cost.time_average(),
        fleet_average_latency: global_result.average_latency,
        budget_satisfied: global_result.cost.time_average() <= cfg.total_budget + budget_tolerance,
        final_shares: Vec::new(),
        counters: global_result.counters.clone(),
    };
    let lossy = LinkFaultConfig::lossy(cfg.seed);
    let mut partitioned = LinkFaultConfig::lossy(cfg.seed);
    partitioned.partitions = vec![default_partition(cfg)];
    FederationChaosReport {
        total_budget: cfg.total_budget,
        budget_tolerance,
        global,
        clean: federated_arm("clean", cfg, &LinkFaultConfig::clean(), budget_tolerance),
        lossy: federated_arm("lossy", cfg, &lossy, budget_tolerance),
        partitioned: federated_arm("partitioned", cfg, &partitioned, budget_tolerance),
    }
}

/// The default federation chaos run: `regions` regions over `devices`
/// devices and `horizon` slots, queue-proportional shares, sync every 10
/// slots, with a 25%-of-budget tolerance on the satisfaction verdicts.
pub fn federation_default(
    regions: u32,
    devices: usize,
    horizon: u64,
    seed: u64,
) -> FederationChaosReport {
    let cfg = FederationConfig::new(regions, devices, seed).with_horizon(horizon);
    let tolerance = 0.25 * cfg.total_budget;
    federation_report(&cfg, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arms_hold_the_budget_and_the_ladder_fires() {
        let report = federation_default(3, 12, 60, 5);
        for arm in report.arms() {
            assert!(
                arm.budget_satisfied,
                "{} blew the budget: {}",
                arm.label, arm.fleet_average_cost
            );
            assert!(arm.fleet_average_latency.is_finite() && arm.fleet_average_latency > 0.0);
        }
        // Clean link: nothing dropped, no partitions.
        assert_eq!(report.clean.counters.get("fed.gossip_dropped").copied().unwrap_or(0), 0);
        assert_eq!(report.clean.counters.get("fed.partitions").copied().unwrap_or(0), 0);
        // Lossy link: drops observed, but no full partition.
        assert!(report.lossy.counters.get("fed.gossip_dropped").copied().unwrap_or(0) > 0);
        // Partitioned link: the degradation ladder fired and healed.
        let p = &report.partitioned.counters;
        assert!(p.get("fed.partitions").copied().unwrap_or(0) > 0);
        assert!(p.get("fed.stale_epochs").copied().unwrap_or(0) > 0);
        assert!(p.get("fed.budget_rebalances").copied().unwrap_or(0) > 0);
        // The global arm is a plain run: no federation counters at all.
        assert!(!report.global.counters.keys().any(|k| k.starts_with("fed.")));
    }

    #[test]
    fn default_partition_window_sits_inside_the_run() {
        let cfg = FederationConfig::new(4, 16, 100).with_horizon(100);
        let w = default_partition(&cfg);
        assert!(w.from_slot < w.to_slot && w.to_slot < cfg.horizon);
        assert_eq!(w.regions, vec![3]);
    }
}
