//! Fig. 4 & 5 — P2-A objective and wall-clock comparison:
//! CGBA(0) vs ROPT vs MCBA vs the exact optimum.
//!
//! Paper shapes: CGBA(0) is near-optimal (~1.02× OPT) and below MCBA and
//! ROPT; CGBA runs orders of magnitude faster than the exact solver, whose
//! time (like MCBA's) grows with `I`; ROPT's time is negligible and flat.

use std::time::Instant;

use eotora_core::baselines::{ExactSolver, McbaSolver, RoptSolver};
use eotora_core::bdma::{CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2aComparisonConfig {
    /// Device counts to sweep (paper: 80, 90, …, 120).
    pub device_counts: Vec<usize>,
    /// Independent trials averaged per point.
    pub trials: usize,
    /// MCBA proposal steps per solve, per device (total = this × I, so the
    /// sampler's work grows with the instance as in the paper's Fig. 5).
    pub mcba_iterations_per_device: usize,
    /// Node budget for the exact solver (anytime incumbent + bound beyond).
    pub exact_node_budget: usize,
    /// Master seed.
    pub seed: u64,
}

impl P2aComparisonConfig {
    /// The paper's Fig. 4–5 sweep.
    ///
    /// The exact solver's node budget is kept modest: at I ≈ 100 no
    /// branch-and-bound (nor Gurobi, in reasonable time) proves optimality,
    /// so the run is anytime — warm-started at CGBA's solution, improving it
    /// when possible, and always reporting the certified lower bound.
    pub fn paper() -> Self {
        Self {
            device_counts: vec![80, 90, 100, 110, 120],
            trials: 3,
            mcba_iterations_per_device: 50,
            exact_node_budget: 2_000,
            seed: 2023,
        }
    }

    /// A fast scaled-down sweep for tests.
    pub fn small() -> Self {
        Self {
            device_counts: vec![8, 12],
            trials: 2,
            mcba_iterations_per_device: 50,
            exact_node_budget: 5_000,
            seed: 7,
        }
    }
}

/// Mean objective and wall time for one algorithm at one device count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoPoint {
    /// Mean P2-A objective (total latency `T_t`, seconds).
    pub objective: f64,
    /// Mean wall-clock solve time in seconds.
    pub time_s: f64,
}

/// One sweep point (fixed `I`), all algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2aComparisonRow {
    /// Number of devices `I`.
    pub devices: usize,
    /// CGBA(0).
    pub cgba: AlgoPoint,
    /// MCBA.
    pub mcba: AlgoPoint,
    /// ROPT.
    pub ropt: AlgoPoint,
    /// Exact branch-and-bound (warm-started; incumbent if budget-limited).
    pub exact: AlgoPoint,
    /// Mean certified lower bound from the exact solver.
    pub exact_lower_bound: f64,
    /// Fraction of trials where optimality was proven.
    pub proven_fraction: f64,
}

impl P2aComparisonRow {
    /// CGBA's mean ratio to the exact incumbent (the paper reports ~1.02).
    pub fn cgba_to_opt_ratio(&self) -> f64 {
        self.cgba.objective / self.exact.objective
    }
}

/// Runs the Fig. 4–5 sweep.
pub fn p2a_comparison(config: &P2aComparisonConfig) -> Vec<P2aComparisonRow> {
    config
        .device_counts
        .iter()
        .map(|&devices| {
            let mut acc = [(0.0, 0.0); 4]; // (objective, time) for cgba/mcba/ropt/exact
            let mut lb = 0.0;
            let mut proven = 0usize;
            for trial in 0..config.trials {
                let seed = config.seed + trial as u64 * 1_000;
                let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
                let mut states =
                    StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
                let state = states.observe(0, system.topology());
                let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());

                let mut timed = |solver: &mut dyn P2aSolver, slot: usize, rng_seed: u64| {
                    let mut rng = Pcg32::seed(rng_seed);
                    let started = Instant::now();
                    let choices = solver.solve(&p2a, &mut rng);
                    let elapsed = started.elapsed().as_secs_f64();
                    acc[slot].0 += p2a.total_latency(&choices);
                    acc[slot].1 += elapsed;
                    choices
                };
                let cgba_choices = timed(&mut CgbaSolver::default(), 0, seed + 1);
                timed(
                    &mut McbaSolver::with_iterations(config.mcba_iterations_per_device * devices),
                    1,
                    seed + 2,
                );
                timed(&mut RoptSolver, 2, seed + 3);

                // Warm-start the exact search with CGBA's solution (as one
                // would hand Gurobi a MIP start): OPT ≤ CGBA by construction.
                let exact = ExactSolver { node_budget: config.exact_node_budget, warm_start: true };
                let started = Instant::now();
                let report = exact.solve_with_report_from(&p2a, Some(&cgba_choices));
                acc[3].0 += report.latency;
                acc[3].1 += started.elapsed().as_secs_f64();
                lb += report.lower_bound;
                proven += usize::from(report.proven_optimal);
            }
            let n = config.trials as f64;
            let point = |i: usize| AlgoPoint { objective: acc[i].0 / n, time_s: acc[i].1 / n };
            P2aComparisonRow {
                devices,
                cgba: point(0),
                mcba: point(1),
                ropt: point(2),
                exact: point(3),
                exact_lower_bound: lb / n,
                proven_fraction: proven as f64 / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let rows = p2a_comparison(&P2aComparisonConfig::small());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Fig. 4 ordering: OPT ≤ CGBA ≤ MCBA ≤ ROPT at paper scale. On
            // these scaled-down instances MCMC can out-search a Nash
            // equilibrium (small profile space), so the CGBA-vs-MCBA leg is
            // asserted only at paper scale by the `figures` run; here both
            // must beat ROPT and respect the exact bounds.
            assert!(
                r.exact.objective <= r.cgba.objective + 1e-9,
                "exact > cgba at I={}",
                r.devices
            );
            assert!(r.cgba.objective < r.ropt.objective, "cgba >= ropt at I={}", r.devices);
            assert!(r.mcba.objective < r.ropt.objective, "mcba >= ropt at I={}", r.devices);
            // Theorem 2 bound with certified LB.
            assert!(r.cgba.objective <= 2.62 * r.exact_lower_bound * 1.0001 + 1e-9);
            assert!(r.cgba_to_opt_ratio() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn objectives_grow_with_devices() {
        let rows = p2a_comparison(&P2aComparisonConfig::small());
        assert!(rows[1].cgba.objective > rows[0].cgba.objective);
        assert!(rows[1].ropt.objective > rows[0].ropt.objective);
    }

    #[test]
    fn ropt_is_fastest() {
        let rows = p2a_comparison(&P2aComparisonConfig::small());
        for r in &rows {
            assert!(r.ropt.time_s <= r.cgba.time_s);
            assert!(r.ropt.time_s <= r.mcba.time_s);
        }
    }
}
