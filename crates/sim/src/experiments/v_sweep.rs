//! Fig. 8 — converged queue backlog and time-average latency versus `V`.
//!
//! Paper shape (and Theorem 4): the converged backlog grows roughly linearly
//! in `V` (`O(V)` queue), while the average latency decreases in `V`
//! (`O(1/V)` optimality gap).

use serde::{Deserialize, Serialize};

use crate::runner::{run_many, SimulationResult};
use crate::scenario::Scenario;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VSweepConfig {
    /// Penalty weights (paper: 10, 50, 100, 150, 200, 500).
    pub vs: Vec<f64>,
    /// Number of devices `I` (paper: 100).
    pub devices: usize,
    /// BDMA rounds `z`.
    pub bdma_rounds: usize,
    /// Horizon in slots.
    pub horizon: u64,
    /// Tail window (slots) for the converged-backlog estimate.
    pub tail_window: usize,
    /// Master seed.
    pub seed: u64,
}

impl VSweepConfig {
    /// The paper's Fig. 8 setting.
    pub fn paper() -> Self {
        Self {
            vs: vec![10.0, 50.0, 100.0, 150.0, 200.0, 500.0],
            devices: 100,
            bdma_rounds: 5,
            horizon: 480,
            tail_window: 96,
            seed: 88,
        }
    }

    /// A fast scaled-down sweep for tests.
    pub fn small() -> Self {
        Self {
            vs: vec![10.0, 60.0, 200.0],
            devices: 10,
            bdma_rounds: 1,
            horizon: 120,
            tail_window: 48,
            seed: 4,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VSweepRow {
    /// Penalty weight `V`.
    pub v: f64,
    /// Queue backlog averaged over the tail window.
    pub converged_queue: f64,
    /// Time-average latency over the whole run.
    pub average_latency: f64,
    /// Energy cost averaged over the converged second half of the run.
    pub average_cost: f64,
}

/// Runs the Fig. 8 sweep (runs are independent, so they execute in
/// parallel).
pub fn v_sweep(config: &VSweepConfig) -> Vec<VSweepRow> {
    let scenarios: Vec<Scenario> = config
        .vs
        .iter()
        .map(|&v| {
            Scenario::paper(config.devices, config.seed)
                .with_v(v)
                .with_horizon(config.horizon)
                .with_bdma_rounds(config.bdma_rounds)
                .with_label(format!("V={v}"))
        })
        .collect();
    let results: Vec<SimulationResult> = run_many(&scenarios);
    config
        .vs
        .iter()
        .zip(results)
        .map(|(&v, r)| VSweepRow {
            v,
            converged_queue: r.converged_queue(config.tail_window),
            average_latency: r.average_latency,
            average_cost: r.cost.tail_average((config.horizon / 2) as usize),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlog_grows_latency_falls() {
        let rows = v_sweep(&VSweepConfig::small());
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[1].converged_queue >= w[0].converged_queue,
                "backlog should be non-decreasing in V: {rows:?}"
            );
            assert!(
                w[1].average_latency <= w[0].average_latency + 1e-6,
                "latency should be non-increasing in V: {rows:?}"
            );
        }
    }

    #[test]
    fn backlog_roughly_linear_in_v() {
        let rows = v_sweep(&VSweepConfig::small());
        // Between V=10 and V=200 (20×) the backlog should scale by an order
        // of magnitude — linear up to constant slack (Fig. 8 left panel).
        let ratio = rows[2].converged_queue / rows[0].converged_queue.max(1e-9);
        assert!(ratio > 3.0, "expected near-linear growth, ratio {ratio}");
    }
}
