//! One harness per figure of the paper's evaluation (§VI).
//!
//! Every harness takes an explicit config (so tests run scaled-down
//! versions) and returns plain serializable data; rendering lives in
//! [`crate::report`] and the `eotora-bench` `figures` binary. The expected
//! qualitative shapes are documented per module and recorded against
//! measurements in EXPERIMENTS.md.
//!
//! | Module | Paper figure | Shape that must reproduce |
//! |---|---|---|
//! | [`traces`] | Fig. 2 | periodic non-iid price & workload traces |
//! | [`energy_fit`] | Fig. 3 | quadratic fit through i7 points; perturbed per-server curves |
//! | [`p2a_comparison`] | Fig. 4–5 | CGBA ≈ OPT ≪ MCBA < ROPT; CGBA ≫ faster than OPT |
//! | [`lambda_sweep`] | Fig. 6 | iterations fall as λ grows; objective stays near-optimal |
//! | [`queue_trace`] | Fig. 7 | Q(t) rises, converges, oscillates with price |
//! | [`v_sweep`] | Fig. 8 | backlog ~ linear in V; latency decreasing in V |
//! | [`budget_sweep`] | Fig. 9 | BDMA-DPP dominates; avg cost ≤ budget |
//! | [`ablations`] | (extensions) | BDMA rounds, CGBA scheduling, energy families, per-slot vs time-average budget |
//! | [`fairness`] | (extensions) | per-device Jain fairness of equilibria vs random placement |
//! | [`beta_only_gap`] | (theory check) | DPP vs the hindsight β-only policy of Lemma 2; O(1/V) gap |
//! | [`warm_ab`] | (extensions) | warm-started solves match cold control quality within 1% |
//! | [`speculation`] | (extensions) | speculative pre-solves are series-identical to plain runs; periodic states hit after one period |
//! | [`chaos`] | (robustness) | injected failures: bounded degradation, zero panics, feasible slots |
//! | [`federation`] | (robustness) | shared budget over an unreliable peer link: budget held on clean/lossy/partitioned links, degradation ladder fires and heals |

pub mod ablations;
pub mod beta_only_gap;
pub mod budget_sweep;
pub mod chaos;
pub mod energy_fit;
pub mod fairness;
pub mod federation;
pub mod lambda_sweep;
pub mod p2a_comparison;
pub mod queue_trace;
pub mod speculation;
pub mod traces;
pub mod v_sweep;
pub mod warm_ab;
