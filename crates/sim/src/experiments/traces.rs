//! Fig. 2 — the non-iid system-state traces (price and workload).
//!
//! The paper's Fig. 2 plots a real NYISO price trace and a YouTube
//! view-count trace to motivate the periodic-plus-iid state model. This
//! harness emits the same two series from the embedded shape-faithful
//! profiles (see DESIGN.md's substitution table).

use eotora_states::price::PriceModel;
use eotora_states::process::PeriodicProcess;
use eotora_states::profiles::DIURNAL_DEMAND_24H;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// The Fig. 2 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceData {
    /// Hour index per sample.
    pub hours: Vec<u64>,
    /// Electricity price `p_t` in $/kWh.
    pub price: Vec<f64>,
    /// Workload demand multiplier (dimensionless, mean ≈ 1).
    pub demand: Vec<f64>,
}

/// Generates `hours` hourly samples of the price and demand traces.
///
/// # Panics
///
/// Panics if `hours == 0`.
pub fn traces(hours: u64, noise_rel: f64, seed: u64) -> TraceData {
    assert!(hours > 0, "need at least one hour");
    let mut price = PriceModel::nyiso_like(24, noise_rel, Pcg32::seed_stream(seed, 1));
    let mut demand =
        PeriodicProcess::new(DIURNAL_DEMAND_24H.to_vec(), noise_rel, Pcg32::seed_stream(seed, 2));
    let hours_vec: Vec<u64> = (0..hours).collect();
    TraceData {
        price: hours_vec.iter().map(|&t| price.sample(t)).collect(),
        demand: hours_vec.iter().map(|&t| demand.sample(t)).collect(),
        hours: hours_vec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_lengths() {
        let t = traces(72, 0.05, 1);
        assert_eq!(t.hours.len(), 72);
        assert_eq!(t.price.len(), 72);
        assert_eq!(t.demand.len(), 72);
        assert!(t.price.iter().all(|&p| p > 0.0));
        assert!(t.demand.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn daily_periodicity_visible() {
        // Autocorrelation at lag 24 should dominate lag 12 for both series.
        let t = traces(24 * 30, 0.05, 2);
        let autocorr =
            |xs: &[f64], lag: usize| eotora_util::series::autocorrelation(xs, lag).unwrap();
        assert!(autocorr(&t.price, 24) > autocorr(&t.price, 12));
        assert!(autocorr(&t.demand, 24) > autocorr(&t.demand, 12));
        assert!(autocorr(&t.price, 24) > 0.5, "strong daily period expected");
    }

    #[test]
    fn peak_hours_exceed_night_hours() {
        let t = traces(24, 0.0, 3);
        assert!(t.price[17] > t.price[3]);
        assert!(t.demand[19] > t.demand[3]);
    }
}
