//! Per-device fairness of the equilibrium allocations (extension study).
//!
//! The paper optimizes *total* latency; a natural operator question is
//! whether the congestion-game equilibrium starves individual devices. This
//! harness measures Jain's index of per-device latencies under each DPP
//! variant. Expected outcome: the square-root proportional allocation of
//! Lemma 1 plus equilibrium load spreading yields high fairness for CGBA,
//! noticeably higher than random placement.

use eotora_core::dpp::SolverKind;
use serde::{Deserialize, Serialize};

use crate::runner::{run_many, SimulationResult};
use crate::scenario::Scenario;

/// Configuration of the fairness study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessConfig {
    /// DPP variants to compare.
    pub solvers: Vec<SolverKind>,
    /// Number of devices `I`.
    pub devices: usize,
    /// Horizon in slots.
    pub horizon: u64,
    /// Master seed.
    pub seed: u64,
}

impl FairnessConfig {
    /// Paper-scale study.
    pub fn paper() -> Self {
        Self {
            solvers: vec![SolverKind::Cgba { lambda: 0.0 }, SolverKind::Ropt],
            devices: 100,
            horizon: 96,
            seed: 1234,
        }
    }

    /// Scaled-down study for tests.
    pub fn small() -> Self {
        Self { devices: 12, horizon: 24, ..Self::paper() }
    }
}

/// One variant's fairness metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessRow {
    /// DPP variant name.
    pub algorithm: String,
    /// Mean per-slot Jain's index over the run.
    pub mean_jains_index: f64,
    /// Worst (minimum) per-slot Jain's index over the run.
    pub worst_jains_index: f64,
    /// Time-average total latency (for the fairness/efficiency trade-off).
    pub average_latency: f64,
}

/// Runs the fairness comparison.
pub fn fairness(config: &FairnessConfig) -> Vec<FairnessRow> {
    let scenarios: Vec<Scenario> = config
        .solvers
        .iter()
        .map(|&solver| {
            Scenario::paper(config.devices, config.seed)
                .with_horizon(config.horizon)
                .with_bdma_rounds(2)
                .with_solver(solver)
                .with_label(solver.name())
        })
        .collect();
    let results: Vec<SimulationResult> = run_many(&scenarios);
    config
        .solvers
        .iter()
        .zip(results)
        .map(|(&solver, r)| FairnessRow {
            algorithm: solver.name().to_string(),
            mean_jains_index: r.fairness.time_average(),
            worst_jains_index: r.fairness.values().iter().cloned().fold(1.0, f64::min),
            average_latency: r.average_latency,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cgba_is_fairer_than_random() {
        let rows = fairness(&FairnessConfig::small());
        assert_eq!(rows.len(), 2);
        let (cgba, ropt) = (&rows[0], &rows[1]);
        assert!(
            cgba.mean_jains_index > ropt.mean_jains_index,
            "CGBA fairness {} should beat ROPT {}",
            cgba.mean_jains_index,
            ropt.mean_jains_index
        );
        // And it is not buying fairness with latency: it wins both.
        assert!(cgba.average_latency < ropt.average_latency);
    }

    #[test]
    fn fairness_indices_in_unit_interval() {
        for r in fairness(&FairnessConfig::small()) {
            assert!((0.0..=1.0 + 1e-12).contains(&r.mean_jains_index));
            assert!((0.0..=1.0 + 1e-12).contains(&r.worst_jains_index));
            assert!(r.worst_jains_index <= r.mean_jains_index + 1e-12);
        }
    }
}
