//! Warm-vs-cold A/B: the warm-start + ε-termination fast path must be a
//! pure speed optimization.
//!
//! The two arms run the *same* scenario — same system, same state stream,
//! same `V`, same budget — differing only in
//! [`StartPolicy`]. `Cold` is bit-identical
//! to the reference solver; `Warm` seeds each slot from the previous slot's
//! incumbent and stops alternating once a round improves the objective by
//! less than a relative ε. Because every warm slot still ends at a CGBA
//! equilibrium and BDMA keeps the best incumbent, the *control quality*
//! (time-average latency, budget satisfaction) must match the cold arm up
//! to equilibrium-selection noise — the `warm_ab` experiment quantifies
//! that gap, and the tier-1 test pins it below 1% over 500 slots.

use eotora_core::bdma::StartPolicy;
use serde::{Deserialize, Serialize};

use crate::runner::{run_many, SimulationResult};
use crate::scenario::Scenario;

/// One arm of the A/B comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmAbArm {
    /// "cold" or "warm".
    pub policy: String,
    /// Final time-average latency (seconds).
    pub average_latency: f64,
    /// Final time-average energy cost ($/slot).
    pub average_cost: f64,
    /// Whether the run honoured the budget on time average (5% transient
    /// tolerance, as in the budget-sweep experiment).
    pub budget_satisfied: bool,
    /// Mean BDMA alternation rounds actually executed per slot.
    pub mean_rounds_used: f64,
}

/// Result of the warm-vs-cold A/B experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmAbResult {
    /// The cold (reference-identical) arm.
    pub cold: WarmAbArm,
    /// The warm (cross-slot seeded, ε-terminated) arm.
    pub warm: WarmAbArm,
    /// `|warm − cold| / cold` for time-average latency.
    pub latency_gap_rel: f64,
    /// `|warm − cold| / cold` for time-average energy cost.
    pub cost_gap_rel: f64,
}

fn arm(policy: &str, result: &SimulationResult, tol: f64) -> WarmAbArm {
    WarmAbArm {
        policy: policy.to_string(),
        average_latency: result.average_latency,
        average_cost: result.average_cost,
        budget_satisfied: result.budget_satisfied(tol),
        mean_rounds_used: result.rounds_used.time_average(),
    }
}

/// Runs the A/B: one cold and one warm run of the paper-default scenario
/// (identical seeds and state streams), returning both arms and the
/// relative gaps. The two runs are independent jobs on the worker pool.
pub fn warm_vs_cold(devices: usize, horizon: u64, seed: u64) -> WarmAbResult {
    let base = Scenario::paper(devices, seed).with_horizon(horizon);
    let scenarios = [
        base.clone().with_label("cold"),
        base.with_label("warm").with_start_policy(StartPolicy::Warm),
    ];
    let results = run_many(&scenarios);
    let tol = 0.05 * results[0].budget;
    let cold = arm("cold", &results[0], tol);
    let warm = arm("warm", &results[1], tol);
    let rel = |w: f64, c: f64| if c == 0.0 { 0.0 } else { (w - c).abs() / c };
    WarmAbResult {
        latency_gap_rel: rel(warm.average_latency, cold.average_latency),
        cost_gap_rel: rel(warm.average_cost, cold.average_cost),
        cold,
        warm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_matches_cold_within_one_percent_over_500_slots() {
        // 30 devices: at toy scales the spread between *distinct cold
        // equilibria* already exceeds 1%, so the 1% pin is meaningful only
        // where equilibrium-selection noise has averaged out. Measured
        // latency gaps under this seed protocol: ~4% at 10 devices, ~1.6%
        // at 20, ~0.9% at 30, ~0.5% at 50 — the gap decays with scale and
        // crosses the 1% line around 30 devices.
        let ab = warm_vs_cold(30, 500, 4242);
        assert!(
            ab.latency_gap_rel < 0.01,
            "latency gap {:.4}% (cold {}, warm {})",
            100.0 * ab.latency_gap_rel,
            ab.cold.average_latency,
            ab.warm.average_latency
        );
        assert!(
            ab.cost_gap_rel < 0.01,
            "cost gap {:.4}% (cold {}, warm {})",
            100.0 * ab.cost_gap_rel,
            ab.cold.average_cost,
            ab.warm.average_cost
        );
        assert_eq!(ab.warm.budget_satisfied, ab.cold.budget_satisfied);
        // The whole point: warm runs need fewer alternation rounds.
        assert!(ab.cold.mean_rounds_used >= ab.warm.mean_rounds_used);
        assert!(ab.warm.mean_rounds_used < ab.cold.mean_rounds_used + 1e-9);
        assert!(ab.warm.mean_rounds_used >= 1.0);
    }
}
