//! Chaos harness: the robust slot engine under injected failures.
//!
//! Two arms run the *same* scenario through the robust pipeline
//! ([`crate::runner::run_robust`]): the **baseline** arm sees an empty
//! [`FaultSchedule`], the **faulted** arm replays a scripted trace with
//! server crashes, a base-station outage, a fronthaul link flap, and a
//! corrupt-state burst. Because both arms use the same solver path, the
//! report isolates the cost of the *faults* (masking, repair, sanitization)
//! from any baseline solver difference.
//!
//! Expected shape: zero panics on both arms, every slot feasible, bounded
//! latency/cost degradation on the faulted arm, and a virtual queue that
//! stays finite (the masked-energy accounting never charges crashed
//! servers, so the queue cannot wind up from energy that was never spent).

use std::collections::BTreeMap;

use eotora_core::fault::FaultSchedule;
use eotora_obs::TelemetrySession;
use serde::{Deserialize, Serialize};

use crate::runner::{robust_config, run_robust_traced, SimulationResult};
use crate::scenario::Scenario;

/// One arm (baseline or faulted) of the chaos comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosArm {
    /// "baseline" or "faulted".
    pub label: String,
    /// Final time-average latency (seconds).
    pub average_latency: f64,
    /// Final time-average energy cost ($/slot).
    pub average_cost: f64,
    /// Peak virtual-queue backlog over the run.
    pub max_queue: f64,
    /// Queue backlog averaged over the final 10% of slots.
    pub converged_queue: f64,
    /// Final values of the run's monotonic counters (`fault.*`,
    /// `deadline.*`, `slots`, ...).
    pub counters: BTreeMap<String, u64>,
    /// Worst [`eotora_obs::HealthStatus`] the health monitor reported at
    /// any point of the run (`"ok"` / `"degraded"` / `"critical"`). Worst,
    /// not final: chaos faults heal before the horizon, so the interesting
    /// signal is whether the monitor *noticed* the outage window.
    pub health: String,
}

/// Result of one baseline-vs-faulted chaos comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The fault-free robust run.
    pub baseline: ChaosArm,
    /// The same scenario replayed under the fault schedule.
    pub faulted: ChaosArm,
    /// `(faulted − baseline) / baseline` for time-average latency
    /// (positive = faults made latency worse).
    pub latency_degradation_rel: f64,
    /// `(faulted − baseline) / baseline` for time-average energy cost.
    pub cost_degradation_rel: f64,
    /// `(faulted − baseline) / max(baseline, 1)` for converged queue
    /// backlog.
    pub queue_growth_rel: f64,
}

fn arm(label: &str, result: &SimulationResult, health: String) -> ChaosArm {
    let window = (result.queue.len() / 10).max(1);
    ChaosArm {
        label: label.to_string(),
        average_latency: result.average_latency,
        average_cost: result.average_cost,
        max_queue: result.queue.values().iter().copied().fold(0.0, f64::max),
        converged_queue: result.queue.tail_average(window),
        counters: result.counters.clone(),
        health,
    }
}

/// One arm through the robust pipeline with an in-memory telemetry session
/// attached, returning the result plus the worst health status observed.
fn run_arm(scenario: &Scenario, faults: &FaultSchedule) -> (SimulationResult, String) {
    let robust = robust_config(scenario, None);
    let telemetry = TelemetrySession::in_memory(scenario.dpp.v, scenario.system.budget_per_slot);
    let result = run_robust_traced(scenario, faults, &robust, &telemetry);
    let worst = telemetry.health_summary().worst.as_str().to_owned();
    (result, worst)
}

/// Runs the baseline and faulted arms of `scenario` under `faults` and
/// reports the degradation ratios.
pub fn chaos_report(scenario: &Scenario, faults: &FaultSchedule) -> ChaosReport {
    let (baseline, baseline_health) = run_arm(scenario, &FaultSchedule::default());
    let (faulted, faulted_health) = run_arm(scenario, faults);
    let rel = |f: f64, b: f64| if b == 0.0 { 0.0 } else { (f - b) / b };
    let baseline = arm("baseline", &baseline, baseline_health);
    let faulted = arm("faulted", &faulted, faulted_health);
    ChaosReport {
        latency_degradation_rel: rel(faulted.average_latency, baseline.average_latency),
        cost_degradation_rel: rel(faulted.average_cost, baseline.average_cost),
        queue_growth_rel: (faulted.converged_queue - baseline.converged_queue)
            / baseline.converged_queue.max(1.0),
        baseline,
        faulted,
    }
}

/// The default chaos run: `devices` devices over `horizon` slots under
/// [`FaultSchedule::chaos_default`] (two server crashes, one base-station
/// outage, one fronthaul flap, one corrupt-state burst, all healing before
/// the horizon).
pub fn chaos_default(devices: usize, horizon: u64, seed: u64) -> ChaosReport {
    let scenario = Scenario::paper(devices, seed).with_horizon(horizon);
    let topo = &scenario.system.topology;
    let num_servers = topo.num_clusters * topo.servers_per_cluster;
    let faults = FaultSchedule::chaos_default(horizon, num_servers, topo.num_base_stations);
    chaos_report(&scenario, &faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance run: 500 slots under the default chaos trace
    /// (≥2 server crashes, ≥1 link flap, ≥1 corrupt-state burst). Zero
    /// panics, every slot feasible and finite, bounded degradation.
    #[test]
    fn chaos_500_slots_bounded_degradation() {
        let report = chaos_default(10, 500, 99);

        // All fault classes actually fired.
        let c = &report.faulted.counters;
        assert!(c.get("fault.masked_resources").copied().unwrap_or(0) > 0);
        assert!(c.get("fault.state_substitutions").copied().unwrap_or(0) > 0);
        assert_eq!(c.get("slots").copied().unwrap_or(0), 500);
        // No deadline was configured, so none may expire.
        assert_eq!(c.get("deadline.expirations").copied().unwrap_or(0), 0);
        // Baseline arm saw no faults at all.
        let b = &report.baseline.counters;
        assert_eq!(b.get("fault.masked_resources").copied().unwrap_or(0), 0);
        assert_eq!(b.get("fault.state_substitutions").copied().unwrap_or(0), 0);

        // Bounded degradation: faults cost something but not everything.
        assert!(
            report.latency_degradation_rel.abs() < 0.5,
            "latency degradation {:.1}% (baseline {}, faulted {})",
            100.0 * report.latency_degradation_rel,
            report.baseline.average_latency,
            report.faulted.average_latency
        );
        assert!(report.baseline.average_latency.is_finite());
        assert!(report.faulted.average_latency.is_finite());
        assert!(report.faulted.average_latency > 0.0);
        assert!(report.faulted.max_queue.is_finite());
        // The queue must not wind up unboundedly: peak backlog stays within
        // a small multiple of the per-slot budget over 500 slots.
        assert!(report.faulted.max_queue < 50.0, "queue wound up to {}", report.faulted.max_queue);

        // The health monitor separates the arms: the clean run never leaves
        // Ok, while the fault windows (masked servers, corrupt-state burst)
        // push the faulted run to at least Degraded at some point.
        assert_eq!(report.baseline.health, "ok", "clean run should stay healthy");
        assert_ne!(report.faulted.health, "ok", "faulted run should trip the health monitor");
    }

    /// Every slot of a faulted run keeps producing feasible decisions and
    /// never assigns work to a crashed server (checked at the controller
    /// level, below the runner's aggregation).
    #[test]
    fn faulted_slots_stay_feasible_and_avoid_down_servers() {
        use eotora_core::dpp::{DppConfig, EotoraDpp};
        use eotora_core::robust::RobustConfig;
        use eotora_core::system::{MecSystem, SystemConfig};
        use eotora_obs::NoopRecorder;
        use eotora_states::{PaperStateConfig, StateProvider};

        let system = MecSystem::random(&SystemConfig::paper_defaults(8), 7);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 7);
        let mut dpp = EotoraDpp::new(system.clone(), DppConfig::default());
        let faults = FaultSchedule::chaos_default(20, 16, 6);
        let robust = RobustConfig::default();
        for slot in 0..20 {
            let beta = states.observe(slot, system.topology());
            let mask = faults.mask_at(slot);
            let (step, report) = dpp.step_robust(&beta, &mask, &robust, &NoopRecorder);
            let decision = &step.outcome.decision;
            assert!(decision.validate(&system).is_ok(), "slot {slot} infeasible");
            for a in &decision.assignments {
                assert!(
                    !mask.down_servers.contains(&a.server.index()),
                    "slot {slot} assigned a crashed server"
                );
            }
            assert!(report.solution.latency.is_finite());
        }
    }
}
