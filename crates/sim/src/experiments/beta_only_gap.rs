//! Theorem 4 made empirical: DPP versus the hindsight-tuned β-only policy.
//!
//! Lemma 2 guarantees an optimal stationary (β-only) policy exists; Theorem
//! 4 bounds BDMA-based DPP's latency by `R·ρ* + BD/V` against it. This
//! harness tunes the β-only Lagrangian policy in hindsight on a recorded
//! state sequence, runs DPP online on the same sequence, and reports the
//! latency ratio at matched budgets — for several `V`, exposing the `O(1/V)`
//! gap shrinking.

use eotora_core::baselines::BetaOnlyPolicy;
use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider, SystemState};
use serde::{Deserialize, Serialize};

/// Configuration of the gap study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaOnlyGapConfig {
    /// Penalty weights `V` to evaluate DPP at.
    pub vs: Vec<f64>,
    /// Number of devices `I`.
    pub devices: usize,
    /// Budget `C̄` in $/slot (pick a binding one).
    pub budget: f64,
    /// Horizon in slots.
    pub horizon: u64,
    /// Master seed.
    pub seed: u64,
}

impl BetaOnlyGapConfig {
    /// Paper-scale study.
    pub fn paper() -> Self {
        Self { vs: vec![10.0, 50.0, 200.0], devices: 60, budget: 0.8, horizon: 240, seed: 4321 }
    }

    /// Scaled-down study for tests.
    pub fn small() -> Self {
        Self { vs: vec![10.0, 200.0], devices: 10, budget: 0.8, horizon: 96, seed: 9 }
    }
}

/// Result of the gap study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaOnlyGap {
    /// The hindsight benchmark's time-average latency (`≈ ρ*`).
    pub oracle_latency: f64,
    /// The benchmark's realized average cost (≤ budget by construction).
    pub oracle_cost: f64,
    /// The tuned multiplier `μ`.
    pub multiplier: f64,
    /// Per-V DPP results as `(V, average latency, average cost, ratio)`.
    pub dpp: Vec<(f64, f64, f64, f64)>,
}

/// Runs the study.
pub fn beta_only_gap(config: &BetaOnlyGapConfig) -> BetaOnlyGap {
    let system = MecSystem::random(&SystemConfig::paper_defaults(config.devices), config.seed)
        .with_budget(config.budget);
    let mut provider =
        StateProvider::paper(system.topology(), &PaperStateConfig::default(), config.seed);
    let states: Vec<SystemState> =
        (0..config.horizon).map(|t| provider.observe(t, system.topology())).collect();

    let policy = BetaOnlyPolicy::tune(system.clone(), &states, config.seed);
    let oracle = policy.evaluate(&states, config.seed);

    let dpp = config
        .vs
        .iter()
        .map(|&v| {
            let mut ctl = EotoraDpp::new(
                system.clone(),
                DppConfig { v, bdma_rounds: 2, seed: config.seed, ..Default::default() },
            );
            for state in &states {
                ctl.step(state);
            }
            (
                v,
                ctl.average_latency(),
                ctl.average_cost(),
                ctl.average_latency() / oracle.average_latency,
            )
        })
        .collect();

    BetaOnlyGap {
        oracle_latency: oracle.average_latency,
        oracle_cost: oracle.average_cost,
        multiplier: policy.multiplier,
        dpp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_shrinks_with_v_and_stays_modest() {
        let g = beta_only_gap(&BetaOnlyGapConfig::small());
        assert!(g.oracle_cost <= 0.8 * (1.0 + 1e-6));
        assert_eq!(g.dpp.len(), 2);
        let (_, _, _, ratio_low_v) = g.dpp[0];
        let (_, _, _, ratio_high_v) = g.dpp[1];
        // O(1/V): the larger V must not be farther from the benchmark.
        assert!(ratio_high_v <= ratio_low_v + 1e-9, "{ratio_high_v} vs {ratio_low_v}");
        // And DPP is genuinely close (Theorem 4 with near-optimal P2 solves).
        assert!(ratio_high_v < 1.15, "ratio {ratio_high_v}");
    }
}
