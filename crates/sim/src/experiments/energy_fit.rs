//! Fig. 3 — measured i7-3770K power, its quadratic fit, and perturbed
//! per-server energy curves.

use eotora_energy::{fit_i7_3770k, i7_3770k_points, EnergyModel, QuadraticEnergy};
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// The Fig. 3 data: measurement diamonds, fitted black curve, and dashed
/// perturbed server curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyFitData {
    /// Measured `(GHz, W)` points.
    pub measured: Vec<(f64, f64)>,
    /// Fitted quadratic coefficients `(a, b, c)` with `P = a·f² + b·f + c`.
    pub fit_coefficients: (f64, f64, f64),
    /// Fit evaluated on a dense grid of `(GHz, W)` samples.
    pub fit_curve: Vec<(f64, f64)>,
    /// Perturbed per-server curves on the same grid (paper: dashed lines).
    pub perturbed_curves: Vec<Vec<(f64, f64)>>,
}

/// Builds the Fig. 3 dataset with `num_perturbed` random server curves.
pub fn energy_fit(num_perturbed: usize, seed: u64) -> EnergyFitData {
    let (freqs, watts) = i7_3770k_points();
    let measured: Vec<(f64, f64)> = freqs.iter().copied().zip(watts).collect();
    let fit = fit_i7_3770k();

    let grid: Vec<f64> = (0..=90).map(|i| 1.8 + i as f64 * 0.02).collect();
    let sample = |m: &QuadraticEnergy| -> Vec<(f64, f64)> {
        grid.iter().map(|&g| (g, m.power_watts(g * 1e9))).collect()
    };

    let mut rng = Pcg32::seed_stream(seed, 0xF163);
    let perturbed_curves =
        (0..num_perturbed).map(|_| sample(&fit.perturbed(rng.standard_normal()))).collect();

    EnergyFitData {
        measured,
        fit_coefficients: (fit.a, fit.b, fit.c),
        fit_curve: sample(&fit),
        perturbed_curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_passes_through_measurements() {
        let d = energy_fit(2, 1);
        let (a, b, c) = d.fit_coefficients;
        for &(f, p) in &d.measured {
            let pred = a * f * f + b * f + c;
            assert!((pred - p).abs() < 1.5, "at {f} GHz: {pred} vs {p}");
        }
    }

    #[test]
    fn curves_cover_dvfs_range() {
        let d = energy_fit(2, 1);
        assert_eq!(d.fit_curve.first().unwrap().0, 1.8);
        assert!((d.fit_curve.last().unwrap().0 - 3.6).abs() < 1e-9);
        assert_eq!(d.perturbed_curves.len(), 2);
        for c in &d.perturbed_curves {
            assert_eq!(c.len(), d.fit_curve.len());
            // Perturbed curves stay physically plausible (positive power).
            assert!(c.iter().all(|&(_, w)| w > 0.0));
        }
    }

    #[test]
    fn perturbed_curves_differ_from_fit() {
        let d = energy_fit(3, 2);
        for c in &d.perturbed_curves {
            let max_diff = c
                .iter()
                .zip(&d.fit_curve)
                .map(|(&(_, a), &(_, b))| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_diff > 0.1, "perturbation should be visible");
        }
    }
}
