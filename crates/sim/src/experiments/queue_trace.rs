//! Fig. 7 — virtual-queue backlog `Q(t)` over time for different `V`.
//!
//! Paper shape: the backlog rises from zero, converges after a transient,
//! and then oscillates with the (daily-periodic) electricity price — rising
//! in expensive hours, draining in cheap ones.

use serde::{Deserialize, Serialize};

use crate::runner::run;
use crate::scenario::Scenario;

/// Configuration of the queue-trace experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueTraceConfig {
    /// Penalty weights to trace (paper: 50 and 100).
    pub vs: Vec<f64>,
    /// Number of devices `I` (paper: 100).
    pub devices: usize,
    /// BDMA rounds `z` (paper: 5).
    pub bdma_rounds: usize,
    /// Horizon in slots.
    pub horizon: u64,
    /// Master seed.
    pub seed: u64,
}

impl QueueTraceConfig {
    /// The paper's Fig. 7 setting.
    pub fn paper() -> Self {
        Self { vs: vec![50.0, 100.0], devices: 100, bdma_rounds: 5, horizon: 480, seed: 77 }
    }

    /// A fast scaled-down run for tests.
    pub fn small() -> Self {
        Self { vs: vec![20.0, 60.0], devices: 10, bdma_rounds: 1, horizon: 96, seed: 3 }
    }
}

/// One traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueTrace {
    /// Penalty weight `V` of this run.
    pub v: f64,
    /// Backlog `Q(t+1)` per slot.
    pub queue: Vec<f64>,
    /// Electricity price per slot (for the price-tracking overlay).
    pub price: Vec<f64>,
}

/// Runs Fig. 7: one DPP trace per `V`.
pub fn queue_trace(config: &QueueTraceConfig) -> Vec<QueueTrace> {
    config
        .vs
        .iter()
        .map(|&v| {
            let scenario = Scenario::paper(config.devices, config.seed)
                .with_v(v)
                .with_horizon(config.horizon)
                .with_bdma_rounds(config.bdma_rounds)
                .with_label(format!("V={v}"));
            let result = run(&scenario);
            QueueTrace {
                v,
                queue: result.queue.values().to_vec(),
                price: result.price.values().to_vec(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rises_then_oscillates() {
        let traces = queue_trace(&QueueTraceConfig::small());
        for t in &traces {
            assert_eq!(t.queue.len(), 96);
            // Non-trivial backlog develops…
            let peak = t.queue.iter().cloned().fold(0.0, f64::max);
            assert!(peak > 0.0, "queue never rose for V={}", t.v);
            // …and the tail is bounded (converged, not divergent).
            let early_max = t.queue[..48].iter().cloned().fold(0.0, f64::max);
            let late_max = t.queue[48..].iter().cloned().fold(0.0, f64::max);
            assert!(late_max < 10.0 * early_max.max(1.0), "queue diverging for V={}", t.v);
        }
    }

    #[test]
    fn larger_v_carries_larger_backlog() {
        let traces = queue_trace(&QueueTraceConfig::small());
        let tail = |t: &QueueTrace| t.queue[48..].iter().sum::<f64>() / 48.0;
        assert!(
            tail(&traces[1]) > tail(&traces[0]),
            "V=60 backlog should exceed V=20: {} vs {}",
            tail(&traces[1]),
            tail(&traces[0])
        );
    }
}
