//! Speculation A/B: the speculative pre-solve must be a pure
//! critical-path optimization.
//!
//! Two arms run the *same* scenario — same system, same state stream,
//! same controller config — one through [`run`], one through
//! [`run_speculative`]. Because a staged solve is adopted only on an
//! exact state match (at tolerance 0) and discarded otherwise, the
//! speculative arm must reproduce the plain arm's series bit for bit
//! regardless of hit rate; what changes is *when* the solve work happens.
//! The tier-1 tests pin both directions: a zero-hit (adversarial)
//! 500-slot run is decision-identical to the plain engine, and on the
//! deterministic periodic-price scenario the predictor hits on every slot
//! past the first price period.

use eotora_core::speculate::SpeculativeConfig;
use serde::{Deserialize, Serialize};

use crate::runner::{run, run_speculative, SimulationResult};
use crate::scenario::Scenario;

/// One arm of the speculation A/B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeculationArm {
    /// "plain" or "speculative".
    pub label: String,
    /// Final time-average latency (seconds).
    pub average_latency: f64,
    /// Final time-average energy cost ($/slot).
    pub average_cost: f64,
    /// Median per-slot critical-path wall time (seconds): the whole solve
    /// for the plain arm, just the repair pass for the speculative arm.
    pub critical_path_p50_s: f64,
}

/// Result of the speculation A/B experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeculationAbResult {
    /// The plain (always-solve-on-arrival) arm.
    pub plain: SpeculationArm,
    /// The speculative (stage-then-repair) arm.
    pub speculative: SpeculationArm,
    /// Staged solves adopted verbatim.
    pub hits: u64,
    /// Staged solves that warm-seeded a repair.
    pub near_hits: u64,
    /// Slots that fell back to the normal path.
    pub misses: u64,
    /// Assignments the repair pass moved off speculated profiles.
    pub repair_moves: u64,
    /// Staged solves discarded before comparison.
    pub staged_discards: u64,
    /// `hits / horizon`.
    pub hit_rate: f64,
    /// `|spec − plain| / plain` for time-average latency.
    pub latency_gap_rel: f64,
    /// `|spec − plain| / plain` for time-average energy cost.
    pub cost_gap_rel: f64,
    /// Whether the latency/cost/queue series matched bit for bit.
    pub series_identical: bool,
    /// `plain.critical_path_p50_s / speculative.critical_path_p50_s`
    /// (∞-guarded: 0.0 when the speculative p50 is 0).
    pub critical_path_speedup: f64,
}

fn arm(label: &str, result: &SimulationResult) -> SpeculationArm {
    SpeculationArm {
        label: label.to_string(),
        average_latency: result.average_latency,
        average_cost: result.average_cost,
        critical_path_p50_s: result.solve_time_quantile(0.5).unwrap_or(0.0),
    }
}

/// Runs the A/B: one plain and one speculative run of `scenario` under
/// `spec` (identical seeds and state streams), returning both arms, the
/// `spec.*` counter readouts, and the relative gaps.
pub fn speculation_ab(scenario: &Scenario, spec: &SpeculativeConfig) -> SpeculationAbResult {
    let plain = run(scenario);
    let speculative = run_speculative(scenario, spec);
    let ctr = |name: &str| speculative.counters.get(name).copied().unwrap_or(0);
    let hits = ctr("spec.hits");
    let rel = |s: f64, p: f64| if p == 0.0 { 0.0 } else { (s - p).abs() / p };
    let plain_arm = arm("plain", &plain);
    let spec_arm = arm("speculative", &speculative);
    SpeculationAbResult {
        hits,
        near_hits: ctr("spec.near_hits"),
        misses: ctr("spec.misses"),
        repair_moves: ctr("spec.repair_moves"),
        staged_discards: ctr("spec.staged_discards"),
        hit_rate: hits as f64 / scenario.horizon.max(1) as f64,
        latency_gap_rel: rel(spec_arm.average_latency, plain_arm.average_latency),
        cost_gap_rel: rel(spec_arm.average_cost, plain_arm.average_cost),
        series_identical: speculative.latency == plain.latency
            && speculative.cost == plain.cost
            && speculative.queue == plain.queue,
        critical_path_speedup: if spec_arm.critical_path_p50_s > 0.0 {
            plain_arm.critical_path_p50_s / spec_arm.critical_path_p50_s
        } else {
            0.0
        },
        plain: plain_arm,
        speculative: spec_arm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_core::speculate::PredictorKind;

    #[test]
    fn zero_hit_speculative_run_is_decision_identical_over_500_slots() {
        // The acceptance pin: with hits disabled (adversarial predictor at
        // tolerance 0) the speculative engine must match the plain engine
        // decision for decision across a long horizon — speculation never
        // leaks into committed state.
        let scenario = Scenario::paper(20, 8181).with_horizon(500).with_bdma_rounds(2);
        let spec = SpeculativeConfig {
            predictor: PredictorKind::Adversarial,
            tolerance: 0.0,
            stage_when_busy: true,
            ..Default::default()
        };
        let ab = speculation_ab(&scenario, &spec);
        assert!(ab.series_identical, "speculative series diverged from plain");
        assert_eq!(ab.latency_gap_rel, 0.0);
        assert_eq!(ab.cost_gap_rel, 0.0);
        assert_eq!(ab.hits, 0);
        assert_eq!(ab.near_hits, 0);
        assert_eq!(ab.misses, 500);
    }

    #[test]
    fn periodic_price_hits_after_one_period_and_stays_identical() {
        let scenario = Scenario::periodic_price(10, 2727).with_horizon(100).with_bdma_rounds(2);
        let spec = SpeculativeConfig {
            predictor: PredictorKind::PeriodicPrice { period: 24 },
            tolerance: 0.0,
            stage_when_busy: true,
            ..Default::default()
        };
        let ab = speculation_ab(&scenario, &spec);
        assert!(ab.series_identical, "adopted slots must match plain solves bit for bit");
        // Slots 24..99 all adopt; only the first period misses.
        assert_eq!(ab.hits, 76);
        assert_eq!(ab.misses, 24);
        assert!(ab.hit_rate >= 0.5, "hit rate {}", ab.hit_rate);
        assert_eq!(ab.staged_discards, 0);
    }
}
