//! Executes scenarios and collects per-slot metrics.
//!
//! Every run is instrumented: an in-memory
//! [`MetricsRecorder`](eotora_obs::MetricsRecorder) aggregates the
//! pipeline's spans into [`SimulationResult::per_stage_solve_time`], and
//! [`run_traced`] additionally tees the event stream into any external
//! [`Recorder`] (e.g. a JSONL sink for `eotora run --trace`).

use std::collections::BTreeMap;

use eotora_core::dpp::SolverKind;
use eotora_core::fault::FaultSchedule;
use eotora_core::robust::RobustConfig;
use eotora_core::speculate::SpeculativeConfig;
use eotora_core::system::MecSystem;
use eotora_durability::DurabilityError;
use eotora_obs::Recorder;
use eotora_states::{StateProvider, SystemState};
use eotora_util::series::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::durable::DurableSession;
use crate::engine::{DriverMode, DriverTuning, StepDriver};
use crate::scenario::Scenario;

/// Per-slot series plus end-of-run aggregates for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Scenario label.
    pub label: String,
    /// Latency `T_t` per slot (seconds).
    pub latency: TimeSeries,
    /// Energy cost `C_t` per slot (dollars).
    pub cost: TimeSeries,
    /// Queue backlog `Q(t+1)` after each slot.
    pub queue: TimeSeries,
    /// Electricity price `p_t` per slot ($/kWh).
    pub price: TimeSeries,
    /// Wall-clock solve time per slot (seconds).
    pub solve_time: TimeSeries,
    /// Jain's fairness index of per-device latencies, per slot (1 = all
    /// devices see the same latency).
    pub fairness: TimeSeries,
    /// Fraction of devices that changed base station vs the previous slot
    /// (handover rate; 0 for the first slot).
    pub handover_rate: TimeSeries,
    /// Fleet mean clock frequency per slot, in GHz.
    pub mean_clock_ghz: TimeSeries,
    /// Per-slot seconds spent in each instrumented solver stage (`p2a`,
    /// `p2b`, `queue_update`, ...), keyed by span name. Every series has
    /// one entry per slot (zero where the stage did not run).
    pub per_stage_solve_time: BTreeMap<String, TimeSeries>,
    /// BDMA alternation rounds actually executed per slot (0 for slots
    /// where BDMA never ran; under warm starts the ε-termination makes this
    /// vary from slot to slot, cold runs pin it at the configured `z`).
    pub rounds_used: TimeSeries,
    /// Mean BDMA alternation rounds per slot (0 when BDMA never ran).
    pub mean_bdma_rounds: f64,
    /// Final values of every monotonic counter the run incremented
    /// (`bdma_rounds`, `slots`, on fault-injected runs the `fault.*` /
    /// `deadline.*` family, and on speculative runs the `spec.*` family).
    pub counters: BTreeMap<String, u64>,
    /// The budget `C̄` in force.
    pub budget: f64,
    /// Final time-average latency.
    pub average_latency: f64,
    /// Final time-average energy cost.
    pub average_cost: f64,
}

impl SimulationResult {
    /// Queue backlog averaged over the last `window` slots (the "converged"
    /// backlog of Fig. 8).
    pub fn converged_queue(&self, window: usize) -> f64 {
        self.queue.tail_average(window)
    }

    /// Whether the run honoured the budget on time average (with `tol`
    /// absorbing the `O(V/T)` transient).
    pub fn budget_satisfied(&self, tol: f64) -> bool {
        self.average_cost <= self.budget + tol
    }

    /// The `q`-quantile of the per-slot wall-clock solve time, in seconds
    /// (`None` for an empty run). Exact (sorting-based), unlike the
    /// bucketed trace histograms.
    pub fn solve_time_quantile(&self, q: f64) -> Option<f64> {
        let mut sorted = self.solve_time.values().to_vec();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Runs one scenario to completion.
pub fn run(scenario: &Scenario) -> SimulationResult {
    let system = MecSystem::random(&scenario.system, scenario.seed);
    let mut states = StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    run_with(scenario, system, &mut |slot, topo| states.observe(slot, topo))
}

/// Runs one scenario while streaming every trace event into `sink` (in
/// addition to the in-memory metrics every run collects). This is the entry
/// point behind `eotora run --trace`: pass a
/// [`JsonlRecorder`](eotora_obs::JsonlRecorder) to capture the run as JSONL.
pub fn run_traced(scenario: &Scenario, sink: &dyn Recorder) -> SimulationResult {
    let system = MecSystem::random(&scenario.system, scenario.seed);
    let mut states = StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    run_impl(scenario, system, &mut |slot, topo| states.observe(slot, topo), Some(sink))
}

/// Runs a scenario against a caller-supplied system and state source —
/// the hook used by the mobility example and the dynamic-fronthaul tests.
pub fn run_with(
    scenario: &Scenario,
    system: MecSystem,
    observe: &mut dyn FnMut(u64, &eotora_topology::Topology) -> SystemState,
) -> SimulationResult {
    run_impl(scenario, system, observe, None)
}

fn run_impl(
    scenario: &Scenario,
    system: MecSystem,
    observe: &mut dyn FnMut(u64, &eotora_topology::Topology) -> SystemState,
    sink: Option<&dyn Recorder>,
) -> SimulationResult {
    match run_engine(scenario, system, observe, sink, DriverMode::Plain, None) {
        Ok(EngineOutcome::Completed(result)) => *result,
        // Without a durable session the engine performs no I/O and has no
        // kill hook, so it can neither fail nor interrupt.
        Ok(EngineOutcome::Interrupted { .. }) | Err(_) => {
            unreachable!("non-durable run cannot fail or interrupt")
        }
    }
}

/// How an engine run ended.
pub(crate) enum EngineOutcome {
    /// Reached the horizon.
    Completed(Box<SimulationResult>),
    /// A durable session's kill hook fired after `slot` completed.
    Interrupted {
        /// Last completed slot.
        slot: u64,
    },
}

/// The one simulation loop behind every batch entry point: plain,
/// robust, and speculative pipelines, optional trace sink, optional
/// durability. All per-slot mechanics live in
/// [`StepDriver`](crate::engine::StepDriver) — this function only owns
/// the horizon loop and the state source, which is exactly the part the
/// `eotora-server` daemon replaces with a network stream.
///
/// With a [`DurableSession`], each completed slot appends a slot record
/// to the write-ahead journal and snapshots the full controller state on
/// the session's cadence (journal synced first — see
/// [`crate::durable`]). If the session carries resume state, the first
/// `snapshot.slots` slots are *replayed* from the journal head instead of
/// re-solved: the controller, sanitizer, and corruption RNG restore from
/// the snapshot, the state provider fast-forwards by re-observing the
/// completed slots, and the loop continues where the interrupted run
/// stopped — producing bit-identical decisions and series.
pub(crate) fn run_engine(
    scenario: &Scenario,
    system: MecSystem,
    observe: &mut dyn FnMut(u64, &eotora_topology::Topology) -> SystemState,
    sink: Option<&dyn Recorder>,
    mode: DriverMode,
    durable: Option<DurableSession>,
) -> Result<EngineOutcome, DurabilityError> {
    let mut driver =
        StepDriver::new(scenario, system, mode, durable, sink, DriverTuning::default());
    // Fast-forward the state source past any resume-replayed slots so the
    // cursor slot observes exactly what the uninterrupted run would, then
    // reproduce the speculative stage the interrupted run had in flight.
    for slot in 0..driver.cursor() {
        let replayed = observe(slot, driver.topology());
        driver.replay_observe(&replayed);
    }
    driver.restage();
    while driver.cursor() < driver.horizon() {
        let beta = observe(driver.cursor(), driver.topology());
        let report = driver.step(beta)?;
        if report.interrupted {
            return Ok(EngineOutcome::Interrupted { slot: report.slot });
        }
    }
    Ok(EngineOutcome::Completed(Box::new(driver.finish())))
}

/// The robust-solve configuration a scenario implies: the scenario's BDMA
/// round count and CGBA λ, plus the given per-slot wall-clock deadline.
pub fn robust_config(scenario: &Scenario, deadline: Option<std::time::Duration>) -> RobustConfig {
    let (lambda, shards) = match scenario.dpp.solver {
        SolverKind::Cgba { lambda } => (lambda, 0),
        // The solver's `shards == 0` means "one shard per component"; the
        // robust path reserves 0 for "sequential", so auto maps to MAX
        // (the shard planner clamps to the live component count).
        SolverKind::ShardedCgba { lambda, shards } => {
            (lambda, if shards == 0 { usize::MAX } else { shards })
        }
        _ => (0.0, 0),
    };
    RobustConfig {
        deadline,
        rounds: scenario.dpp.bdma_rounds,
        lambda,
        shards,
        ..Default::default()
    }
}

/// Runs one scenario through the fault-tolerant pipeline: per-slot
/// availability masks from `faults`, corrupt-state bursts injected and then
/// screened by a [`StateSanitizer`](eotora_core::StateSanitizer), and the
/// anytime deadline of `robust`
/// bounding each slot's solve. With an empty schedule and no deadline this
/// is the robust path's fault-free baseline (deterministic, but *not*
/// bit-identical to [`run`] — the robust solve seeds deterministically
/// instead of sampling random initial profiles).
pub fn run_robust(
    scenario: &Scenario,
    faults: &FaultSchedule,
    robust: &RobustConfig,
) -> SimulationResult {
    run_robust_impl(scenario, faults, robust, None)
}

/// [`run_robust`] with every trace event additionally streamed into `sink`
/// (the entry point behind `eotora run --fault-trace ... --trace ...`).
pub fn run_robust_traced(
    scenario: &Scenario,
    faults: &FaultSchedule,
    robust: &RobustConfig,
    sink: &dyn Recorder,
) -> SimulationResult {
    run_robust_impl(scenario, faults, robust, Some(sink))
}

fn run_robust_impl(
    scenario: &Scenario,
    faults: &FaultSchedule,
    robust: &RobustConfig,
    sink: Option<&dyn Recorder>,
) -> SimulationResult {
    let system = MecSystem::random(&scenario.system, scenario.seed);
    let mut states = StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    match run_engine(
        scenario,
        system,
        &mut |slot, topo| states.observe(slot, topo),
        sink,
        DriverMode::Robust { faults: faults.clone(), robust: *robust },
        None,
    ) {
        Ok(EngineOutcome::Completed(result)) => *result,
        Ok(EngineOutcome::Interrupted { .. }) | Err(_) => {
            unreachable!("non-durable run cannot fail or interrupt")
        }
    }
}

/// Runs one scenario through the speculative pipeline (see
/// [`eotora_core::speculate`]): a predicted next-slot solve is staged in
/// the inter-slot gap and adopted, repaired, or discarded when the real
/// state arrives. With a zero-hit predictor this is decision-identical to
/// [`run`] — speculation never touches committed state until adopted.
pub fn run_speculative(scenario: &Scenario, spec: &SpeculativeConfig) -> SimulationResult {
    run_speculative_impl(scenario, spec, None)
}

/// [`run_speculative`] with every trace event additionally streamed into
/// `sink` (the entry point behind `eotora run --speculate --trace ...`).
pub fn run_speculative_traced(
    scenario: &Scenario,
    spec: &SpeculativeConfig,
    sink: &dyn Recorder,
) -> SimulationResult {
    run_speculative_impl(scenario, spec, Some(sink))
}

fn run_speculative_impl(
    scenario: &Scenario,
    spec: &SpeculativeConfig,
    sink: Option<&dyn Recorder>,
) -> SimulationResult {
    let system = MecSystem::random(&scenario.system, scenario.seed);
    let mut states = StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    match run_engine(
        scenario,
        system,
        &mut |slot, topo| states.observe(slot, topo),
        sink,
        DriverMode::Speculative { spec: *spec },
        None,
    ) {
        Ok(EngineOutcome::Completed(result)) => *result,
        Ok(EngineOutcome::Interrupted { .. }) | Err(_) => {
            unreachable!("non-durable run cannot fail or interrupt")
        }
    }
}

/// Runs independent scenarios in parallel on the process-default worker
/// pool (scenarios are independent by construction; results come back in
/// scenario order). Equivalent to `run_many_jobs(scenarios, None)`.
pub fn run_many(scenarios: &[Scenario]) -> Vec<SimulationResult> {
    run_many_jobs(scenarios, None)
}

/// Runs independent scenarios on a bounded worker pool of `jobs` threads
/// (`None` → the process default, see
/// [`eotora_util::pool::default_workers`]). Concurrency is capped at the
/// worker count regardless of how many scenarios are queued, and results
/// are returned in scenario order, so the output is identical to running
/// each scenario serially with [`run`].
pub fn run_many_jobs(scenarios: &[Scenario], jobs: Option<usize>) -> Vec<SimulationResult> {
    let pool = match jobs {
        Some(n) => eotora_util::pool::WorkerPool::new(n),
        None => eotora_util::pool::WorkerPool::with_default(),
    };
    pool.map(scenarios, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_core::dpp::SolverKind;

    #[test]
    fn run_collects_all_series() {
        let r = run(&Scenario::paper(8, 2).with_horizon(6).with_bdma_rounds(1));
        assert_eq!(r.latency.len(), 6);
        assert_eq!(r.cost.len(), 6);
        assert_eq!(r.queue.len(), 6);
        assert_eq!(r.price.len(), 6);
        assert_eq!(r.solve_time.len(), 6);
        assert_eq!(r.fairness.len(), 6);
        assert!(r.fairness.values().iter().all(|&j| (0.0..=1.0 + 1e-12).contains(&j)));
        assert_eq!(r.handover_rate.len(), 6);
        assert_eq!(r.handover_rate.values()[0], 0.0);
        assert!(r.handover_rate.values().iter().all(|&h| (0.0..=1.0).contains(&h)));
        assert!(r.mean_clock_ghz.values().iter().all(|&g| (1.8..=3.6).contains(&g)));
        assert!(r.average_latency > 0.0);
        assert!(r.average_cost > 0.0);
        assert!((r.average_latency - r.latency.time_average()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Scenario::paper(8, 5).with_horizon(5).with_bdma_rounds(1);
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.queue, b.queue);
    }

    #[test]
    fn run_many_matches_run() {
        let scenarios = vec![
            Scenario::paper(6, 1).with_horizon(4).with_bdma_rounds(1),
            Scenario::paper(6, 2).with_horizon(4).with_bdma_rounds(1).with_solver(SolverKind::Ropt),
        ];
        let parallel = run_many(&scenarios);
        assert_eq!(parallel.len(), 2);
        let serial0 = run(&scenarios[0]);
        assert_eq!(parallel[0].latency, serial0.latency);
    }

    #[test]
    fn run_many_jobs_is_deterministic_across_worker_counts() {
        // More scenarios than workers: the pool must queue rather than
        // spawn-per-job, and the result order must stay scenario order.
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| Scenario::paper(6, 20 + i).with_horizon(3).with_bdma_rounds(1))
            .collect();
        let serial = run_many_jobs(&scenarios, Some(1));
        let bounded = run_many_jobs(&scenarios, Some(2));
        assert_eq!(serial.len(), 5);
        for (a, b) in serial.iter().zip(&bounded) {
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.queue, b.queue);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn per_stage_series_cover_every_slot() {
        let r = run(&Scenario::paper(8, 7).with_horizon(5).with_bdma_rounds(2));
        for name in ["p2a", "p2b", "queue_update"] {
            let series = r
                .per_stage_solve_time
                .get(name)
                .unwrap_or_else(|| panic!("missing stage series {name}"));
            assert_eq!(series.len(), 5, "{name}");
            assert!(series.values().iter().all(|&s| s >= 0.0));
        }
        // Stage times are components of the slot solve, never more than it.
        for slot in 0..5 {
            let stage_sum: f64 = r.per_stage_solve_time.values().map(|s| s.values()[slot]).sum();
            assert!(
                stage_sum <= r.solve_time.values()[slot] + 1e-6,
                "slot {slot}: stages {stage_sum} vs total {}",
                r.solve_time.values()[slot]
            );
        }
        assert!(r.mean_bdma_rounds >= 1.0);
        // Cold runs (the default) execute the configured z every slot.
        assert_eq!(r.rounds_used.len(), 5);
        assert!(r.rounds_used.values().iter().all(|&z| z == 2.0));
    }

    #[test]
    fn run_traced_streams_valid_jsonl() {
        let scenario = Scenario::paper(8, 9).with_horizon(4).with_bdma_rounds(2);
        let sink = eotora_obs::JsonlRecorder::new(Vec::new());
        let result = run_traced(&scenario, &sink);
        let bytes = sink.finish().expect("in-memory sink cannot fail");
        let analysis = eotora_obs::TraceAnalysis::from_reader(bytes.as_slice()).unwrap();
        assert!(analysis.malformed.is_empty());
        assert_eq!(analysis.slots, 4);
        for name in ["p2a", "p2b", "queue_update", "slot_solve"] {
            assert!(analysis.spans.contains_key(name), "missing span {name}");
        }
        assert!(analysis.bdma_rounds_per_slot.count() > 0);
        // The trace's queue trajectory matches the in-memory series.
        let traced: Vec<f64> = analysis.queue_by_slot.iter().map(|&(_, q)| q).collect();
        assert_eq!(traced, result.queue.values());
        // Tracing must not perturb the run itself.
        let untraced = run(&scenario);
        assert_eq!(untraced.latency, result.latency);
        assert_eq!(untraced.queue, result.queue);
    }

    #[test]
    fn sharded_run_matches_sequential_on_islands() {
        // On a separable island topology the sharded engine is
        // decision-identical to the sequential oracle, so the whole
        // simulation (series, counters it shares) must agree bit for bit.
        let base = Scenario::scale_up(24, 3, 5).with_horizon(4).with_bdma_rounds(1);
        let sequential = run(&base);
        let sharded = run(&base.clone().with_shards(0));
        assert_eq!(sequential.latency, sharded.latency);
        assert_eq!(sequential.cost, sharded.cost);
        assert_eq!(sequential.queue, sharded.queue);
        assert_eq!(sequential.handover_rate, sharded.handover_rate);
        let solves = sharded.counters.get("shard.solves").copied().unwrap_or(0);
        assert_eq!(solves, 3 * 4, "3 shards x 4 slots, got {solves}");
        assert!(!sequential.counters.contains_key("shard.solves"));
    }

    #[test]
    fn robust_config_maps_sharded_solver() {
        let s = Scenario::scale_up(24, 3, 5);
        assert_eq!(robust_config(&s, None).shards, 0);
        assert_eq!(robust_config(&s.clone().with_shards(0), None).shards, usize::MAX);
        assert_eq!(robust_config(&s.with_shards(2), None).shards, 2);
    }

    #[test]
    fn robust_run_is_deterministic_and_collects_counters() {
        let s = Scenario::paper(8, 13).with_horizon(6).with_bdma_rounds(1);
        let faults = eotora_core::fault::FaultSchedule::chaos_default(6, 16, 6);
        let robust = robust_config(&s, None);
        let a = run_robust(&s, &faults, &robust);
        let b = run_robust(&s, &faults, &robust);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.queue, b.queue);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.latency.len(), 6);
        assert!(a.counters.contains_key("slots"));
    }

    #[test]
    fn corrupt_bursts_drive_the_substitution_counter() {
        let s = Scenario::paper(8, 14).with_horizon(8).with_bdma_rounds(1);
        let faults = eotora_core::fault::FaultSchedule {
            events: vec![eotora_core::fault::FaultEvent {
                slot: 2,
                action: eotora_core::fault::FaultAction::CorruptState { slots: 3 },
            }],
        };
        let r = run_robust(&s, &faults, &robust_config(&s, None));
        let subs = r.counters.get("fault.state_substitutions").copied().unwrap_or(0);
        assert!(subs >= 3, "expected at least one substitution per burst slot, got {subs}");
        assert!(r.latency.values().iter().all(|&l| l.is_finite() && l > 0.0));
    }

    #[test]
    fn zero_deadline_expires_every_slot() {
        let s = Scenario::paper(8, 15).with_horizon(5).with_bdma_rounds(2);
        let faults = eotora_core::fault::FaultSchedule::default();
        let robust = robust_config(&s, Some(std::time::Duration::ZERO));
        let r = run_robust(&s, &faults, &robust);
        assert_eq!(r.counters.get("deadline.expirations").copied().unwrap_or(0), 5);
        assert!(r.latency.values().iter().all(|&l| l.is_finite() && l > 0.0));
    }

    #[test]
    fn speculative_zero_hit_run_matches_plain() {
        use eotora_core::speculate::PredictorKind;
        let s = Scenario::paper(8, 33).with_horizon(8).with_bdma_rounds(1);
        let spec = SpeculativeConfig {
            predictor: PredictorKind::Adversarial,
            tolerance: 0.0,
            stage_when_busy: true,
            ..Default::default()
        };
        let speculative = run_speculative(&s, &spec);
        let plain = run(&s);
        assert_eq!(speculative.latency, plain.latency);
        assert_eq!(speculative.cost, plain.cost);
        assert_eq!(speculative.queue, plain.queue);
        assert_eq!(speculative.handover_rate, plain.handover_rate);
        assert_eq!(speculative.average_latency, plain.average_latency);
        assert_eq!(speculative.counters.get("spec.hits").copied().unwrap_or(0), 0);
        // Slot 0 has no history to stage from; slots 1..7 all miss.
        assert_eq!(speculative.counters.get("spec.misses").copied().unwrap_or(0), 8);
        assert!(!plain.counters.contains_key("spec.misses"));
    }

    #[test]
    fn speculative_periodic_run_hits_and_matches_plain() {
        use eotora_core::speculate::PredictorKind;
        let s = Scenario::periodic_price(8, 34).with_horizon(40).with_bdma_rounds(1);
        let spec = SpeculativeConfig {
            predictor: PredictorKind::PeriodicPrice { period: 24 },
            tolerance: 0.0,
            stage_when_busy: true,
            ..Default::default()
        };
        let speculative = run_speculative(&s, &spec);
        let plain = run(&s);
        assert_eq!(speculative.latency, plain.latency);
        assert_eq!(speculative.queue, plain.queue);
        assert_eq!(speculative.counters.get("spec.hits").copied().unwrap_or(0), 16);
        // The staged-solve span shows up as a per-stage series; the
        // critical-path slot_solve series stays separate.
        assert!(speculative.per_stage_solve_time.contains_key("spec.staged_solve"));
    }

    #[test]
    fn converged_queue_uses_tail() {
        let r = run(&Scenario::paper(6, 3).with_horizon(8).with_bdma_rounds(1));
        let w = r.converged_queue(3);
        let vals = r.queue.values();
        let manual = vals[5..].iter().sum::<f64>() / 3.0;
        assert!((w - manual).abs() < 1e-12);
    }
}
