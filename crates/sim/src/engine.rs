//! The reusable per-slot step driver shared by every engine front-end.
//!
//! [`StepDriver`] owns one controller's complete solving state — the DPP
//! controller, sanitizer, corruption RNG, optional speculator, metrics
//! recorder, and optional durable session — and exposes a single
//! [`StepDriver::step`]: feed it the observed `β_t`, get back the slot's
//! decision summary. The batch `run_engine` loop drives it for
//! `scenario.horizon` slots from a `StateProvider`; the `eotora-server`
//! daemon drives the *same* driver from a JSONL stream with no horizon
//! (`DriverTuning::horizon = u64::MAX`), which is what makes the server's
//! decision stream bit-identical to the batch CSV by construction.
//!
//! The per-slot sequencing inside [`StepDriver::step`] — mode dispatch,
//! counter/event emission, series pushes, journal append, snapshot
//! cadence, kill hook, speculative staging — is the exact order the
//! pre-extraction `run_engine` used; the kill–resume chaos tests pin that
//! order (a snapshot is counted *before* its counters are captured, the
//! journal is synced *before* the snapshot lands, staging happens only
//! after the slot is fully committed).

use std::collections::BTreeMap;

use eotora_core::dpp::EotoraDpp;
use eotora_core::fault::FaultSchedule;
use eotora_core::latency::latency_under;
use eotora_core::robust::RobustConfig;
use eotora_core::sanitize::StateSanitizer;
use eotora_core::speculate::{SpeculativeConfig, Speculator};
use eotora_core::system::MecSystem;
use eotora_durability::{DurabilityError, SlotRecord};
use eotora_obs::{MetricsRecorder, Recorder, SpanGuard, TeeRecorder, TraceEvent};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;
use eotora_util::series::TimeSeries;

use crate::durable::{DurableSession, ResumeState, RunSnapshot};
use crate::scenario::Scenario;

/// Which per-slot pipeline the driver runs. Owned (unlike the borrowed
/// pre-extraction `EngineMode`) so a long-lived driver — the server —
/// can hold and hot-patch it across reloads.
pub enum DriverMode {
    /// The plain DPP step ([`crate::run`]).
    Plain,
    /// The fault-tolerant step ([`crate::run_robust`]): corruption
    /// injection, sanitization, availability masking, anytime deadline.
    Robust {
        /// Scripted fault trace (empty on the server — real deployments
        /// get their faults from the world, not a script).
        faults: FaultSchedule,
        /// Robust-solve configuration (deadline, rounds, λ).
        robust: RobustConfig,
    },
    /// The speculative step ([`crate::runner::run_speculative`]): a
    /// predicted next-slot pre-solve staged between slots, repaired or
    /// discarded at slot start.
    Speculative {
        /// Predictor, tolerance, and staging deadline.
        spec: SpeculativeConfig,
    },
}

/// Front-end knobs that do not change decisions.
#[derive(Debug, Clone, Default)]
pub struct DriverTuning {
    /// Overrides the scenario horizon (`None` → `scenario.horizon`). The
    /// server passes `Some(u64::MAX)` so the driver never self-terminates
    /// while the manifest keeps the scenario's real horizon.
    pub horizon: Option<u64>,
    /// Bounded-memory mode for long-running processes: the metrics
    /// recorder keeps only the last slot's per-slot series
    /// ([`MetricsRecorder::bounded`]) and the driver skips accumulating
    /// the whole-run `TimeSeries`. [`StepDriver::finish`] then returns
    /// empty series — the server never calls it.
    pub bounded: bool,
}

/// One completed slot, as the caller sees it: everything needed to emit
/// a decision record or a CSV row. All fields are decision-derived and
/// deterministic except `solve_time_s` (wall clock).
#[derive(Debug, Clone)]
pub struct StepReport {
    /// The slot just solved.
    pub slot: u64,
    /// Fleet latency `T_t` (seconds).
    pub latency_s: f64,
    /// Energy cost `C_t` (dollars).
    pub cost_usd: f64,
    /// Virtual-queue backlog `Q(t+1)` after the slot.
    pub queue: f64,
    /// Electricity price `p_t` observed ($/kWh).
    pub price: f64,
    /// Wall-clock solve time (seconds; not deterministic).
    pub solve_time_s: f64,
    /// Jain's fairness index of per-device latencies.
    pub fairness: f64,
    /// Fraction of devices that changed base station vs the previous slot.
    pub handover_rate: f64,
    /// Fleet mean clock frequency (GHz).
    pub mean_clock_ghz: f64,
    /// BDMA alternation rounds executed (0 if BDMA never ran).
    pub rounds_used: f64,
    /// Chosen base station per device.
    pub stations: Vec<u32>,
    /// Whether the durable session's kill hook fired after this slot
    /// (the slot itself is fully committed; the driver must be dropped).
    pub interrupted: bool,
}

/// The engine behind every entry point: batch loops and the server
/// daemon both solve slots exclusively through [`StepDriver::step`].
pub struct StepDriver<'s> {
    label: String,
    horizon: u64,
    v: f64,
    budget: f64,
    metrics: MetricsRecorder,
    sink: Option<&'s dyn Recorder>,
    dpp: EotoraDpp,
    sanitizer: StateSanitizer,
    speculator: Option<Speculator>,
    mode: DriverMode,
    corrupt_rng: Pcg32,
    session: Option<DurableSession>,
    base_counters: BTreeMap<String, u64>,
    head: Vec<SlotRecord>,
    cursor: u64,
    journal_frames: u64,
    last_snapshot_slots: u64,
    previous_stations: Option<Vec<usize>>,
    retain_series: bool,
    latency: TimeSeries,
    cost: TimeSeries,
    queue: TimeSeries,
    price: TimeSeries,
    solve_time: TimeSeries,
    fairness: TimeSeries,
    handover_rate: TimeSeries,
    mean_clock_ghz: TimeSeries,
}

impl<'s> StepDriver<'s> {
    /// Builds a driver, performing the resume bootstrap if `session`
    /// carries resume state: the controller, sanitizer, and corruption
    /// RNG restore from the snapshot, the journal head replays into the
    /// series, and [`StepDriver::cursor`] starts past the restored slots.
    /// The caller owns fast-forwarding its state *source* to the cursor
    /// (batch re-observes the replayed slots and feeds
    /// [`StepDriver::replay_observe`], then calls
    /// [`StepDriver::restage`]; the server's clients resend from the
    /// cursor).
    pub fn new(
        scenario: &Scenario,
        system: MecSystem,
        mode: DriverMode,
        mut session: Option<DurableSession>,
        sink: Option<&'s dyn Recorder>,
        tuning: DriverTuning,
    ) -> Self {
        let budget = system.budget_per_slot();
        let horizon = tuning.horizon.unwrap_or(scenario.horizon);
        let retain_series = !tuning.bounded;
        let metrics =
            if tuning.bounded { MetricsRecorder::bounded() } else { MetricsRecorder::new() };

        // Resume bootstrap: restore controller + sanitizer + corruption
        // RNG from the snapshot and replay the journal head.
        let resume = session.as_mut().and_then(DurableSession::take_resume);
        let dpp = match resume.as_ref().and_then(|state| state.snapshot.as_ref()) {
            Some(snapshot) => EotoraDpp::resume_full(system, &snapshot.controller),
            None => EotoraDpp::new(system, scenario.dpp),
        };
        let mut sanitizer = StateSanitizer::new();
        let speculator = match &mode {
            DriverMode::Speculative { spec } => Some(Speculator::new(*spec, scenario.dpp.seed)),
            _ => None,
        };
        let mut corrupt_rng = Pcg32::seed_stream(scenario.seed, 0xFA117);
        let mut cursor = 0u64;
        let mut journal_frames = 0u64;
        let mut base_counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut head: Vec<SlotRecord> = Vec::new();
        if let Some(state) = resume {
            let tee;
            let recorder: &dyn Recorder = match sink {
                Some(sink) => {
                    tee = TeeRecorder::new(&metrics, sink);
                    &tee
                }
                None => &metrics,
            };
            let ResumeState { snapshot, head: records, torn_frames_dropped, frames_discarded } =
                state;
            if let Some(RunSnapshot {
                slots,
                frames,
                sanitizer: sanitizer_snap,
                corrupt_rng: rng,
                counters,
                ..
            }) = snapshot
            {
                sanitizer = StateSanitizer::restore(&sanitizer_snap);
                corrupt_rng = rng;
                cursor = slots;
                journal_frames = frames;
                base_counters = counters;
                head = records;
                recorder.add(eotora_obs::COUNTER_DURABILITY_RESUMED, cursor);
            }
            if torn_frames_dropped > 0 {
                recorder.add(eotora_obs::COUNTER_DURABILITY_TORN, torn_frames_dropped);
            }
            if frames_discarded > 0 {
                recorder.add(eotora_obs::COUNTER_DURABILITY_DISCARDED, frames_discarded);
            }
        }

        let mut latency = TimeSeries::new("latency_s");
        let mut cost = TimeSeries::new("cost_usd");
        let mut queue = TimeSeries::new("queue_backlog");
        let mut price = TimeSeries::new("price_usd_per_kwh");
        let mut solve_time = TimeSeries::new("solve_time_s");
        let mut fairness = TimeSeries::new("jains_index");
        let mut handover_rate = TimeSeries::new("handover_rate");
        let mut mean_clock_ghz = TimeSeries::new("mean_clock_ghz");
        if retain_series {
            for rec in &head {
                latency.push(rec.latency_s);
                cost.push(rec.cost_usd);
                queue.push(rec.queue);
                price.push(rec.price);
                solve_time.push(rec.solve_time_s);
                fairness.push(rec.fairness);
                handover_rate.push(rec.handover_rate);
                mean_clock_ghz.push(rec.mean_clock_ghz);
            }
        }
        let previous_stations: Option<Vec<usize>> =
            head.last().map(|rec| rec.stations.iter().map(|&s| s as usize).collect());

        StepDriver {
            label: scenario.label.clone(),
            horizon,
            v: scenario.dpp.v,
            budget,
            metrics,
            sink,
            dpp,
            sanitizer,
            speculator,
            mode,
            corrupt_rng,
            session,
            base_counters,
            last_snapshot_slots: cursor,
            head,
            cursor,
            journal_frames,
            previous_stations,
            retain_series,
            latency,
            cost,
            queue,
            price,
            solve_time,
            fairness,
            handover_rate,
            mean_clock_ghz,
        }
    }

    /// The next slot this driver will solve (> 0 after a resume).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The slot bound this driver runs to (`u64::MAX` on the server).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The budget `C̄` in force ($/slot).
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Re-targets the controller's per-slot budget `C̄` mid-run — the
    /// federation rebalance hook. Takes effect from the next solved slot:
    /// the virtual-queue drift and the reported `cost_usd` both read the
    /// budget in force at each slot, so already-committed slots are
    /// untouched.
    pub fn set_budget_per_slot(&mut self, budget_per_slot: f64) {
        self.budget = budget_per_slot;
        self.dpp.set_budget_per_slot(budget_per_slot);
    }

    /// The controller's current virtual-queue level `Q(t)` — the signal
    /// federated regions gossip to each other.
    pub fn queue_backlog(&self) -> f64 {
        self.dpp.queue_backlog()
    }

    /// Bumps a monotonic counter through the driver's recorder stack
    /// (metrics plus any external sink), so out-of-band orchestration
    /// events — federation gossip, rebalances — land in the same counter
    /// exports as the solve pipeline's own.
    pub fn add_counter(&self, name: &str, delta: u64) {
        self.metrics.add(name, delta);
        if let Some(sink) = self.sink {
            sink.add(name, delta);
        }
    }

    /// The topology the controller runs on (for observing states).
    pub fn topology(&self) -> &eotora_topology::Topology {
        self.dpp.system().topology()
    }

    /// The in-memory metrics recorder (counters, spans, last-slot stats).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.metrics
    }

    /// Every monotonic counter's current total, including counters
    /// restored from a resume snapshot.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let mut counters = self.base_counters.clone();
        for (name, value) in self.metrics.counters() {
            *counters.entry(name).or_insert(0) += value;
        }
        counters
    }

    /// Feeds one replayed historical state to the predictor during the
    /// post-resume fast-forward (no-op outside speculative mode).
    pub fn replay_observe(&mut self, state: &SystemState) {
        if let Some(spec) = self.speculator.as_mut() {
            spec.observe(state);
        }
    }

    /// Re-stages the speculative pre-solve a resumed run had in flight
    /// (staging is a pure function of the restored controller state and
    /// the replayed history). No-op outside speculative mode or when
    /// nothing was replayed.
    pub fn restage(&mut self) {
        if self.cursor == 0 || self.cursor >= self.horizon {
            return;
        }
        let tee;
        let recorder: &dyn Recorder = match self.sink {
            Some(sink) => {
                tee = TeeRecorder::new(&self.metrics, sink);
                &tee
            }
            None => &self.metrics,
        };
        if let Some(spec) = self.speculator.as_mut() {
            spec.stage_next(&mut self.dpp, recorder);
        }
    }

    /// Advances the cursor past unsolved slots — the server's overload
    /// escape hatch: when admission shedding dropped the states for slots
    /// `cursor..slot`, those slots are simply never solved, journaled, or
    /// counted (the virtual queue holds its value across the gap). The
    /// journal keeps its own frame count in the snapshot, so a resumed run
    /// replays exactly the solved slots. Forward only.
    ///
    /// # Panics
    ///
    /// Panics on a backward seek — that would re-solve committed slots.
    pub fn seek(&mut self, slot: u64) {
        assert!(slot >= self.cursor, "seek must move forward ({} -> {slot})", self.cursor);
        self.cursor = slot;
    }

    /// Hot-patches the anytime solve deadline (robust mode only; returns
    /// whether the mode accepted it). The server's config hot-reload uses
    /// this — deadline changes affect only degradation behavior, never
    /// the clean-path decisions.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> bool {
        match &mut self.mode {
            DriverMode::Robust { robust, .. } => {
                robust.deadline = deadline;
                true
            }
            _ => false,
        }
    }

    /// Solves one slot: the full committed pipeline — mode dispatch,
    /// metrics, series, journal append, due snapshot, kill hook,
    /// speculative staging. `input.slot` is trusted to equal
    /// [`StepDriver::cursor`] (the front-ends normalize or reject).
    pub fn step(&mut self, input: SystemState) -> Result<StepReport, DurabilityError> {
        let slot = self.cursor;
        let tee;
        let recorder: &dyn Recorder = match self.sink {
            Some(sink) => {
                tee = TeeRecorder::new(&self.metrics, sink);
                &tee
            }
            None => &self.metrics,
        };

        let beta;
        let dpp_step;
        let slot_nanos;
        match &self.mode {
            DriverMode::Plain => {
                beta = input;
                let slot_span = SpanGuard::new(recorder, eotora_obs::SPAN_SLOT_SOLVE);
                dpp_step = self.dpp.step_with(&beta, recorder);
                slot_nanos = slot_span.finish().unwrap_or(0);
            }
            DriverMode::Robust { faults, robust } => {
                let mut observed = input;
                if faults.corrupt_at(slot) {
                    corrupt_state(&mut observed, &mut self.corrupt_rng);
                }
                if robust.sanitize {
                    let (clean, substitutions) = self.sanitizer.sanitize(&observed);
                    if substitutions > 0 {
                        recorder.add(eotora_obs::COUNTER_FAULT_STATE_SUBSTITUTIONS, substitutions);
                    }
                    beta = clean;
                } else {
                    // Diagnostic mode: let corrupt observations reach the
                    // solver so the robust ladder (and its postmortem
                    // triggers) can be exercised deterministically.
                    beta = observed;
                }
                let mask = faults.mask_at(slot);
                let slot_span = SpanGuard::new(recorder, eotora_obs::SPAN_SLOT_SOLVE);
                let (robust_step, _report) = self.dpp.step_robust(&beta, &mask, robust, recorder);
                dpp_step = robust_step;
                slot_nanos = slot_span.finish().unwrap_or(0);
            }
            DriverMode::Speculative { .. } => {
                beta = input;
                let spec = self.speculator.as_mut().expect("speculative mode built a speculator");
                spec.observe(&beta);
                // The critical path is only the repair pass: a hit adopts
                // the staged solve, a miss falls back to the plain solve.
                let slot_span = SpanGuard::new(recorder, eotora_obs::SPAN_SLOT_SOLVE);
                let (spec_step, _outcome) = spec.repair_and_step(&mut self.dpp, &beta, recorder);
                dpp_step = spec_step;
                slot_nanos = slot_span.finish().unwrap_or(0);
            }
        }
        recorder.add(eotora_obs::COUNTER_SLOTS, 1);
        recorder.record(&TraceEvent::Slot {
            slot,
            objective: self.v * dpp_step.outcome.objective
                + dpp_step.queue_before * dpp_step.outcome.constraint_excess,
            latency: dpp_step.outcome.objective,
            cost: dpp_step.outcome.constraint_excess + self.budget,
            queue: dpp_step.queue_after,
        });
        let breakdown = latency_under(self.dpp.system(), &beta, &dpp_step.outcome.decision);
        let fair = eotora_util::stats::jains_index(&breakdown.per_device).unwrap_or(1.0);
        let stations: Vec<usize> =
            dpp_step.outcome.decision.assignments.iter().map(|a| a.base_station.index()).collect();
        let handover = match &self.previous_stations {
            Some(prev) => {
                prev.iter().zip(&stations).filter(|(a, b)| a != b).count() as f64
                    / stations.len() as f64
            }
            None => 0.0,
        };
        let freqs = &dpp_step.outcome.decision.frequencies_hz;
        let clock = freqs.iter().sum::<f64>() / freqs.len() as f64 / 1e9;
        if self.retain_series {
            self.solve_time.push(slot_nanos as f64 / 1e9);
            self.latency.push(dpp_step.outcome.objective);
            self.cost.push(dpp_step.outcome.constraint_excess + self.budget);
            self.queue.push(dpp_step.queue_after);
            self.price.push(beta.price_per_kwh);
            self.fairness.push(fair);
            self.handover_rate.push(handover);
            self.mean_clock_ghz.push(clock);
        }
        let mut report = StepReport {
            slot,
            latency_s: dpp_step.outcome.objective,
            cost_usd: dpp_step.outcome.constraint_excess + self.budget,
            queue: dpp_step.queue_after,
            price: beta.price_per_kwh,
            solve_time_s: slot_nanos as f64 / 1e9,
            fairness: fair,
            handover_rate: handover,
            mean_clock_ghz: clock,
            rounds_used: self.metrics.last_slot_rounds().unwrap_or(0.0),
            stations: stations.iter().map(|&s| s as u32).collect(),
            interrupted: false,
        };

        if let Some(session) = self.session.as_mut() {
            // The Slot event above closed the slot in the metrics recorder,
            // so the last-slot stage and rounds readouts are this slot's.
            let record = SlotRecord {
                slot,
                latency_s: report.latency_s,
                cost_usd: report.cost_usd,
                queue: report.queue,
                price: report.price,
                solve_time_s: report.solve_time_s,
                fairness: report.fairness,
                handover_rate: report.handover_rate,
                mean_clock_ghz: report.mean_clock_ghz,
                rounds_used: report.rounds_used,
                stations: report.stations.clone(),
                stages: self
                    .metrics
                    .last_slot_stages()
                    .into_iter()
                    .filter(|(name, _)| name != eotora_obs::SPAN_SLOT_SOLVE)
                    .collect(),
            };
            // Journal latency spans go to the *sink only*: routing them
            // through the aggregating recorder would perturb per-stage
            // series and resumed-run counter identity.
            match self.sink {
                Some(sink) => {
                    let span = SpanGuard::new(sink, eotora_obs::SPAN_JOURNAL_APPEND);
                    session.journal_slot(&record)?;
                    span.finish();
                    if let Some(nanos) = session.take_sync_nanos() {
                        sink.span_ns(eotora_obs::SPAN_JOURNAL_FSYNC, nanos);
                    }
                }
                None => session.journal_slot(&record)?,
            }
            recorder.add(eotora_obs::COUNTER_DURABILITY_FRAMES, 1);
            self.journal_frames += 1;
            let completed = slot + 1;
            if session.checkpoint_due(completed, self.horizon) {
                // Count the snapshot *before* capturing counters so resumed
                // totals match the uninterrupted run's.
                recorder.add(eotora_obs::COUNTER_DURABILITY_SNAPSHOTS, 1);
                write_checkpoint(
                    session,
                    self.sink,
                    completed,
                    self.journal_frames,
                    &self.dpp,
                    &self.sanitizer,
                    &self.corrupt_rng,
                    &self.base_counters,
                    &self.metrics,
                )?;
                self.last_snapshot_slots = completed;
            }
            if session.should_kill(slot) {
                self.cursor = slot + 1;
                report.interrupted = true;
                return Ok(report);
            }
        }
        // Stage the next slot's pre-solve in the inter-slot gap, after the
        // slot is fully committed (journal included): the staged clone then
        // sees exactly the queue/RNG/workspace the next solve would, and a
        // crash between slots loses only speculation, never state.
        if slot + 1 < self.horizon {
            if let Some(spec) = self.speculator.as_mut() {
                spec.stage_next(&mut self.dpp, recorder);
            }
        }
        self.previous_stations = Some(stations);
        self.cursor = slot + 1;
        Ok(report)
    }

    /// Writes a snapshot of the current state *now*, outside the regular
    /// cadence — the graceful-shutdown path (SIGTERM/SIGINT, EOF). Syncs
    /// the journal first, exactly like an in-loop checkpoint. Returns
    /// `false` without touching disk when there is no durable session,
    /// nothing has completed, or the latest cadence snapshot already
    /// covers the cursor (so a shutdown on a checkpoint boundary is a
    /// no-op and resumed counter totals stay deterministic).
    pub fn checkpoint_now(&mut self) -> Result<bool, DurabilityError> {
        if self.cursor == 0 || self.last_snapshot_slots == self.cursor {
            return Ok(false);
        }
        let Some(session) = self.session.as_mut() else {
            return Ok(false);
        };
        let tee;
        let recorder: &dyn Recorder = match self.sink {
            Some(sink) => {
                tee = TeeRecorder::new(&self.metrics, sink);
                &tee
            }
            None => &self.metrics,
        };
        recorder.add(eotora_obs::COUNTER_DURABILITY_SNAPSHOTS, 1);
        write_checkpoint(
            session,
            self.sink,
            self.cursor,
            self.journal_frames,
            &self.dpp,
            &self.sanitizer,
            &self.corrupt_rng,
            &self.base_counters,
            &self.metrics,
        )?;
        self.last_snapshot_slots = self.cursor;
        Ok(true)
    }

    /// Folds the driver into a [`SimulationResult`](crate::runner::SimulationResult): stitches the
    /// replayed journal head with the live slots so per-stage series,
    /// `rounds_used`, and the BDMA-round mean are bit-identical to an
    /// uninterrupted run.
    pub fn finish(self) -> crate::runner::SimulationResult {
        use std::collections::BTreeSet;

        let metrics = &self.metrics;
        let head = &self.head;
        // Stitch per-stage series: replayed head first, then the live run.
        // Stages absent on one side zero-pad, keeping every series aligned
        // (one entry per slot).
        let live_stages: BTreeMap<String, Vec<f64>> = metrics
            .stage_series()
            .into_iter()
            .filter(|(name, _)| name != eotora_obs::SPAN_SLOT_SOLVE)
            .collect();
        let live_len = metrics.slots() as usize;
        let mut stage_names: BTreeSet<String> = live_stages.keys().cloned().collect();
        for rec in head {
            for (name, _) in &rec.stages {
                stage_names.insert(name.clone());
            }
        }
        let per_stage_solve_time = stage_names
            .into_iter()
            .map(|name| {
                let mut series = TimeSeries::new(&name);
                for rec in head {
                    series
                        .push(rec.stages.iter().find(|(n, _)| n == &name).map_or(0.0, |&(_, v)| v));
                }
                match live_stages.get(&name) {
                    Some(values) => {
                        for &v in values {
                            series.push(v);
                        }
                    }
                    None => {
                        for _ in 0..live_len {
                            series.push(0.0);
                        }
                    }
                }
                (name, series)
            })
            .collect();

        let mut rounds_used = TimeSeries::new("bdma_rounds");
        for rec in head {
            rounds_used.push(rec.rounds_used);
        }
        for r in metrics.bdma_rounds_series() {
            rounds_used.push(r);
        }
        let mean_bdma_rounds = if head.is_empty() {
            metrics.mean_bdma_rounds().unwrap_or(0.0)
        } else {
            // Recompute over the stitched series with the histogram's exact
            // integer arithmetic (u128 sum of integral round counts over
            // BDMA-active slots), so a resumed run's mean matches the
            // uninterrupted run bit-for-bit.
            let mut sum: u128 = 0;
            let mut count: u64 = 0;
            for &r in rounds_used.values() {
                if r > 0.0 {
                    sum += r as u128;
                    count += 1;
                }
            }
            if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            }
        };

        let counters = self.counters();

        crate::runner::SimulationResult {
            label: self.label,
            average_latency: self.dpp.average_latency(),
            average_cost: self.dpp.average_cost(),
            latency: self.latency,
            cost: self.cost,
            queue: self.queue,
            price: self.price,
            solve_time: self.solve_time,
            fairness: self.fairness,
            handover_rate: self.handover_rate,
            mean_clock_ghz: self.mean_clock_ghz,
            per_stage_solve_time,
            rounds_used,
            mean_bdma_rounds,
            counters,
            budget: self.budget,
        }
    }
}

/// Syncs the journal and atomically rewrites the snapshot with the
/// driver's state as of `completed` slots (the caller counts the
/// snapshot in the recorder *before* calling, so the captured counters
/// include it).
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    session: &mut DurableSession,
    sink: Option<&dyn Recorder>,
    completed: u64,
    frames: u64,
    dpp: &EotoraDpp,
    sanitizer: &StateSanitizer,
    corrupt_rng: &Pcg32,
    base_counters: &BTreeMap<String, u64>,
    metrics: &MetricsRecorder,
) -> Result<(), DurabilityError> {
    let mut counters = base_counters.clone();
    for (name, value) in metrics.counters() {
        *counters.entry(name).or_insert(0) += value;
    }
    let snapshot = RunSnapshot {
        slots: completed,
        frames,
        controller: dpp.checkpoint_full(),
        sanitizer: sanitizer.snapshot(),
        corrupt_rng: corrupt_rng.clone(),
        counters,
    };
    match sink {
        Some(sink) => {
            let span = SpanGuard::new(sink, eotora_obs::SPAN_SNAPSHOT_WRITE);
            session.write_snapshot(&snapshot)?;
            span.finish();
            if let Some(nanos) = session.take_sync_nanos() {
                sink.span_ns(eotora_obs::SPAN_JOURNAL_FSYNC, nanos);
            }
        }
        None => session.write_snapshot(&snapshot)?,
    }
    Ok(())
}

/// Deterministically mangles a handful of state entries — the corruption
/// model behind `CorruptState` fault events: NaN task sizes, negative data
/// lengths, infinite spectral efficiencies, NaN prices.
fn corrupt_state(state: &mut SystemState, rng: &mut Pcg32) {
    let devices = state.task_cycles.len().max(1);
    for _ in 0..(1 + rng.below(3)) {
        match rng.below(4) {
            0 => state.task_cycles[rng.below(devices)] = f64::NAN,
            1 => state.data_bits[rng.below(devices)] = -1.0,
            2 => {
                let i = rng.below(state.spectral_efficiency.len().max(1));
                let row = &mut state.spectral_efficiency[i];
                let k = rng.below(row.len().max(1));
                row[k] = f64::INFINITY;
            }
            _ => state.price_per_kwh = f64::NAN,
        }
    }
}
