//! Plain-text rendering of experiment results: ASCII tables and CSV.

use crate::runner::SimulationResult;

/// Renders rows as an aligned ASCII table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// use eotora_sim::report::ascii_table;
///
/// let s = ascii_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
/// assert!(s.contains("| x | y |"));
/// ```
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let sep: String = {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&format!("{}-|", "-".repeat(w + 2 - 1)));
        }
        s.push('\n');
        s
    };
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Renders rows as CSV with the given header (no quoting — callers pass
/// numeric cells).
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "ragged CSV row");
    }
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders a run's per-slot series as CSV: the headline series plus
/// `bdma_rounds` (alternation rounds actually executed, which the warm
/// ε-termination can cut below the configured `z`), one `stage_<name>_s`
/// column per instrumented solver stage (seconds spent in `p2a`, `p2b`,
/// `queue_update`, ... each slot), and one constant `ctr_<name>` column
/// per end-of-run counter family in
/// [`eotora_obs::EXPORTED_COUNTER_FAMILIES`] — the event families a
/// post-hoc reader cannot reconstruct from the series.
pub fn slot_csv(result: &SimulationResult) -> String {
    let counters: Vec<(&String, &u64)> =
        result.counters.iter().filter(|(name, _)| eotora_obs::is_exported_counter(name)).collect();
    let mut header: Vec<String> =
        ["slot", "latency_s", "cost_usd", "queue", "price", "solve_time_s", "bdma_rounds"]
            .map(String::from)
            .to_vec();
    header.extend(result.per_stage_solve_time.keys().map(|name| format!("stage_{name}_s")));
    header.extend(counters.iter().map(|(name, _)| format!("ctr_{name}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..result.latency.len())
        .map(|t| {
            let mut row = vec![
                t.to_string(),
                result.latency.values()[t].to_string(),
                result.cost.values()[t].to_string(),
                result.queue.values()[t].to_string(),
                result.price.values()[t].to_string(),
                result.solve_time.values()[t].to_string(),
                result.rounds_used.values()[t].to_string(),
            ];
            row.extend(result.per_stage_solve_time.values().map(|s| s.values()[t].to_string()));
            row.extend(counters.iter().map(|(_, value)| value.to_string()));
            row
        })
        .collect();
    csv(&header_refs, &rows)
}

/// Formats a float with 4 significant-ish decimals for table cells.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["algo", "latency"],
            &[vec!["CGBA".into(), "1.5".into()], vec!["ROPT".into(), "10.25".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
    }

    #[test]
    fn csv_rendering() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        ascii_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn slot_csv_includes_stage_columns() {
        use crate::runner::run;
        use crate::scenario::Scenario;
        let r = run(&Scenario::paper(6, 11).with_horizon(3).with_bdma_rounds(1));
        let text = slot_csv(&r);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let header: Vec<&str> = lines[0].split(',').collect();
        for col in [
            "slot",
            "latency_s",
            "bdma_rounds",
            "stage_p2a_s",
            "stage_p2b_s",
            "stage_queue_update_s",
        ] {
            assert!(header.contains(&col), "missing column {col} in {header:?}");
        }
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), header.len());
        }
    }

    #[test]
    fn slot_csv_exports_event_counters() {
        use crate::runner::{robust_config, run_robust};
        use crate::scenario::Scenario;
        let s = Scenario::paper(6, 12).with_horizon(4).with_bdma_rounds(1);
        let faults = eotora_core::fault::FaultSchedule {
            events: vec![eotora_core::fault::FaultEvent {
                slot: 1,
                action: eotora_core::fault::FaultAction::CorruptState { slots: 2 },
            }],
        };
        let r = run_robust(&s, &faults, &robust_config(&s, None));
        let subs = r.counters["fault.state_substitutions"];
        assert!(subs > 0);
        let text = slot_csv(&r);
        let lines: Vec<&str> = text.lines().collect();
        let header: Vec<&str> = lines[0].split(',').collect();
        let col = header
            .iter()
            .position(|&c| c == "ctr_fault.state_substitutions")
            .expect("missing counter column");
        // Constant end-of-run value on every row, and no plain counters
        // (slots, bdma_rounds) exported as columns.
        for line in &lines[1..] {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), header.len());
            assert_eq!(cells[col], subs.to_string());
        }
        assert!(!header.contains(&"ctr_slots"));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1.5), "1.5000");
        assert!(num(12345.0).contains('e'));
        assert!(num(0.00001).contains('e'));
    }
}
