//! Simulation engine and experiment harnesses for the `eotora` workspace.
//!
//! Layers:
//!
//! * [`scenario`] — a serializable bundle of everything a run needs (system,
//!   states, controller, horizon, seeds).
//! * [`runner`] — executes a scenario slot by slot, collecting per-slot
//!   series (latency, energy cost, queue backlog, wall-clock solve time) and
//!   summarizing them; [`runner::run_many`] fans independent scenarios out
//!   over OS threads.
//! * [`experiments`] — one module per figure of the paper's evaluation
//!   (§VI): each returns plain data structs that the `figures` binary and
//!   the Criterion benches render. EXPERIMENTS.md records paper-vs-measured
//!   shapes for all of them.
//! * [`engine`] — the reusable per-slot [`engine::StepDriver`] every
//!   front-end solves through: the batch loops here and the
//!   `eotora-server` daemon share one engine, which is what makes their
//!   decision streams bit-identical.
//! * [`durable`] — crash-safe runs: checkpointed controller snapshots plus
//!   a checksummed write-ahead slot journal, with deterministic
//!   kill–resume ([`durable::run_durable`] / [`durable::resume_durable`]).
//! * [`federation`] — federated multi-region control: N per-region
//!   drivers sharing one fleet budget over an unreliable, checkpointable
//!   peer link ([`federation::run_federation`]).
//! * [`report`] — minimal ASCII-table and CSV rendering for those results.
//! * [`svg`] — dependency-free SVG line charts, so regenerated figures can
//!   be compared visually with the paper's.
//!
//! # Examples
//!
//! ```
//! use eotora_sim::scenario::Scenario;
//! use eotora_sim::runner::run;
//!
//! let scenario = Scenario::paper(12, 1).with_horizon(5);
//! let result = run(&scenario);
//! assert_eq!(result.latency.len(), 5);
//! assert!(result.latency.time_average() > 0.0);
//! ```

pub mod durable;
pub mod engine;
pub mod experiments;
pub mod federation;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod svg;

pub use durable::{
    open_session, resume_durable, run_durable, run_durable_robust, DurabilityConfig, DurableRun,
    DurableSession, RunManifest, MANIFEST_VERSION,
};
pub use engine::{DriverMode, DriverTuning, StepDriver, StepReport};
pub use federation::{
    read_federation_manifest, region_scenario, run_federation, run_standalone, FederationConfig,
    FederationManifest, FederationReport, FederationRun, FED_MANIFEST_VERSION,
};
pub use runner::{robust_config, run, run_many, run_robust, run_robust_traced, SimulationResult};
pub use scenario::Scenario;
