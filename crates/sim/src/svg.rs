//! Dependency-free SVG line charts for experiment series.
//!
//! The `figures` binary prints ASCII tables; this module additionally emits
//! standalone SVG plots (one polyline per series, axes, ticks, legend) so
//! the regenerated figures can be *looked at* next to the paper's. Pure
//! string generation — testable and deterministic.

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples; need not be sorted, but typically are.
    pub points: Vec<(f64, f64)>,
}

/// Chart-level options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgChart {
    /// Title rendered at the top.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for SvgChart {
    fn default() -> Self {
        Self {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 420,
        }
    }
}

const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// Renders a line chart as an SVG document.
///
/// # Panics
///
/// Panics if no series contains a point or any coordinate is non-finite.
///
/// # Examples
///
/// ```
/// use eotora_sim::svg::{render_line_chart, SvgChart, SvgSeries};
///
/// let svg = render_line_chart(
///     &SvgChart { title: "queue".into(), ..Default::default() },
///     &[SvgSeries { label: "V=50".into(), points: vec![(0.0, 0.0), (1.0, 2.0)] }],
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
pub fn render_line_chart(chart: &SvgChart, series: &[SvgSeries]) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");
    assert!(all.iter().all(|&(x, y)| x.is_finite() && y.is_finite()), "non-finite coordinate");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges become unit boxes around the value.
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    // Pad y for readability; anchor at zero when data is non-negative.
    if y_min > 0.0 && y_min < 0.3 * y_max {
        y_min = 0.0;
    }
    let (w, h) = (chart.width as f64, chart.height as f64);
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\" font-size=\"12\">\n",
        chart.width, chart.height, chart.width, chart.height
    ));
    out.push_str(&format!(
        "<rect width=\"{}\" height=\"{}\" fill=\"white\"/>\n",
        chart.width, chart.height
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
        w / 2.0,
        escape(&chart.title)
    ));

    // Axes.
    out.push_str(&format!(
        "<line x1=\"{MARGIN_L}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>\n",
        h - MARGIN_B,
        w - MARGIN_R,
        h - MARGIN_B
    ));
    out.push_str(&format!(
        "<line x1=\"{MARGIN_L}\" y1=\"{MARGIN_T}\" x2=\"{MARGIN_L}\" y2=\"{}\" stroke=\"black\"/>\n",
        h - MARGIN_B
    ));

    // Ticks: 5 per axis with value labels.
    for i in 0..=4 {
        let fx = i as f64 / 4.0;
        let xv = x_min + fx * (x_max - x_min);
        let yv = y_min + fx * (y_max - y_min);
        let px = sx(xv);
        let py = sy(yv);
        out.push_str(&format!(
            "<line x1=\"{px}\" y1=\"{}\" x2=\"{px}\" y2=\"{}\" stroke=\"black\"/>\n",
            h - MARGIN_B,
            h - MARGIN_B + 4.0
        ));
        out.push_str(&format!(
            "<text x=\"{px}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            h - MARGIN_B + 18.0,
            tick(xv)
        ));
        out.push_str(&format!(
            "<line x1=\"{}\" y1=\"{py}\" x2=\"{MARGIN_L}\" y2=\"{py}\" stroke=\"black\"/>\n",
            MARGIN_L - 4.0
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 8.0,
            py + 4.0,
            tick(yv)
        ));
    }
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_L + plot_w / 2.0,
        h - 8.0,
        escape(&chart.x_label)
    ));
    out.push_str(&format!(
        "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 14 {})\">{}</text>\n",
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(&chart.y_label)
    ));

    // Series polylines + legend.
    for (idx, s) in series.iter().enumerate() {
        let color = PALETTE[idx % PALETTE.len()];
        let pts: Vec<String> =
            s.points.iter().map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y))).collect();
        out.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\" points=\"{}\"/>\n",
            pts.join(" ")
        ));
        let ly = MARGIN_T + 6.0 + idx as f64 * 16.0;
        out.push_str(&format!(
            "<line x1=\"{}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            w - MARGIN_R - 120.0,
            w - MARGIN_R - 96.0
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">{}</text>\n",
            w - MARGIN_R - 90.0,
            ly + 4.0,
            escape(&s.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

fn tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> SvgChart {
        SvgChart {
            title: "Q(t) vs t".into(),
            x_label: "slot".into(),
            y_label: "backlog".into(),
            ..Default::default()
        }
    }

    #[test]
    fn renders_all_series_points() {
        let svg = render_line_chart(
            &chart(),
            &[
                SvgSeries {
                    label: "V=50".into(),
                    points: (0..10).map(|t| (t as f64, t as f64 * 2.0)).collect(),
                },
                SvgSeries {
                    label: "V=100".into(),
                    points: (0..10).map(|t| (t as f64, t as f64 * 3.0)).collect(),
                },
            ],
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("V=50") && svg.contains("V=100"));
        assert!(svg.contains("Q(t) vs t"));
        // First polyline has 10 coordinate pairs.
        let poly = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        assert_eq!(poly.split(' ').count(), 10);
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg = render_line_chart(
            &chart(),
            &[SvgSeries { label: "s".into(), points: vec![(0.0, -5.0), (100.0, 5.0)] }],
        );
        let poly = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        for pair in poly.split(' ') {
            let (x, y) = pair.split_once(',').unwrap();
            let (x, y): (f64, f64) = (x.parse().unwrap(), y.parse().unwrap());
            assert!((0.0..=720.0).contains(&x));
            assert!((0.0..=420.0).contains(&y));
        }
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let svg = render_line_chart(
            &chart(),
            &[SvgSeries { label: "flat".into(), points: vec![(1.0, 3.0), (1.0, 3.0)] }],
        );
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut c = chart();
        c.title = "a < b & c".into();
        let svg =
            render_line_chart(&c, &[SvgSeries { label: "<s>".into(), points: vec![(0.0, 1.0)] }]);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("&lt;s&gt;"));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_panics() {
        render_line_chart(&chart(), &[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        render_line_chart(
            &chart(),
            &[SvgSeries { label: "x".into(), points: vec![(0.0, f64::NAN)] }],
        );
    }
}
