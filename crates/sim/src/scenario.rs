//! Scenario definition: one self-contained, reproducible simulation run.

use eotora_core::dpp::DppConfig;
use eotora_core::system::SystemConfig;
use eotora_states::PaperStateConfig;
use serde::{Deserialize, Serialize};

/// Everything needed to reproduce a run: system, states, controller, length.
///
/// Serializable so experiment configurations can be stored alongside their
/// results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label shown in reports.
    pub label: String,
    /// System-instance generator configuration.
    pub system: SystemConfig,
    /// State-process configuration.
    pub states: PaperStateConfig,
    /// Online-controller configuration.
    pub dpp: DppConfig,
    /// Number of slots to simulate.
    pub horizon: u64,
    /// Master seed: system, states, and solver seeds derive from it.
    pub seed: u64,
}

impl Scenario {
    /// The paper's default setup with `num_devices` devices.
    pub fn paper(num_devices: usize, seed: u64) -> Self {
        Self {
            label: format!("paper-I{num_devices}"),
            system: SystemConfig::paper_defaults(num_devices),
            states: PaperStateConfig::default(),
            dpp: DppConfig { seed, ..Default::default() },
            horizon: 240,
            seed,
        }
    }

    /// A scale-out setup: `islands` disjoint BS clusters (see
    /// [`eotora_topology::RandomTopologyConfig::scale_up`]) with
    /// `num_devices` spread round-robin. The resource graph separates into
    /// one component per island, so `with_shards` turns the slot solve into
    /// `islands` parallel CGBA subgames. Used by the 10k–100k benches.
    pub fn scale_up(num_devices: usize, islands: usize, seed: u64) -> Self {
        Self {
            label: format!("scale-I{num_devices}x{islands}"),
            system: eotora_core::system::SystemConfig {
                topology: eotora_topology::RandomTopologyConfig::scale_up(num_devices, islands),
                ..SystemConfig::paper_defaults(num_devices)
            },
            states: PaperStateConfig::default(),
            dpp: DppConfig { seed, ..Default::default() },
            horizon: 240,
            seed,
        }
    }

    /// The paper's system with fully deterministic states where only the
    /// noiseless periodic price trend varies (see
    /// [`PaperStateConfig::periodic_price`]). After one full price period a
    /// periodic-price predictor forecasts every slot exactly, so this is
    /// the best case for the speculative pre-solve — the speculation bench
    /// and CI smoke run on it.
    pub fn periodic_price(num_devices: usize, seed: u64) -> Self {
        Self {
            label: format!("periodic-I{num_devices}"),
            system: SystemConfig::paper_defaults(num_devices),
            states: PaperStateConfig::periodic_price(),
            dpp: DppConfig { seed, ..Default::default() },
            horizon: 240,
            seed,
        }
    }

    /// Switches the P2-A solver to the sharded CGBA engine, keeping the
    /// current solver's λ. `shards == 0` means one shard per connected
    /// component (auto); on topologies the partition pass refuses to cut,
    /// the sharded solver degrades to the sequential one.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let lambda = match self.dpp.solver {
            eotora_core::dpp::SolverKind::Cgba { lambda }
            | eotora_core::dpp::SolverKind::ShardedCgba { lambda, .. } => lambda,
            _ => 0.0,
        };
        self.dpp.solver = eotora_core::dpp::SolverKind::ShardedCgba { lambda, shards };
        self
    }

    /// Sets the simulation length in slots.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the DPP penalty weight `V`.
    pub fn with_v(mut self, v: f64) -> Self {
        self.dpp.v = v;
        self
    }

    /// Sets the energy budget `C̄` ($/slot).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.system.budget_per_slot = budget;
        self
    }

    /// Sets the P2-A solver variant.
    pub fn with_solver(mut self, solver: eotora_core::dpp::SolverKind) -> Self {
        self.dpp.solver = solver;
        self
    }

    /// Sets the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the BDMA round count `z`.
    pub fn with_bdma_rounds(mut self, rounds: usize) -> Self {
        self.dpp.bdma_rounds = rounds;
        self
    }

    /// Sets the cross-slot warm-start policy (`Cold`, the default,
    /// reproduces the pre-warm-start solver bit for bit).
    pub fn with_start_policy(mut self, start: eotora_core::bdma::StartPolicy) -> Self {
        self.dpp.start = start;
        self
    }

    /// Sets the relative BDMA early-termination threshold `ε` (only
    /// consulted under warm starts).
    pub fn with_bdma_epsilon(mut self, epsilon: f64) -> Self {
        self.dpp.bdma_epsilon = epsilon;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_core::dpp::SolverKind;

    #[test]
    fn builder_chain() {
        let s = Scenario::paper(50, 3)
            .with_horizon(10)
            .with_v(200.0)
            .with_budget(1.5)
            .with_solver(SolverKind::Ropt)
            .with_bdma_rounds(2)
            .with_start_policy(eotora_core::bdma::StartPolicy::Warm)
            .with_bdma_epsilon(1e-6)
            .with_label("x");
        assert_eq!(s.horizon, 10);
        assert_eq!(s.dpp.v, 200.0);
        assert_eq!(s.system.budget_per_slot, 1.5);
        assert_eq!(s.dpp.solver, SolverKind::Ropt);
        assert_eq!(s.dpp.bdma_rounds, 2);
        assert_eq!(s.dpp.start, eotora_core::bdma::StartPolicy::Warm);
        assert_eq!(s.dpp.bdma_epsilon, 1e-6);
        assert_eq!(s.label, "x");
    }

    #[test]
    fn scale_up_builds_island_topology_and_sharded_solver() {
        let s = Scenario::scale_up(120, 6, 9).with_shards(0);
        assert_eq!(s.label, "scale-I120x6");
        assert_eq!(s.system.topology.islands, 6);
        assert_eq!(s.system.topology.num_devices, 120);
        assert_eq!(s.dpp.solver, SolverKind::ShardedCgba { lambda: 0.0, shards: 0 });
        // with_shards preserves the sequential solver's λ.
        let lam =
            Scenario::paper(10, 1).with_solver(SolverKind::Cgba { lambda: 0.25 }).with_shards(4);
        assert_eq!(lam.dpp.solver, SolverKind::ShardedCgba { lambda: 0.25, shards: 4 });
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::paper(20, 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
