//! Checkpointed (crash-safe) simulation runs: snapshot + journal + resume.
//!
//! A durable run lives in one *checkpoint directory*:
//!
//! ```text
//! D/
//! ├── manifest.json       what is running (scenario, mode, policies)
//! ├── snapshot.bin        latest controller snapshot (atomic overwrite)
//! └── journal/            write-ahead slot journal (segmented, CRC-framed)
//!     ├── journal-000000.log
//!     └── ...
//! ```
//!
//! Per completed slot the engine appends one
//! [`SlotRecord`] frame to the journal; every
//! `checkpoint_every` slots (and at the horizon) it syncs the journal and
//! atomically rewrites `snapshot.bin` with the full resumable controller
//! state ([`RunSnapshot`]). The ordering invariant — *journal is durable
//! through frame `S` before a snapshot claiming `S` slots exists* — means a
//! crash at any instant leaves a directory [`resume_durable`] can always
//! pick up:
//!
//! 1. the snapshot restores the controller exactly as of slot `S`;
//! 2. the journal's first `S` frames replay the completed slots' series
//!    bit-exactly (no re-solving);
//! 3. intact frames past `S` are discarded (counted in
//!    `durability.frames_discarded`) and their slots re-executed — the
//!    controller is deterministic, so the re-executed decisions are
//!    bit-identical to the lost originals;
//! 4. a torn final frame (crash mid-append) is dropped silently and
//!    counted in `durability.torn_frames_dropped`.
//!
//! Only wall-clock fields (`solve_time_s`, per-stage seconds) can differ
//! between an interrupted-and-resumed run and an uninterrupted one; every
//! decision, series value, queue state, and counter is bit-identical —
//! pinned by the kill–resume chaos tests in `tests/kill_resume.rs`.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use eotora_core::checkpoint::{ControllerState, SanitizerSnapshot};
use eotora_core::fault::FaultSchedule;
use eotora_durability::journal::open_for_append_after;
use eotora_durability::{
    read_journal, read_snapshot, write_atomic, write_snapshot, DurabilityError, FsyncPolicy,
    JournalWriter, SlotRecord, DEFAULT_SEGMENT_BYTES,
};
use eotora_obs::Recorder;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::engine::DriverMode;
use crate::runner::{robust_config, run_engine, EngineOutcome, SimulationResult};
use crate::scenario::Scenario;

/// Version of `manifest.json`; bump on incompatible layout changes.
pub const MANIFEST_VERSION: u32 = 1;

/// Schema identifier under which run snapshots are written.
const SNAPSHOT_SCHEMA: &str = "eotora.run.v1";

const MANIFEST_FILE: &str = "manifest.json";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const JOURNAL_DIR: &str = "journal";

/// How a run checkpoints itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Checkpoint directory (created if missing).
    pub dir: PathBuf,
    /// Snapshot cadence in slots (a snapshot is also always written at the
    /// horizon). Bounds re-execution after a crash to `checkpoint_every − 1`
    /// slots.
    pub checkpoint_every: u64,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
    /// Journal segment-rotation threshold in bytes.
    pub max_segment_bytes: u64,
    /// Test hook: terminate the run right after completing this slot (post
    /// journal append and any due snapshot), simulating a crash between
    /// slots. Drives the kill–resume chaos tests and the CI smoke gate.
    pub kill_at_slot: Option<u64>,
}

impl DurabilityConfig {
    /// Default checkpointing into `dir`: every 10 slots, `every-16` fsync,
    /// 8 MiB segments, no kill hook.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every: 10,
            fsync: FsyncPolicy::default(),
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            kill_at_slot: None,
        }
    }
}

/// Outcome of a durable run.
#[derive(Debug)]
pub enum DurableRun {
    /// The run reached its horizon; the final snapshot is on disk.
    Completed(Box<SimulationResult>),
    /// The kill hook fired after `slot` completed; resume with
    /// [`resume_durable`].
    Interrupted {
        /// Last completed slot.
        slot: u64,
    },
}

/// `manifest.json`: identifies what is running in a checkpoint directory,
/// so `resume` needs only the directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest layout version.
    pub version: u32,
    /// `"plain"` or `"robust"`.
    pub mode: String,
    /// The full scenario being run.
    pub scenario: Scenario,
    /// Fault schedule (robust mode only).
    pub faults: Option<FaultSchedule>,
    /// Anytime per-slot deadline in milliseconds (robust mode only).
    pub deadline_ms: Option<u64>,
    /// Snapshot cadence in slots.
    pub checkpoint_every: u64,
    /// Journal fsync policy, as its display string.
    pub fsync: String,
}

/// The payload of `snapshot.bin`: the full resumable state as of `slots`
/// completed slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// The next slot to solve (the driver cursor). Equal to the number of
    /// completed slots on batch runs; can exceed `frames` on server runs
    /// where overload shedding skipped slots.
    pub slots: u64,
    /// Journal frames durable as of this snapshot — the number of journal
    /// records to replay on resume.
    pub frames: u64,
    /// Controller state: virtual queue, averages, solver RNG, config, and
    /// the warm-start workspace (retained incumbent + probe heat).
    pub controller: ControllerState,
    /// Sanitizer state: limits, defaults, last-known-good `β`, lifetime
    /// substitution count.
    pub sanitizer: SanitizerSnapshot,
    /// Corruption-injection RNG stream position (robust runs).
    pub corrupt_rng: Pcg32,
    /// All monotonic counters as of this snapshot.
    pub counters: BTreeMap<String, u64>,
}

/// State recovered from disk that the engine consumes on resume.
pub(crate) struct ResumeState {
    /// The decoded snapshot; `None` when the run crashed before its first
    /// checkpoint (the run restarts from slot 0 and `head` is empty).
    pub(crate) snapshot: Option<RunSnapshot>,
    /// Journal records of the snapshotted slots (`snapshot.slots` of them),
    /// oldest first — replayed into the result series without re-solving.
    pub(crate) head: Vec<SlotRecord>,
    /// Torn frames dropped during journal recovery.
    pub(crate) torn_frames_dropped: u64,
    /// Intact frames past the snapshot discarded for re-execution.
    pub(crate) frames_discarded: u64,
}

/// Live durability state the engine drives: the open journal writer, the
/// snapshot target, and the pending resume payload (if any). Opaque
/// outside the crate — obtain one with [`open_session`] and hand it to
/// [`crate::engine::StepDriver::new`]; the driver journals every slot and
/// snapshots on the session's cadence.
pub struct DurableSession {
    writer: JournalWriter,
    snapshot_path: PathBuf,
    checkpoint_every: u64,
    kill_at_slot: Option<u64>,
    resume: Option<ResumeState>,
}

impl DurableSession {
    /// Takes the resume payload (present exactly once, on a resumed run).
    pub(crate) fn take_resume(&mut self) -> Option<ResumeState> {
        self.resume.take()
    }

    /// Appends one slot record to the journal.
    pub(crate) fn journal_slot(&mut self, record: &SlotRecord) -> Result<(), DurabilityError> {
        self.writer.append(&record.encode())
    }

    /// Duration of the most recent journal fsync, if one ran since the
    /// last call — feeds the sink-only `journal.fsync` telemetry span.
    pub(crate) fn take_sync_nanos(&mut self) -> Option<u64> {
        self.writer.take_last_sync_nanos()
    }

    /// Whether a snapshot is due after `completed` slots of `horizon`.
    pub(crate) fn checkpoint_due(&self, completed: u64, horizon: u64) -> bool {
        completed == horizon || completed.is_multiple_of(self.checkpoint_every)
    }

    /// Syncs the journal, then atomically replaces the snapshot — in that
    /// order, so a snapshot claiming `S` slots never exists without a
    /// durable journal through frame `S`.
    pub(crate) fn write_snapshot(&mut self, snapshot: &RunSnapshot) -> Result<(), DurabilityError> {
        self.writer.sync()?;
        let payload =
            serde_json::to_string(snapshot).map_err(|e| DurabilityError::InvalidConfig {
                reason: format!("run snapshot failed to serialize: {e}"),
            })?;
        write_snapshot(&self.snapshot_path, SNAPSHOT_SCHEMA, payload.as_bytes())
    }

    /// Whether the kill hook fires after `slot`.
    pub(crate) fn should_kill(&self, slot: u64) -> bool {
        self.kill_at_slot == Some(slot)
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

fn journal_dir(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_DIR)
}

fn write_manifest(dir: &Path, manifest: &RunManifest) -> Result<(), DurabilityError> {
    let path = manifest_path(dir);
    let text = serde_json::to_string(manifest).map_err(|e| DurabilityError::InvalidConfig {
        reason: format!("run manifest failed to serialize: {e}"),
    })?;
    write_atomic(&path, text.as_bytes())
}

/// Reads the run manifest of the checkpoint directory `dir` — the public
/// hook the CLI uses to recover a resumed run's scenario parameters (V,
/// budget) for health-rule construction.
pub fn read_manifest_in(dir: &Path) -> Result<RunManifest, DurabilityError> {
    read_manifest(dir)
}

fn read_manifest(dir: &Path) -> Result<RunManifest, DurabilityError> {
    let path = manifest_path(dir);
    let text = fs::read_to_string(&path).map_err(|e| DurabilityError::io(&path, &e))?;
    let manifest: RunManifest = serde_json::from_str(&text).map_err(|e| {
        DurabilityError::CorruptManifest { path: path.display().to_string(), reason: e.to_string() }
    })?;
    if manifest.version > MANIFEST_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            found: manifest.version,
            supported: MANIFEST_VERSION,
        });
    }
    Ok(manifest)
}

fn fresh_session(
    cfg: &DurabilityConfig,
    manifest: &RunManifest,
) -> Result<DurableSession, DurabilityError> {
    fs::create_dir_all(&cfg.dir).map_err(|e| DurabilityError::io(&cfg.dir, &e))?;
    let existing_manifest = manifest_path(&cfg.dir);
    if existing_manifest.exists() || snapshot_path(&cfg.dir).exists() {
        return Err(DurabilityError::InvalidConfig {
            reason: format!(
                "checkpoint directory {} already holds a run; resume it with \
                 `run --resume` or point --checkpoint-dir at a fresh directory",
                cfg.dir.display()
            ),
        });
    }
    write_manifest(&cfg.dir, manifest)?;
    let writer = JournalWriter::create(&journal_dir(&cfg.dir), cfg.fsync, cfg.max_segment_bytes)?;
    Ok(DurableSession {
        writer,
        snapshot_path: snapshot_path(&cfg.dir),
        checkpoint_every: cfg.checkpoint_every.max(1),
        kill_at_slot: cfg.kill_at_slot,
        resume: None,
    })
}

fn finish(outcome: EngineOutcome) -> DurableRun {
    match outcome {
        EngineOutcome::Completed(result) => DurableRun::Completed(result),
        EngineOutcome::Interrupted { slot } => DurableRun::Interrupted { slot },
    }
}

/// Runs `scenario` with checkpointing under `cfg`. The directory must not
/// already hold a run (use [`resume_durable`] for that).
pub fn run_durable(
    scenario: &Scenario,
    cfg: &DurabilityConfig,
) -> Result<DurableRun, DurabilityError> {
    run_durable_traced(scenario, cfg, None)
}

/// [`run_durable`] with an optional trace sink (live telemetry, JSONL).
/// The sink additionally receives the journal/fsync/snapshot latency
/// spans, which never enter the aggregated metrics — keeping resumed-run
/// counters and CSV columns bit-identical to an untraced run.
pub fn run_durable_traced(
    scenario: &Scenario,
    cfg: &DurabilityConfig,
    sink: Option<&dyn Recorder>,
) -> Result<DurableRun, DurabilityError> {
    let manifest = RunManifest {
        version: MANIFEST_VERSION,
        mode: "plain".to_owned(),
        scenario: scenario.clone(),
        faults: None,
        deadline_ms: None,
        checkpoint_every: cfg.checkpoint_every.max(1),
        fsync: cfg.fsync.to_string(),
    };
    let session = fresh_session(cfg, &manifest)?;
    let system = eotora_core::system::MecSystem::random(&scenario.system, scenario.seed);
    let mut states =
        eotora_states::StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    let outcome = run_engine(
        scenario,
        system,
        &mut |slot, topo| states.observe(slot, topo),
        sink,
        DriverMode::Plain,
        Some(session),
    )?;
    Ok(finish(outcome))
}

/// Runs the fault-tolerant pipeline with checkpointing: [`run_durable`]
/// for [`crate::runner::run_robust`].
pub fn run_durable_robust(
    scenario: &Scenario,
    faults: &FaultSchedule,
    deadline: Option<Duration>,
    cfg: &DurabilityConfig,
) -> Result<DurableRun, DurabilityError> {
    run_durable_robust_traced(scenario, faults, deadline, cfg, None)
}

/// [`run_durable_robust`] with an optional trace sink — see
/// [`run_durable_traced`] for the span-routing contract.
pub fn run_durable_robust_traced(
    scenario: &Scenario,
    faults: &FaultSchedule,
    deadline: Option<Duration>,
    cfg: &DurabilityConfig,
    sink: Option<&dyn Recorder>,
) -> Result<DurableRun, DurabilityError> {
    let manifest = RunManifest {
        version: MANIFEST_VERSION,
        mode: "robust".to_owned(),
        scenario: scenario.clone(),
        faults: Some(faults.clone()),
        deadline_ms: deadline.map(|d| d.as_millis() as u64),
        checkpoint_every: cfg.checkpoint_every.max(1),
        fsync: cfg.fsync.to_string(),
    };
    let session = fresh_session(cfg, &manifest)?;
    let robust = robust_config(scenario, deadline);
    let system = eotora_core::system::MecSystem::random(&scenario.system, scenario.seed);
    let mut states =
        eotora_states::StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    let outcome = run_engine(
        scenario,
        system,
        &mut |slot, topo| states.observe(slot, topo),
        sink,
        DriverMode::Robust { faults: faults.clone(), robust },
        Some(session),
    )?;
    Ok(finish(outcome))
}

/// Resumes the run checkpointed in `cfg.dir`: reads the manifest, restores
/// the snapshot, replays the journal head, truncates the stale journal
/// suffix, and re-executes the remaining slots deterministically. The
/// manifest supplies the scenario and policies; of `cfg`, only `dir` and
/// the `kill_at_slot` test hook are consulted.
///
/// Returns the same [`DurableRun`] a never-interrupted run would — all
/// decision-derived values bit-identical (see the module docs).
pub fn resume_durable(cfg: &DurabilityConfig) -> Result<DurableRun, DurabilityError> {
    resume_durable_traced(cfg, None)
}

/// [`resume_durable`] with an optional trace sink — see
/// [`run_durable_traced`] for the span-routing contract.
pub fn resume_durable_traced(
    cfg: &DurabilityConfig,
    sink: Option<&dyn Recorder>,
) -> Result<DurableRun, DurabilityError> {
    let manifest = read_manifest(&cfg.dir)?;
    let session = resume_session(cfg, &manifest)?;
    let scenario = manifest.scenario;
    let system = eotora_core::system::MecSystem::random(&scenario.system, scenario.seed);
    let mut states =
        eotora_states::StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
    let outcome = match manifest.mode.as_str() {
        "plain" => run_engine(
            &scenario,
            system,
            &mut |slot, topo| states.observe(slot, topo),
            sink,
            DriverMode::Plain,
            Some(session),
        )?,
        "robust" => {
            let faults = manifest.faults.unwrap_or_default();
            let deadline = manifest.deadline_ms.map(Duration::from_millis);
            let robust = robust_config(&scenario, deadline);
            run_engine(
                &scenario,
                system,
                &mut |slot, topo| states.observe(slot, topo),
                sink,
                DriverMode::Robust { faults, robust },
                Some(session),
            )?
        }
        other => {
            return Err(DurabilityError::CorruptManifest {
                path: manifest_path(&cfg.dir).display().to_string(),
                reason: format!("unknown run mode `{other}`"),
            })
        }
    };
    Ok(finish(outcome))
}

/// Reconstructs the live session of a checkpoint directory that already
/// holds a run: restores the snapshot, replays the journal head, and
/// reopens the journal for appends after the snapshot slot (discarding
/// any stale suffix for deterministic re-execution).
fn resume_session(
    cfg: &DurabilityConfig,
    manifest: &RunManifest,
) -> Result<DurableSession, DurabilityError> {
    let fsync = manifest.fsync.parse::<FsyncPolicy>().map_err(|reason| {
        DurabilityError::CorruptManifest {
            path: manifest_path(&cfg.dir).display().to_string(),
            reason,
        }
    })?;
    let snap_path = snapshot_path(&cfg.dir);
    let snapshot: Option<RunSnapshot> = if snap_path.exists() {
        let payload = read_snapshot(&snap_path, SNAPSHOT_SCHEMA)?;
        let text = String::from_utf8(payload).map_err(|_| DurabilityError::CorruptSnapshot {
            path: snap_path.display().to_string(),
            reason: "payload is not valid UTF-8".to_owned(),
        })?;
        Some(serde_json::from_str(&text).map_err(|e| DurabilityError::CorruptSnapshot {
            path: snap_path.display().to_string(),
            reason: format!("payload failed to deserialize: {e}"),
        })?)
    } else {
        // Crashed before the first checkpoint: nothing to restore, so the
        // run restarts from slot 0 (journaled frames are discarded and
        // their slots re-executed deterministically).
        None
    };
    let snapshot_frames = snapshot.as_ref().map_or(0, |s| s.frames);

    let journal = journal_dir(&cfg.dir);
    let (head, torn_frames_dropped, frames_discarded, writer) = if journal.is_dir() {
        let readback = read_journal(&journal)?;
        let total_frames = readback.frames.len() as u64;
        if total_frames < snapshot_frames {
            return Err(DurabilityError::JournalBehindSnapshot {
                snapshot_slots: snapshot_frames,
                journal_frames: total_frames,
            });
        }
        let mut head = Vec::with_capacity(snapshot_frames as usize);
        for frame in readback.frames.iter().take(snapshot_frames as usize) {
            head.push(SlotRecord::decode(frame)?);
        }
        let writer =
            open_for_append_after(&journal, snapshot_frames, fsync, cfg.max_segment_bytes)?;
        (head, readback.torn_frames_dropped, total_frames - snapshot_frames, writer)
    } else {
        // Crashed between the manifest write and the journal's creation.
        let writer = JournalWriter::create(&journal, fsync, cfg.max_segment_bytes)?;
        (Vec::new(), 0, 0, writer)
    };

    Ok(DurableSession {
        writer,
        snapshot_path: snap_path,
        checkpoint_every: manifest.checkpoint_every.max(1),
        kill_at_slot: cfg.kill_at_slot,
        resume: Some(ResumeState { snapshot, head, torn_frames_dropped, frames_discarded }),
    })
}

/// Opens the durable session for `cfg.dir`, fresh or resumed — the
/// auto-resume entry point the server daemon starts through:
///
/// * an empty directory writes `manifest` and starts a fresh journal;
/// * a directory already holding a run is verified against `manifest` —
///   same mode, scenario, and fault schedule, or a typed
///   [`DurabilityError::InvalidConfig`] — and resumed from its
///   snapshot-plus-journal head (hand the session to
///   [`crate::engine::StepDriver::new`], which consumes the resume
///   payload and restores the controller).
///
/// Operational policy fields that may legitimately change across
/// restarts (deadline, checkpoint cadence, fsync) follow the *new*
/// manifest; the on-disk manifest is rewritten when they differ.
pub fn open_session(
    cfg: &DurabilityConfig,
    manifest: &RunManifest,
) -> Result<DurableSession, DurabilityError> {
    if !manifest_path(&cfg.dir).exists() {
        return fresh_session(cfg, manifest);
    }
    let existing = read_manifest(&cfg.dir)?;
    if existing.mode != manifest.mode
        || existing.scenario != manifest.scenario
        || existing.faults != manifest.faults
    {
        return Err(DurabilityError::InvalidConfig {
            reason: format!(
                "checkpoint directory {} holds a different run (mode `{}`, scenario `{}`); \
                 point at a fresh directory or restore the matching config",
                cfg.dir.display(),
                existing.mode,
                existing.scenario.label
            ),
        });
    }
    if existing != *manifest {
        write_manifest(&cfg.dir, manifest)?;
    }
    resume_session(cfg, manifest)
}
