//! Federated multi-region control: N independent per-region controllers
//! sharing one fleet energy budget over an unreliable peer link.
//!
//! Each region runs its own [`StepDriver`] (own topology island, own
//! state stream, own virtual queue) against a *share* of the fleet budget
//! `C̄`. Every `sync_every` slots the regions exchange epoch-stamped
//! [`QueueGossip`] frames through a seeded [`LinkFault`] layer and
//! re-apportion the budget with the configured
//! [`RebalancePolicy`] (see [`eotora_federation`] for the protocol
//! itself: freshness, retry with backoff, and the stale → partitioned →
//! heal degradation ladder).
//!
//! Two properties pin the design, both gated in CI:
//!
//! * **Fixed-share identity** — the budget enters the per-slot solve only
//!   through the virtual-queue drift, so a clean-link federation under
//!   [`RebalancePolicy::Fixed`] is *decision-identical* to N independent
//!   fixed-budget runs ([`run_standalone`]).
//! * **Durable lock-step** — all regions checkpoint on the same cadence
//!   and the federation's own state (nodes + link-fault buffer) snapshots
//!   right after them, with sync boundaries processed at the *start* of a
//!   slot; killing the whole federation mid-partition and resuming
//!   reproduces every decision, series value, and counter bit-exactly.
//!
//! Gossip frames handed to the in-process bus are always drained at the
//! same boundary; frames in flight *across* slots live only in the fault
//! layer's serializable buffer — which is why the bus itself never needs
//! checkpointing.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use eotora_core::system::{MecSystem, SystemConfig};
use eotora_durability::{read_snapshot, write_atomic, write_snapshot, DurabilityError};
use eotora_federation::{
    FederationNode, InProcessBus, LinkFault, LinkFaultConfig, LinkFaultState, NodeConfig,
    NodeState, PeerBus, QueueGossip, RebalancePolicy,
};
use eotora_states::StateProvider;
use eotora_topology::{region_devices, RandomTopologyConfig};
use serde::{Deserialize, Serialize};

use crate::durable::{open_session, DurabilityConfig, RunManifest, MANIFEST_VERSION};
use crate::engine::{DriverMode, DriverTuning, StepDriver};
use crate::runner::SimulationResult;
use crate::scenario::Scenario;

/// Version of `federation.json`; bump on incompatible layout changes.
pub const FED_MANIFEST_VERSION: u32 = 1;

/// Schema identifier under which federation snapshots are written.
/// v2: node state carries confirmed/pending share rounds (two-phase
/// rebalance protocol) instead of a single last-agreed share.
const FED_SNAPSHOT_SCHEMA: &str = "eotora.fed.v2";

const FED_SNAPSHOT_FILE: &str = "federation.bin";
const FED_MANIFEST_FILE: &str = "federation.json";

/// A federated multi-region run: fleet shape, budget, and protocol knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Number of regions (each an island of the fleet topology).
    pub regions: u32,
    /// Total devices across the fleet, split round-robin over regions.
    pub total_devices: usize,
    /// Slots to run.
    pub horizon: u64,
    /// Base seed; each region derives its own system/state seed from it.
    pub seed: u64,
    /// Sync-epoch cadence in slots (gossip exchanged every `sync_every`
    /// slots, at the start of the boundary slot).
    pub sync_every: u64,
    /// The *fleet* time-average budget `C̄` ($/slot) the shares split.
    pub total_budget: f64,
    /// How shares are recomputed each epoch.
    pub policy: RebalancePolicy,
    /// Missed epochs tolerated before a peer's level counts as stale.
    pub stale_after: u64,
    /// Missed epochs after which a peer counts as partitioned.
    pub partition_after: u64,
    /// Initial retransmission backoff, in epochs.
    pub backoff_base: u64,
    /// Retransmission backoff cap, in epochs.
    pub backoff_max: u64,
}

impl FederationConfig {
    /// A paper-default federation: the fleet budget of the equivalent
    /// single-controller run (see [`SystemConfig::paper_defaults`]) split
    /// queue-proportionally with a floor of half the equal share, syncing
    /// every 10 slots over a 240-slot horizon.
    pub fn new(regions: u32, total_devices: usize, seed: u64) -> Self {
        Self {
            regions,
            total_devices,
            horizon: 240,
            seed,
            sync_every: 10,
            total_budget: SystemConfig::paper_defaults(total_devices).budget_per_slot,
            policy: RebalancePolicy::QueueProportional { floor: 0.5 / f64::from(regions.max(1)) },
            stale_after: 0,
            partition_after: 2,
            backoff_base: 1,
            backoff_max: 8,
        }
    }

    /// Sets the horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the sync-epoch cadence.
    pub fn with_sync_every(mut self, sync_every: u64) -> Self {
        self.sync_every = sync_every;
        self
    }

    /// Sets the fleet budget.
    pub fn with_total_budget(mut self, total_budget: f64) -> Self {
        self.total_budget = total_budget;
        self
    }

    /// Sets the rebalance policy.
    pub fn with_policy(mut self, policy: RebalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The equal budget share every region starts from. Shares are always
    /// applied as `total_budget * share`, so this exact expression is what
    /// both [`region_scenario`] and the runner use — keeping fresh runs,
    /// resumed runs, and the standalone baseline bit-identical.
    pub fn equal_share(&self) -> f64 {
        1.0 / f64::from(self.regions.max(1))
    }

    fn validate(&self) -> Result<(), DurabilityError> {
        let fail = |reason: String| Err(DurabilityError::InvalidConfig { reason });
        if self.regions < 2 {
            return fail(format!("a federation needs at least 2 regions, got {}", self.regions));
        }
        if self.total_devices < self.regions as usize {
            return fail(format!(
                "{} devices cannot cover {} regions (each region needs at least one)",
                self.total_devices, self.regions
            ));
        }
        if self.horizon == 0 || self.sync_every == 0 {
            return fail("horizon and sync-every must be positive".to_owned());
        }
        if !(self.total_budget.is_finite() && self.total_budget > 0.0) {
            return fail(format!("fleet budget must be positive, got {}", self.total_budget));
        }
        if let RebalancePolicy::QueueProportional { floor } = self.policy {
            let cap = self.equal_share();
            if !(floor.is_finite() && (0.0..=cap).contains(&floor)) {
                return fail(format!("share floor {floor} outside [0, {cap}]"));
            }
        }
        Ok(())
    }
}

/// The scenario region `region` runs: its round-robin slice of the fleet
/// as a single-island topology, a region-specific seed, and the equal
/// split of the fleet budget. This is the exact scenario the standalone
/// baseline runs too — the identity the CSV gate diffs.
pub fn region_scenario(cfg: &FederationConfig, region: u32) -> Scenario {
    let devices = region_devices(cfg.total_devices, cfg.regions as usize, region as usize);
    let mut scenario = Scenario::paper(devices, region_seed(cfg.seed, region))
        .with_horizon(cfg.horizon)
        .with_budget(cfg.total_budget * cfg.equal_share())
        .with_label(format!("fed-r{region}of{}", cfg.regions));
    scenario.system.topology =
        RandomTopologyConfig::region(cfg.total_devices, cfg.regions as usize, region as usize);
    scenario
}

/// The single-controller baseline the federation experiment compares
/// against: the whole fleet under one controller with the whole budget.
pub fn global_scenario(cfg: &FederationConfig) -> Scenario {
    Scenario::paper(cfg.total_devices, cfg.seed)
        .with_horizon(cfg.horizon)
        .with_budget(cfg.total_budget)
        .with_label(format!("fed-global-I{}", cfg.total_devices))
}

fn region_seed(seed: u64, region: u32) -> u64 {
    seed.wrapping_add(u64::from(region).wrapping_mul(0x9E3779B97F4A7C15))
}

/// `federation.json`: identifies what federation a checkpoint root runs,
/// so a resume needs only the directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationManifest {
    /// Manifest layout version.
    pub version: u32,
    /// The full federation configuration.
    pub config: FederationConfig,
    /// The peer-link fault model.
    pub faults: LinkFaultConfig,
}

/// The payload of `federation.bin`: everything the per-region snapshots
/// do not already hold — node protocol state and the link-fault layer
/// (RNG position + frames in flight) — as of `slots` completed slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FedSnapshot {
    slots: u64,
    nodes: Vec<NodeState>,
    fault: LinkFaultState,
}

/// Outcome of a federated run.
#[derive(Debug)]
pub enum FederationRun {
    /// All regions reached the horizon.
    Completed(Box<FederationReport>),
    /// The kill hook fired after `slot` completed in every region; resume
    /// by calling [`run_federation`] again with the same checkpoint root.
    Interrupted {
        /// Last completed slot.
        slot: u64,
    },
}

/// Fleet-level results of a completed federated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationReport {
    /// The configuration that produced this report.
    pub config: FederationConfig,
    /// Per-region simulation results, region 0 first.
    pub regions: Vec<SimulationResult>,
    /// Each region's budget share at the end of the run.
    pub final_shares: Vec<f64>,
    /// Fleet time-average energy cost: the sum over regions of each cost
    /// series' time average. Computed from the per-slot series — not from
    /// the controllers' running averages — because the per-slot cost
    /// carries the budget share in force *at that slot*, which is the
    /// correct accounting under mid-run rebalances.
    pub fleet_average_cost: f64,
    /// Mean of the regions' time-average latencies.
    pub fleet_average_latency: f64,
    /// Every monotonic counter summed across regions (`fed.*` gossip and
    /// rebalance telemetry next to the usual solver counters).
    pub counters: BTreeMap<String, u64>,
}

impl FederationReport {
    fn new(
        cfg: &FederationConfig,
        regions: Vec<SimulationResult>,
        nodes: &[FederationNode],
    ) -> Self {
        let fleet_average_cost = regions.iter().map(|r| r.cost.time_average()).sum();
        let fleet_average_latency =
            regions.iter().map(|r| r.average_latency).sum::<f64>() / regions.len() as f64;
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for region in &regions {
            for (name, value) in &region.counters {
                *counters.entry(name.clone()).or_insert(0) += value;
            }
        }
        FederationReport {
            config: cfg.clone(),
            final_shares: nodes.iter().map(FederationNode::share).collect(),
            regions,
            fleet_average_cost,
            fleet_average_latency,
            counters,
        }
    }

    /// Whether the *fleet* honoured the shared budget on time average
    /// (with `tol` absorbing the `O(V/T)` transient).
    pub fn budget_satisfied(&self, tol: f64) -> bool {
        self.fleet_average_cost <= self.config.total_budget + tol
    }
}

/// Runs each region's scenario independently at its fixed equal budget
/// share — the baseline a clean-link [`RebalancePolicy::Fixed`]
/// federation must match decision-for-decision.
pub fn run_standalone(cfg: &FederationConfig) -> Vec<SimulationResult> {
    (0..cfg.regions).map(|region| crate::runner::run(&region_scenario(cfg, region))).collect()
}

/// Runs (or resumes) a federated multi-region simulation.
///
/// With `durability`, `durability.dir` becomes the checkpoint *root*:
/// `federation.json` (manifest), `federation.bin` (federation snapshot),
/// and one standard checkpoint directory per region under `region-<i>/`,
/// all on the same snapshot cadence. A root that already holds a matching
/// manifest resumes; a mismatched one is rejected with a typed error.
/// `durability.kill_at_slot` interrupts every region after that slot —
/// the federation-wide crash the kill–resume chaos test drives.
pub fn run_federation(
    cfg: &FederationConfig,
    faults: &LinkFaultConfig,
    durability: Option<&DurabilityConfig>,
) -> Result<FederationRun, DurabilityError> {
    cfg.validate()?;
    if let Some(d) = durability {
        prepare_root(&d.dir, cfg, faults)?;
    }

    // Per-region drivers and state streams, durable sessions included.
    let regions = cfg.regions as usize;
    let mut drivers = Vec::with_capacity(regions);
    let mut providers = Vec::with_capacity(regions);
    for region in 0..cfg.regions {
        let scenario = region_scenario(cfg, region);
        let session = match durability {
            Some(d) => {
                let region_cfg = DurabilityConfig {
                    dir: d.dir.join(format!("region-{region}")),
                    checkpoint_every: d.checkpoint_every.max(1),
                    fsync: d.fsync,
                    max_segment_bytes: d.max_segment_bytes,
                    kill_at_slot: d.kill_at_slot,
                };
                let manifest = RunManifest {
                    version: MANIFEST_VERSION,
                    mode: "plain".to_owned(),
                    scenario: scenario.clone(),
                    faults: None,
                    deadline_ms: None,
                    checkpoint_every: region_cfg.checkpoint_every,
                    fsync: region_cfg.fsync.to_string(),
                };
                Some(open_session(&region_cfg, &manifest)?)
            }
            None => None,
        };
        let system = MecSystem::random(&scenario.system, scenario.seed);
        let provider = StateProvider::paper(system.topology(), &scenario.states, scenario.seed);
        drivers.push(StepDriver::new(
            &scenario,
            system,
            DriverMode::Plain,
            session,
            None,
            DriverTuning::default(),
        ));
        providers.push(provider);
    }

    // Lock-step invariant: every region resumes at the same cursor (they
    // share one snapshot cadence), or the checkpoint tree is torn.
    let cursor = drivers[0].cursor();
    for (region, driver) in drivers.iter().enumerate() {
        if driver.cursor() != cursor {
            return Err(DurabilityError::InvalidConfig {
                reason: format!(
                    "federated region checkpoints disagree: region 0 resumes at slot {cursor} \
                     but region {region} at slot {} — the checkpoint root is torn or mixes \
                     different runs",
                    driver.cursor()
                ),
            });
        }
    }
    for (driver, provider) in drivers.iter_mut().zip(&mut providers) {
        for slot in 0..cursor {
            let replayed = provider.observe(slot, driver.topology());
            driver.replay_observe(&replayed);
        }
        driver.restage();
    }

    // Federation protocol state: fresh, or restored from `federation.bin`.
    let mut fault = LinkFault::new(faults.clone());
    let mut nodes: Vec<FederationNode> = (0..cfg.regions)
        .map(|region| {
            FederationNode::new(NodeConfig {
                region,
                regions: cfg.regions,
                stale_after: cfg.stale_after,
                partition_after: cfg.partition_after,
                backoff_base: cfg.backoff_base,
                backoff_max: cfg.backoff_max,
                policy: cfg.policy,
                jitter_seed: cfg.seed,
            })
        })
        .collect();
    if cursor > 0 {
        if let Some(d) = durability {
            let snap = read_fed_snapshot(&d.dir)?;
            if snap.slots != cursor || snap.nodes.len() != regions {
                return Err(DurabilityError::InvalidConfig {
                    reason: format!(
                        "federation snapshot in {} covers {} slots / {} nodes but the region \
                         checkpoints resume at slot {cursor} with {regions} regions",
                        d.dir.display(),
                        snap.slots,
                        snap.nodes.len()
                    ),
                });
            }
            fault.restore(snap.fault);
            for (node, state) in nodes.iter_mut().zip(snap.nodes) {
                node.restore(state);
            }
            // Re-apply the budget shares in force at the interruption;
            // `total * share` is the same expression live rebalances use,
            // so the resumed trajectory is bit-identical.
            for (driver, node) in drivers.iter_mut().zip(&nodes) {
                driver.set_budget_per_slot(cfg.total_budget * node.share());
            }
        }
    }

    // The lock-step loop. Sync boundaries run at the START of their slot
    // (using queue levels after slot-1), so the snapshot written at the
    // end of slot s-1 always precedes the boundary of slot s — a resume
    // at cursor s re-runs that boundary deterministically.
    let mut bus = InProcessBus::new(cfg.regions);
    let mut slot = cursor;
    while slot < cfg.horizon {
        if slot > 0 && slot % cfg.sync_every == 0 {
            sync_boundary(slot, cfg, &mut drivers, &mut nodes, &mut fault, &mut bus)?;
        }
        let mut interrupted = false;
        for (driver, provider) in drivers.iter_mut().zip(&mut providers) {
            let beta = provider.observe(slot, driver.topology());
            interrupted |= driver.step(beta)?.interrupted;
        }
        slot += 1;
        if let Some(d) = durability {
            let every = d.checkpoint_every.max(1);
            if slot == cfg.horizon || slot % every == 0 {
                write_fed_snapshot(&d.dir, slot, &nodes, &fault)?;
            }
        }
        if interrupted {
            return Ok(FederationRun::Interrupted { slot: slot - 1 });
        }
    }

    let results: Vec<SimulationResult> = drivers.into_iter().map(StepDriver::finish).collect();
    Ok(FederationRun::Completed(Box::new(FederationReport::new(cfg, results, &nodes))))
}

/// One sync boundary at the start of `slot`: release delayed frames,
/// broadcast this epoch's queue levels (plus backoff-gated retries toward
/// behind peers) through the fault layer, then let every region close the
/// epoch — ingesting frames, walking the degradation ladder, and
/// re-targeting its budget share if it rebalanced.
fn sync_boundary(
    slot: u64,
    cfg: &FederationConfig,
    drivers: &mut [StepDriver<'_>],
    nodes: &mut [FederationNode],
    fault: &mut LinkFault,
    bus: &mut InProcessBus,
) -> Result<(), DurabilityError> {
    let epoch = slot / cfg.sync_every;
    for (to, line) in fault.release(slot) {
        bus_send(bus, to, &line)?;
    }
    let queues: Vec<f64> = drivers.iter().map(StepDriver::queue_backlog).collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        let region = i as u32;
        let frame = QueueGossip {
            region,
            epoch,
            slot,
            queue: queues[i],
            round: node.advertised_round(),
            shares: node.advertised_shares().to_vec(),
        };
        let line = frame.encode().map_err(|e| DurabilityError::InvalidConfig {
            reason: format!("region {region} produced an unencodable gossip frame: {e}"),
        })?;
        let mut targets: Vec<u32> = (0..cfg.regions).filter(|&r| r != region).collect();
        targets.extend(node.retry_peers(epoch));
        let mut sent = 0;
        let mut dropped = 0;
        let mut deliver = Vec::new();
        for to in targets {
            let outcome = fault.transmit(slot, region, to, &line, &mut deliver);
            sent += outcome.sent;
            dropped += outcome.dropped;
        }
        for (to, delivered) in deliver {
            bus_send(bus, to, &delivered)?;
        }
        if sent > 0 {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_GOSSIP_SENT, sent);
        }
        if dropped > 0 {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_GOSSIP_DROPPED, dropped);
        }
    }
    for (i, node) in nodes.iter_mut().enumerate() {
        let region = i as u32;
        let mut frames = Vec::new();
        let mut malformed = 0u64;
        for line in bus.recv(region).map_err(bus_error)? {
            match QueueGossip::decode(&line) {
                Ok(f) if f.region != region && f.region < cfg.regions => frames.push(f),
                Ok(_) | Err(_) => malformed += 1,
            }
        }
        let close = node.close_epoch(epoch, queues[i], &frames);
        if malformed > 0 {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_GOSSIP_DROPPED, malformed);
        }
        if close.stale {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_STALE_EPOCHS, 1);
        }
        if close.new_partitions > 0 {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_PARTITIONS, close.new_partitions);
        }
        if close.promoted {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_ROUNDS_PROMOTED, 1);
        }
        if close.rebalanced {
            drivers[i].add_counter(eotora_obs::COUNTER_FED_BUDGET_REBALANCES, 1);
            drivers[i].set_budget_per_slot(cfg.total_budget * close.share);
        }
    }
    Ok(())
}

fn bus_send(bus: &mut InProcessBus, to: u32, line: &str) -> Result<(), DurabilityError> {
    bus.send(to, line).map_err(bus_error)
}

fn bus_error(e: eotora_federation::BusError) -> DurabilityError {
    DurabilityError::InvalidConfig { reason: format!("federation peer bus failed: {e}") }
}

fn fed_manifest_path(root: &Path) -> PathBuf {
    root.join(FED_MANIFEST_FILE)
}

fn fed_snapshot_path(root: &Path) -> PathBuf {
    root.join(FED_SNAPSHOT_FILE)
}

/// Reads the federation manifest of checkpoint root `dir` — the hook the
/// CLI's `federate --resume` uses to recover the full configuration.
pub fn read_federation_manifest(dir: &Path) -> Result<FederationManifest, DurabilityError> {
    let path = fed_manifest_path(dir);
    let text = fs::read_to_string(&path).map_err(|e| DurabilityError::io(&path, &e))?;
    let manifest: FederationManifest = serde_json::from_str(&text).map_err(|e| {
        DurabilityError::CorruptManifest { path: path.display().to_string(), reason: e.to_string() }
    })?;
    if manifest.version > FED_MANIFEST_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            found: manifest.version,
            supported: FED_MANIFEST_VERSION,
        });
    }
    Ok(manifest)
}

fn prepare_root(
    dir: &Path,
    cfg: &FederationConfig,
    faults: &LinkFaultConfig,
) -> Result<(), DurabilityError> {
    fs::create_dir_all(dir).map_err(|e| DurabilityError::io(dir, &e))?;
    let manifest = FederationManifest {
        version: FED_MANIFEST_VERSION,
        config: cfg.clone(),
        faults: faults.clone(),
    };
    if fed_manifest_path(dir).exists() {
        let existing = read_federation_manifest(dir)?;
        if existing != manifest {
            return Err(DurabilityError::InvalidConfig {
                reason: format!(
                    "checkpoint root {} holds a different federation ({} regions, seed {}); \
                     point at a fresh directory or restore the matching config",
                    dir.display(),
                    existing.config.regions,
                    existing.config.seed
                ),
            });
        }
        return Ok(());
    }
    let text = serde_json::to_string(&manifest).map_err(|e| DurabilityError::InvalidConfig {
        reason: format!("federation manifest failed to serialize: {e}"),
    })?;
    write_atomic(&fed_manifest_path(dir), text.as_bytes())
}

fn write_fed_snapshot(
    root: &Path,
    slots: u64,
    nodes: &[FederationNode],
    fault: &LinkFault,
) -> Result<(), DurabilityError> {
    let snapshot = FedSnapshot {
        slots,
        nodes: nodes.iter().map(|n| n.state().clone()).collect(),
        fault: fault.state().clone(),
    };
    let payload = serde_json::to_string(&snapshot).map_err(|e| DurabilityError::InvalidConfig {
        reason: format!("federation snapshot failed to serialize: {e}"),
    })?;
    write_snapshot(&fed_snapshot_path(root), FED_SNAPSHOT_SCHEMA, payload.as_bytes())
}

fn read_fed_snapshot(root: &Path) -> Result<FedSnapshot, DurabilityError> {
    let path = fed_snapshot_path(root);
    let payload = read_snapshot(&path, FED_SNAPSHOT_SCHEMA)?;
    let text = String::from_utf8(payload).map_err(|_| DurabilityError::CorruptSnapshot {
        path: path.display().to_string(),
        reason: "payload is not valid UTF-8".to_owned(),
    })?;
    serde_json::from_str(&text).map_err(|e| DurabilityError::CorruptSnapshot {
        path: path.display().to_string(),
        reason: format!("payload failed to deserialize: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_federation::PartitionWindow;

    fn small(seed: u64) -> FederationConfig {
        FederationConfig::new(3, 12, seed).with_horizon(30).with_sync_every(5)
    }

    #[test]
    fn region_scenarios_cover_the_fleet_with_distinct_seeds() {
        let cfg = small(7);
        let total: usize =
            (0..3).map(|r| region_scenario(&cfg, r).system.topology.num_devices).sum();
        assert_eq!(total, 12);
        let seeds: Vec<u64> = (0..3).map(|r| region_scenario(&cfg, r).seed).collect();
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
        assert_eq!(region_scenario(&cfg, 0).seed, cfg.seed);
    }

    #[test]
    fn clean_fixed_federation_matches_standalone_regions() {
        let cfg = small(11).with_policy(RebalancePolicy::Fixed);
        let report = match run_federation(&cfg, &LinkFaultConfig::clean(), None).unwrap() {
            FederationRun::Completed(report) => report,
            FederationRun::Interrupted { slot } => panic!("interrupted at {slot}"),
        };
        let standalone = run_standalone(&cfg);
        assert_eq!(report.regions.len(), 3);
        for (fed, solo) in report.regions.iter().zip(&standalone) {
            assert_eq!(fed.latency, solo.latency);
            assert_eq!(fed.cost, solo.cost);
            assert_eq!(fed.queue, solo.queue);
            assert_eq!(fed.average_cost.to_bits(), solo.average_cost.to_bits());
        }
        // Clean link: every broadcast arrives, nothing rebalances.
        assert!(report.counters.get("fed.gossip_sent").copied().unwrap_or(0) > 0);
        assert_eq!(report.counters.get("fed.gossip_dropped").copied().unwrap_or(0), 0);
        assert_eq!(report.counters.get("fed.budget_rebalances").copied().unwrap_or(0), 0);
        assert_eq!(report.counters.get("fed.partitions").copied().unwrap_or(0), 0);
    }

    #[test]
    fn queue_proportional_rebalances_and_holds_the_fleet_budget() {
        let cfg = small(13);
        let report = match run_federation(&cfg, &LinkFaultConfig::clean(), None).unwrap() {
            FederationRun::Completed(report) => report,
            FederationRun::Interrupted { slot } => panic!("interrupted at {slot}"),
        };
        assert!(report.counters.get("fed.budget_rebalances").copied().unwrap_or(0) > 0);
        assert!(report.counters.get("fed.rounds_promoted").copied().unwrap_or(0) > 0);
        // Applied shares never overcommit; a round pending at the final
        // sync may hold part of the budget in reserve (the safe side),
        // so the sum can sit below 1 but must stay well above the floor.
        let share_sum: f64 = report.final_shares.iter().sum();
        assert!(share_sum <= 1.0 + 1e-9, "shares sum to {share_sum}, overcommitting the budget");
        assert!(share_sum >= 0.5, "shares sum to {share_sum}, far below any sane allocation");
        // Fleet feasibility under the O(V/T) transient of a short run.
        assert!(report.budget_satisfied(0.25 * report.config.total_budget));
    }

    #[test]
    fn partition_trips_the_degradation_ladder_and_heals() {
        let mut faults = LinkFaultConfig::clean();
        faults.partitions = vec![PartitionWindow { from_slot: 5, to_slot: 20, regions: vec![2] }];
        let cfg = small(17);
        let report = match run_federation(&cfg, &faults, None).unwrap() {
            FederationRun::Completed(report) => report,
            FederationRun::Interrupted { slot } => panic!("interrupted at {slot}"),
        };
        assert!(report.counters.get("fed.partitions").copied().unwrap_or(0) > 0);
        assert!(report.counters.get("fed.stale_epochs").copied().unwrap_or(0) > 0);
        assert!(report.counters.get("fed.gossip_dropped").copied().unwrap_or(0) > 0);
        for region in &report.regions {
            assert!(region.latency.values().iter().all(|&l| l.is_finite() && l > 0.0));
        }
    }

    #[test]
    fn mismatched_checkpoint_root_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!(
            "eotora-fedroot-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let cfg = small(19).with_horizon(10);
        let durability = DurabilityConfig::new(&dir);
        let run = run_federation(&cfg, &LinkFaultConfig::clean(), Some(&durability)).unwrap();
        assert!(matches!(run, FederationRun::Completed(_)));
        let other = small(23).with_horizon(10);
        let err = run_federation(&other, &LinkFaultConfig::clean(), Some(&durability))
            .expect_err("mismatched manifest must be rejected");
        assert!(matches!(err, DurabilityError::InvalidConfig { .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
