//! Kill–resume chaos tests for the durability subsystem.
//!
//! The pinned claim: a run interrupted at an arbitrary slot and resumed
//! from its checkpoint directory produces **bit-identical**
//! decision-derived output — every per-slot series, the queue trajectory,
//! the end-of-run averages, and all counters — versus the same scenario
//! run uninterrupted. Only wall-clock measurements (`solve_time`,
//! per-stage seconds) and the `durability.*` counters may differ.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use eotora_core::fault::FaultSchedule;
use eotora_durability::DurabilityError;
use eotora_sim::durable::{
    resume_durable, run_durable, run_durable_robust, DurabilityConfig, DurableRun,
};
use eotora_sim::{robust_config, run, run_robust, Scenario, SimulationResult};
use eotora_util::rng::Pcg32;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eotora-resume-{}-{tag}-{n}", std::process::id()));
    // Fresh every time: run_durable refuses a dir that already holds a run.
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn scenario(seed: u64) -> Scenario {
    Scenario::paper(8, seed).with_horizon(24).with_bdma_rounds(2)
}

fn completed(outcome: DurableRun) -> SimulationResult {
    match outcome {
        DurableRun::Completed(result) => *result,
        DurableRun::Interrupted { slot } => panic!("unexpected interrupt after slot {slot}"),
    }
}

fn interrupted(outcome: DurableRun) -> u64 {
    match outcome {
        DurableRun::Interrupted { slot } => slot,
        DurableRun::Completed(_) => panic!("run unexpectedly ran to completion"),
    }
}

fn non_durability_counters(c: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    c.iter()
        .filter(|(name, _)| !name.starts_with("durability."))
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

/// Asserts everything except wall-clock values and `durability.*` counters
/// is bit-identical.
fn assert_same(a: &SimulationResult, b: &SimulationResult) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.queue, b.queue);
    assert_eq!(a.price, b.price);
    assert_eq!(a.fairness, b.fairness);
    assert_eq!(a.handover_rate, b.handover_rate);
    assert_eq!(a.mean_clock_ghz, b.mean_clock_ghz);
    assert_eq!(a.rounds_used, b.rounds_used);
    assert_eq!(a.mean_bdma_rounds.to_bits(), b.mean_bdma_rounds.to_bits());
    assert_eq!(a.average_latency.to_bits(), b.average_latency.to_bits());
    assert_eq!(a.average_cost.to_bits(), b.average_cost.to_bits());
    assert_eq!(a.budget.to_bits(), b.budget.to_bits());
    assert_eq!(non_durability_counters(&a.counters), non_durability_counters(&b.counters));
    // Wall-clock series: same shape, values may differ.
    assert_eq!(a.solve_time.len(), b.solve_time.len());
    let stages_a: Vec<&String> = a.per_stage_solve_time.keys().collect();
    let stages_b: Vec<&String> = b.per_stage_solve_time.keys().collect();
    assert_eq!(stages_a, stages_b);
    for (name, series) in &a.per_stage_solve_time {
        assert_eq!(series.len(), b.per_stage_solve_time[name].len(), "stage {name}");
    }
}

#[test]
fn durable_run_without_kill_matches_plain_run() {
    let s = scenario(31);
    let cfg = DurabilityConfig::new(temp_dir("nokill"));
    let durable = completed(run_durable(&s, &cfg).unwrap());
    let reference = run(&s);
    assert_same(&durable, &reference);
    assert_eq!(durable.counters["durability.frames_journaled"], 24);
    // Every 10 slots plus the horizon: slots 10, 20, 24.
    assert_eq!(durable.counters["durability.snapshots_written"], 3);
    assert!(!durable.counters.contains_key("durability.resumed_slots"));
}

#[test]
fn kill_resume_is_bit_identical_at_randomized_slots() {
    let s = scenario(32);
    let reference = run(&s);
    let mut rng = Pcg32::seed_stream(0xC4A05, 7);
    for _ in 0..3 {
        let kill = rng.below(23) as u64;
        let mut cfg = DurabilityConfig::new(temp_dir("chaos"));
        cfg.checkpoint_every = 7;
        cfg.kill_at_slot = Some(kill);
        assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), kill);
        cfg.kill_at_slot = None;
        let resumed = completed(resume_durable(&cfg).unwrap());
        assert_same(&resumed, &reference);
        // The resume restored the slots of the last snapshot before the
        // kill (0 — and no counter — if it fired before the first one).
        let restored = resumed.counters.get("durability.resumed_slots").copied().unwrap_or(0);
        assert_eq!(restored, (kill + 1) / 7 * 7, "kill {kill}");
    }
}

#[test]
fn kill_resume_is_bit_identical_under_warm_starts() {
    let s = scenario(33).with_start_policy(eotora_core::bdma::StartPolicy::Warm);
    let reference = run(&s);
    let mut cfg = DurabilityConfig::new(temp_dir("warm"));
    cfg.checkpoint_every = 6;
    // Kill right on a checkpoint boundary: the resumed controller continues
    // purely from the serialized warm-start workspace.
    cfg.kill_at_slot = Some(11);
    assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), 11);
    cfg.kill_at_slot = None;
    let resumed = completed(resume_durable(&cfg).unwrap());
    assert_same(&resumed, &reference);
}

#[test]
fn kill_resume_is_bit_identical_under_faults() {
    let s = scenario(34);
    let faults = FaultSchedule::chaos_default(24, 16, 34);
    let reference = run_robust(&s, &faults, &robust_config(&s, None));
    let mut cfg = DurabilityConfig::new(temp_dir("robust"));
    cfg.checkpoint_every = 5;
    cfg.kill_at_slot = Some(13);
    assert_eq!(interrupted(run_durable_robust(&s, &faults, None, &cfg).unwrap()), 13);
    cfg.kill_at_slot = None;
    let resumed = completed(resume_durable(&cfg).unwrap());
    assert_same(&resumed, &reference);
}

#[test]
fn resumed_run_survives_a_second_kill() {
    let s = scenario(35);
    let reference = run(&s);
    let mut cfg = DurabilityConfig::new(temp_dir("double"));
    cfg.checkpoint_every = 4;
    cfg.kill_at_slot = Some(5);
    assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), 5);
    cfg.kill_at_slot = Some(15);
    assert_eq!(interrupted(resume_durable(&cfg).unwrap()), 15);
    cfg.kill_at_slot = None;
    let resumed = completed(resume_durable(&cfg).unwrap());
    assert_same(&resumed, &reference);
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> =
        fs::read_dir(dir.join("journal")).unwrap().map(|e| e.unwrap().path()).collect();
    segments.sort();
    segments.pop().unwrap()
}

#[test]
fn torn_journal_tail_is_dropped_and_the_run_still_resumes() {
    let s = scenario(36);
    let reference = run(&s);
    let mut cfg = DurabilityConfig::new(temp_dir("torn"));
    cfg.checkpoint_every = 5;
    cfg.kill_at_slot = Some(17);
    assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), 17);
    // Tear the final frame, as a crash mid-append would: 18 frames on disk,
    // snapshot at 15 → recovery drops the torn frame 18, discards intact
    // frames 16–17 past the snapshot, and re-executes from slot 15.
    let segment = last_segment(&cfg.dir);
    let len = fs::metadata(&segment).unwrap().len();
    fs::OpenOptions::new().write(true).open(&segment).unwrap().set_len(len - 3).unwrap();
    cfg.kill_at_slot = None;
    let resumed = completed(resume_durable(&cfg).unwrap());
    assert_same(&resumed, &reference);
    assert_eq!(resumed.counters["durability.torn_frames_dropped"], 1);
    assert_eq!(resumed.counters["durability.frames_discarded"], 2);
    assert_eq!(resumed.counters["durability.resumed_slots"], 15);
}

#[test]
fn mid_journal_corruption_is_a_typed_error() {
    let s = scenario(37);
    let mut cfg = DurabilityConfig::new(temp_dir("midlog"));
    cfg.kill_at_slot = Some(14);
    assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), 14);
    // Flip a payload byte of the first frame — bytes follow, so this can
    // never be mistaken for a torn tail.
    let segment = last_segment(&cfg.dir);
    let mut file = fs::OpenOptions::new().read(true).write(true).open(&segment).unwrap();
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(9)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    file.seek(SeekFrom::Start(9)).unwrap();
    file.write_all(&byte).unwrap();
    drop(file);
    cfg.kill_at_slot = None;
    match resume_durable(&cfg) {
        Err(DurabilityError::CorruptFrame { frame, .. }) => assert_eq!(frame, 0),
        other => panic!("expected CorruptFrame, got {other:?}"),
    }
}

#[test]
fn corrupt_snapshot_is_a_typed_error() {
    let s = scenario(38);
    let mut cfg = DurabilityConfig::new(temp_dir("snapcorrupt"));
    cfg.kill_at_slot = Some(12);
    assert_eq!(interrupted(run_durable(&s, &cfg).unwrap()), 12);
    let snap = cfg.dir.join("snapshot.bin");
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();
    cfg.kill_at_slot = None;
    match resume_durable(&cfg) {
        Err(DurabilityError::CorruptSnapshot { .. }) => {}
        other => panic!("expected CorruptSnapshot, got {other:?}"),
    }
}

#[test]
fn a_directory_already_holding_a_run_is_rejected() {
    let s = scenario(39).with_horizon(4);
    let cfg = DurabilityConfig::new(temp_dir("reuse"));
    completed(run_durable(&s, &cfg).unwrap());
    match run_durable(&s, &cfg) {
        Err(DurabilityError::InvalidConfig { reason }) => {
            assert!(reason.contains("already holds a run"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
