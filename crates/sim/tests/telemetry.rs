//! End-to-end telemetry: a run with sanitization disabled under a
//! corrupt-state burst must escalate the robust ladder, and the attached
//! [`TelemetrySession`] must dump a flight-recorder postmortem that is
//! valid JSONL.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use eotora_core::fault::{FaultAction, FaultEvent, FaultSchedule};
use eotora_obs::{TelemetryConfig, TelemetrySession};
use eotora_sim::runner::{robust_config, run_robust_traced};
use eotora_sim::scenario::Scenario;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("eotora-telemetry-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A long corrupt-state burst with the sanitizer switched off: NaN/garbage
/// observations reach the solver, the robust ladder falls through to its
/// lifeboat, and the telemetry session must capture a postmortem.
#[test]
fn induced_solve_failure_produces_valid_postmortem() {
    let scenario = Scenario::paper(6, 4242).with_horizon(40);
    let faults = FaultSchedule {
        events: vec![FaultEvent { slot: 5, action: FaultAction::CorruptState { slots: 25 } }],
    };
    let mut robust = robust_config(&scenario, None);
    robust.sanitize = false;

    let dir = temp_dir("postmortem");
    let telemetry = TelemetrySession::new(TelemetryConfig {
        v: scenario.dpp.v,
        budget: scenario.system.budget_per_slot,
        postmortem_dir: Some(dir.clone()),
        ..TelemetryConfig::default()
    });
    let result = run_robust_traced(&scenario, &faults, &robust, &telemetry);
    assert_eq!(result.queue.len(), 40);

    // The ladder actually escalated (the whole point of --no-sanitize).
    let escalations = result.counters.get("robust.solve_errors").copied().unwrap_or(0)
        + result.counters.get("robust.equal_share_fallbacks").copied().unwrap_or(0);
    assert!(
        escalations > 0,
        "corrupt burst with sanitize=false should escalate the ladder; counters: {:?}",
        result.counters
    );

    assert!(telemetry.postmortems() > 0, "escalation should have dumped a postmortem");
    let dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-slot") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(!dumps.is_empty(), "no flight-slot*.jsonl in {}", dir.display());

    // Every dumped line is a well-formed TraceRecord JSON object.
    for path in &dumps {
        let text = std::fs::read_to_string(path).unwrap();
        let mut lines = 0;
        for line in text.lines() {
            let value = serde_json::parse(line)
                .unwrap_or_else(|e| panic!("bad JSONL in {}: {e}", path.display()));
            let serde::Value::Object(fields) = value else {
                panic!("postmortem line is not an object: {line}");
            };
            for key in ["seq", "t_ns", "type"] {
                assert!(fields.iter().any(|(name, _)| name == key), "missing {key}: {line}");
            }
            lines += 1;
        }
        assert!(lines > 0, "empty postmortem {}", path.display());
    }
    let health = telemetry.health_summary();
    assert_ne!(
        health.worst,
        eotora_obs::HealthStatus::Ok,
        "induced failures should degrade health"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// With the sanitizer left on (the default), the same corrupt burst is
/// screened: no ladder escalation, no postmortems, health recovers.
#[test]
fn sanitized_run_produces_no_postmortem() {
    let scenario = Scenario::paper(6, 4242).with_horizon(40);
    let faults = FaultSchedule {
        events: vec![FaultEvent { slot: 5, action: FaultAction::CorruptState { slots: 25 } }],
    };
    let robust = robust_config(&scenario, None);
    assert!(robust.sanitize, "sanitizer should be on by default");

    let dir = temp_dir("clean");
    let telemetry = TelemetrySession::new(TelemetryConfig {
        v: scenario.dpp.v,
        budget: scenario.system.budget_per_slot,
        postmortem_dir: Some(dir.clone()),
        ..TelemetryConfig::default()
    });
    let result = run_robust_traced(&scenario, &faults, &robust, &telemetry);
    assert!(result.counters.get("fault.state_substitutions").copied().unwrap_or(0) > 0);
    assert_eq!(result.counters.get("robust.solve_errors").copied().unwrap_or(0), 0);
    assert_eq!(telemetry.postmortems(), 0, "sanitized run should not dump postmortems");

    std::fs::remove_dir_all(&dir).ok();
}
