//! Kill–resume chaos tests for the federation runner.
//!
//! The pinned claim extends the single-run durability contract to the
//! whole federation: killing every region mid-run — including mid
//! *partition*, with gossip frames in flight inside the link-fault
//! buffer — and resuming from the checkpoint root reproduces every
//! region's decision-derived output and every `fed.*` counter
//! **bit-identically** versus the same federation run uninterrupted.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use eotora_federation::{LinkFaultConfig, PartitionWindow};
use eotora_sim::durable::DurabilityConfig;
use eotora_sim::federation::{run_federation, FederationConfig, FederationReport, FederationRun};
use eotora_sim::SimulationResult;

fn temp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eotora-fed-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// 3 regions, 60 slots, epoch every 6 slots, with a partition cutting
/// region 2 off across the middle of the run and a lossy link around it.
fn config(seed: u64) -> FederationConfig {
    FederationConfig::new(3, 12, seed).with_horizon(60).with_sync_every(6)
}

fn faults(seed: u64) -> LinkFaultConfig {
    let mut faults = LinkFaultConfig::lossy(seed);
    faults.partitions = vec![PartitionWindow { from_slot: 12, to_slot: 40, regions: vec![2] }];
    faults
}

fn completed(run: FederationRun) -> FederationReport {
    match run {
        FederationRun::Completed(report) => *report,
        FederationRun::Interrupted { slot } => panic!("unexpected interrupt after slot {slot}"),
    }
}

fn interrupted(run: FederationRun) -> u64 {
    match run {
        FederationRun::Interrupted { slot } => slot,
        FederationRun::Completed(_) => panic!("federation unexpectedly ran to completion"),
    }
}

fn non_durability_counters(c: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    c.iter()
        .filter(|(name, _)| !name.starts_with("durability."))
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

fn assert_same_region(a: &SimulationResult, b: &SimulationResult) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.queue, b.queue);
    assert_eq!(a.price, b.price);
    assert_eq!(a.fairness, b.fairness);
    assert_eq!(a.handover_rate, b.handover_rate);
    assert_eq!(a.mean_clock_ghz, b.mean_clock_ghz);
    assert_eq!(a.average_latency.to_bits(), b.average_latency.to_bits());
    assert_eq!(a.average_cost.to_bits(), b.average_cost.to_bits());
    assert_eq!(a.budget.to_bits(), b.budget.to_bits());
    assert_eq!(non_durability_counters(&a.counters), non_durability_counters(&b.counters));
}

fn assert_same_federation(a: &FederationReport, b: &FederationReport) {
    assert_eq!(a.regions.len(), b.regions.len());
    for (ra, rb) in a.regions.iter().zip(&b.regions) {
        assert_same_region(ra, rb);
    }
    let shares_a: Vec<u64> = a.final_shares.iter().map(|s| s.to_bits()).collect();
    let shares_b: Vec<u64> = b.final_shares.iter().map(|s| s.to_bits()).collect();
    assert_eq!(shares_a, shares_b);
    assert_eq!(a.fleet_average_cost.to_bits(), b.fleet_average_cost.to_bits());
    assert_eq!(non_durability_counters(&a.counters), non_durability_counters(&b.counters));
}

#[test]
fn durable_federation_without_kill_matches_in_memory_run() {
    let cfg = config(41);
    let reference = completed(run_federation(&cfg, &faults(41), None).unwrap());
    let durability = DurabilityConfig::new(temp_root("nokill"));
    let durable = completed(run_federation(&cfg, &faults(41), Some(&durability)).unwrap());
    assert_same_federation(&durable, &reference);
    // The chaos setup must actually exercise the ladder for the identity
    // claim to mean anything.
    assert!(reference.counters.get("fed.partitions").copied().unwrap_or(0) > 0);
    assert!(reference.counters.get("fed.gossip_dropped").copied().unwrap_or(0) > 0);
    let _ = fs::remove_dir_all(&durability.dir);
}

#[test]
fn kill_mid_partition_and_resume_is_bit_identical() {
    let cfg = config(42);
    let reference = completed(run_federation(&cfg, &faults(42), None).unwrap());
    // Slot 25 is inside the partition window (12..40) and off the
    // checkpoint cadence, so the resume re-executes slots 20..=25 and
    // re-runs the epoch-4 boundary (slot 24) from the federation snapshot.
    let mut durability = DurabilityConfig::new(temp_root("midpart"));
    durability.checkpoint_every = 10;
    durability.kill_at_slot = Some(25);
    assert_eq!(interrupted(run_federation(&cfg, &faults(42), Some(&durability)).unwrap()), 25);
    durability.kill_at_slot = None;
    let resumed = completed(run_federation(&cfg, &faults(42), Some(&durability)).unwrap());
    assert_same_federation(&resumed, &reference);
    // Each region replayed the 20 snapshotted slots instead of re-solving.
    for region in &resumed.regions {
        assert_eq!(region.counters.get("durability.resumed_slots").copied().unwrap_or(0), 20);
    }
    let _ = fs::remove_dir_all(&durability.dir);
}

#[test]
fn kill_on_a_sync_boundary_and_resume_is_bit_identical() {
    let cfg = config(43);
    let reference = completed(run_federation(&cfg, &faults(43), None).unwrap());
    // Kill right after slot 29: the snapshot lands at completed == 30,
    // which is also the epoch-5 boundary slot — the resumed run's first
    // action is re-running that boundary from the restored node and
    // link-fault state (delayed frames still in flight).
    let mut durability = DurabilityConfig::new(temp_root("boundary"));
    durability.checkpoint_every = 10;
    durability.kill_at_slot = Some(29);
    assert_eq!(interrupted(run_federation(&cfg, &faults(43), Some(&durability)).unwrap()), 29);
    durability.kill_at_slot = None;
    let resumed = completed(run_federation(&cfg, &faults(43), Some(&durability)).unwrap());
    assert_same_federation(&resumed, &reference);
    let _ = fs::remove_dir_all(&durability.dir);
}

#[test]
fn resumed_federation_survives_a_second_kill() {
    let cfg = config(44);
    let reference = completed(run_federation(&cfg, &faults(44), None).unwrap());
    let mut durability = DurabilityConfig::new(temp_root("double"));
    durability.checkpoint_every = 8;
    durability.kill_at_slot = Some(13);
    assert_eq!(interrupted(run_federation(&cfg, &faults(44), Some(&durability)).unwrap()), 13);
    durability.kill_at_slot = Some(37);
    assert_eq!(interrupted(run_federation(&cfg, &faults(44), Some(&durability)).unwrap()), 37);
    durability.kill_at_slot = None;
    let resumed = completed(run_federation(&cfg, &faults(44), Some(&durability)).unwrap());
    assert_same_federation(&resumed, &reference);
    let _ = fs::remove_dir_all(&durability.dir);
}
