//! Property-based tests for the topology crate.

use eotora_topology::{CoverageModel, RandomTopologyConfig, Topology};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = RandomTopologyConfig> {
    (
        1usize..8,  // base stations
        1usize..4,  // clusters
        1usize..6,  // servers per cluster
        1usize..40, // devices
        1usize..4,  // links per bs (clamped below)
        prop::bool::ANY,
    )
        .prop_map(|(k, m, spc, i, links, radius)| RandomTopologyConfig {
            num_base_stations: k,
            num_clusters: m,
            servers_per_cluster: spc,
            num_devices: i,
            links_per_base_station: links.min(m),
            coverage: if radius { CoverageModel::Radius } else { CoverageModel::Full },
            ..RandomTopologyConfig::paper_defaults(i)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// Every randomly generated topology validates and has consistent counts.
    #[test]
    fn random_topologies_always_validate(config in arb_config(), seed in 0u64..1_000) {
        let t = Topology::random(&config, seed);
        prop_assert!(t.validate().is_ok());
        prop_assert_eq!(t.num_base_stations(), config.num_base_stations);
        prop_assert_eq!(t.num_clusters(), config.num_clusters);
        prop_assert_eq!(t.num_servers(), config.num_clusters * config.servers_per_cluster);
        prop_assert_eq!(t.num_devices(), config.num_devices);
    }

    /// Reachability is exactly the union of the linked clusters' servers:
    /// sorted, deduplicated, and every reachable server's cluster is linked.
    #[test]
    fn reachability_is_union_of_linked_clusters(config in arb_config(), seed in 0u64..1_000) {
        let t = Topology::random(&config, seed);
        for k in t.base_station_ids() {
            let reachable = t.servers_reachable_from(k);
            prop_assert!(reachable.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
            let linked = &t.base_station(k).linked_clusters;
            let expected: usize =
                linked.iter().map(|&m| t.cluster(m).servers.len()).sum();
            prop_assert_eq!(reachable.len(), expected);
            for n in reachable {
                prop_assert!(linked.contains(&t.server(n).cluster));
            }
        }
    }

    /// Full coverage always yields every station; radius coverage yields a
    /// subset consistent with distances.
    #[test]
    fn coverage_is_consistent(config in arb_config(), seed in 0u64..1_000) {
        let t = Topology::random(&config, seed);
        for i in t.device_ids() {
            let covering = t.covering_base_stations(i);
            match t.coverage() {
                CoverageModel::Full => {
                    prop_assert_eq!(covering.len(), t.num_base_stations())
                }
                CoverageModel::Radius => {
                    for k in t.base_station_ids() {
                        let bs = t.base_station(k);
                        let within =
                            bs.position.distance_to(t.device(i).position) <= bs.coverage_radius_m;
                        prop_assert_eq!(covering.contains(&k), within);
                    }
                }
            }
        }
    }

    /// serde round-trips preserve the topology exactly.
    #[test]
    fn serde_roundtrip(config in arb_config(), seed in 0u64..100) {
        let t = Topology::random(&config, seed);
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, t);
    }
}
