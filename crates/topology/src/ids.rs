//! Typed index newtypes for topology entities.
//!
//! Using distinct id types (rather than bare `usize`) makes it impossible to
//! hand a server index to an API expecting a base-station index — the class
//! of bug most common in matrix-indexed offloading code.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The raw zero-based index.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                Self(i)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Index of a base station (`B_k` in the paper, `k ∈ [K]`).
    BaseStationId,
    "B"
);
define_id!(
    /// Index of an edge server (`S_n` in the paper, `n ∈ [N]`).
    ServerId,
    "S"
);
define_id!(
    /// Index of an edge-server room/cluster (`m ∈ [M]`).
    ClusterId,
    "R"
);
define_id!(
    /// Index of a mobile device (`D_i` in the paper, `i ∈ [I]`).
    DeviceId,
    "D"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_letters() {
        assert_eq!(BaseStationId(3).to_string(), "B3");
        assert_eq!(ServerId(0).to_string(), "S0");
        assert_eq!(ClusterId(1).to_string(), "R1");
        assert_eq!(DeviceId(42).to_string(), "D42");
    }

    #[test]
    fn conversions_roundtrip() {
        let s: ServerId = 7usize.into();
        assert_eq!(s.index(), 7);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(DeviceId(1));
        set.insert(DeviceId(1));
        set.insert(DeviceId(2));
        assert_eq!(set.len(), 2);
        assert!(DeviceId(1) < DeviceId(2));
    }

    #[test]
    fn serde_roundtrip() {
        let id = ServerId(9);
        let json = serde_json::to_string(&id).unwrap();
        let back: ServerId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
