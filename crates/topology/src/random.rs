//! Random topology generation matching the paper's §VI-A settings.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::geometry::Point;
use crate::model::{CoverageModel, Topology, TopologyBuilder};
use crate::ClusterId;

/// Configuration for [`Topology::random`].
///
/// The defaults mirror the paper's simulation: six base stations, two server
/// rooms with eight servers each (half with 64 cores, half with 128), access
/// bandwidth uniform in 50–100 MHz, wired fronthaul 0.5–1 GHz at a fixed
/// spectral efficiency of 10 bit/s/Hz, each base station wired to one random
/// room, and server clocks scalable over 1.8–3.6 GHz (the i7-3770K range used
/// for the energy model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomTopologyConfig {
    /// Number of base stations `K`.
    pub num_base_stations: usize,
    /// Number of server rooms `M`.
    pub num_clusters: usize,
    /// Servers per room (`N = num_clusters × servers_per_cluster`).
    pub servers_per_cluster: usize,
    /// Number of mobile devices `I`.
    pub num_devices: usize,
    /// Uniform range for access bandwidth `W_k^A` in Hz.
    pub access_bandwidth_hz: (f64, f64),
    /// Uniform range for fronthaul bandwidth `W_k^F` in Hz.
    pub fronthaul_bandwidth_hz: (f64, f64),
    /// Fixed fronthaul spectral efficiency `h^F` in bit/s/Hz.
    pub fronthaul_spectral_efficiency: f64,
    /// Core counts to alternate across servers (paper: half 64, half 128).
    pub core_options: Vec<u32>,
    /// Server clock bounds `(F^L, F^U)` in Hz.
    pub freq_bounds_hz: (f64, f64),
    /// Side length in meters of the square deployment area.
    pub area_side_m: f64,
    /// Coverage radius assigned to every base station (meters); only matters
    /// under [`CoverageModel::Radius`].
    pub coverage_radius_m: f64,
    /// Coverage model for the generated topology.
    pub coverage: CoverageModel,
    /// Number of clusters each base station links to (paper: wired ⇒ 1).
    pub links_per_base_station: usize,
}

impl RandomTopologyConfig {
    /// The paper's §VI-A parameters with `num_devices` devices.
    pub fn paper_defaults(num_devices: usize) -> Self {
        Self {
            num_base_stations: 6,
            num_clusters: 2,
            servers_per_cluster: 8,
            num_devices,
            access_bandwidth_hz: (50e6, 100e6),
            fronthaul_bandwidth_hz: (0.5e9, 1.0e9),
            fronthaul_spectral_efficiency: 10.0,
            core_options: vec![64, 128],
            freq_bounds_hz: (1.8e9, 3.6e9),
            area_side_m: 2_000.0,
            coverage_radius_m: 1_500.0,
            coverage: CoverageModel::Full,
            links_per_base_station: 1,
        }
    }

    /// A deliberately tiny instance for exact-baseline tests (2 BSs, 1 room,
    /// 3 servers).
    pub fn tiny(num_devices: usize) -> Self {
        Self {
            num_base_stations: 2,
            num_clusters: 1,
            servers_per_cluster: 3,
            num_devices,
            links_per_base_station: 1,
            ..Self::paper_defaults(num_devices)
        }
    }
}

impl Topology {
    /// Generates a random topology per `config`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has zero entities, empty `core_options`, or
    /// `links_per_base_station` exceeding `num_clusters` — these indicate a
    /// programming error in experiment setup, not runtime input.
    pub fn random(config: &RandomTopologyConfig, seed: u64) -> Topology {
        assert!(config.num_base_stations > 0, "need at least one base station");
        assert!(config.num_clusters > 0, "need at least one cluster");
        assert!(config.servers_per_cluster > 0, "need at least one server per cluster");
        assert!(config.num_devices > 0, "need at least one device");
        assert!(!config.core_options.is_empty(), "core_options must be non-empty");
        assert!(
            (1..=config.num_clusters).contains(&config.links_per_base_station),
            "links_per_base_station must be in 1..=num_clusters"
        );

        let mut rng = Pcg32::seed_stream(seed, 0x70_70);
        let mut b = TopologyBuilder::new().coverage(config.coverage);

        for _ in 0..config.num_clusters {
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.cluster(pos);
        }
        let total_servers = config.num_clusters * config.servers_per_cluster;
        for n in 0..total_servers {
            let cluster = ClusterId(n / config.servers_per_cluster);
            // Alternate core options so "half have 64 cores, half 128".
            let cores = config.core_options[n % config.core_options.len()];
            b = b.server(cluster, cores, config.freq_bounds_hz.0, config.freq_bounds_hz.1);
        }
        for _ in 0..config.num_base_stations {
            let mut cluster_ids: Vec<ClusterId> = (0..config.num_clusters).map(ClusterId).collect();
            rng.shuffle(&mut cluster_ids);
            cluster_ids.truncate(config.links_per_base_station);
            cluster_ids.sort_unstable();
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.base_station(
                rng.uniform_in(config.access_bandwidth_hz.0, config.access_bandwidth_hz.1),
                rng.uniform_in(config.fronthaul_bandwidth_hz.0, config.fronthaul_bandwidth_hz.1),
                config.fronthaul_spectral_efficiency,
                cluster_ids,
                pos,
                config.coverage_radius_m,
            );
        }
        for _ in 0..config.num_devices {
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.device(pos);
        }
        b.build().expect("randomly generated topology must validate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_shape() {
        let t = Topology::random(&RandomTopologyConfig::paper_defaults(100), 1);
        assert_eq!(t.num_base_stations(), 6);
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.num_servers(), 16);
        assert_eq!(t.num_devices(), 100);
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomTopologyConfig::paper_defaults(30);
        let a = Topology::random(&cfg, 7);
        let b = Topology::random(&cfg, 7);
        assert_eq!(a, b);
        let c = Topology::random(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn parameter_ranges_respected() {
        let cfg = RandomTopologyConfig::paper_defaults(10);
        let t = Topology::random(&cfg, 3);
        for k in t.base_station_ids() {
            let bs = t.base_station(k);
            assert!((50e6..=100e6).contains(&bs.access_bandwidth_hz));
            assert!((0.5e9..=1.0e9).contains(&bs.fronthaul_bandwidth_hz));
            assert_eq!(bs.fronthaul_spectral_efficiency, 10.0);
            assert_eq!(bs.linked_clusters.len(), 1);
        }
        for n in t.server_ids() {
            let s = t.server(n);
            assert!(s.cores == 64 || s.cores == 128);
            assert_eq!(s.freq_min_hz, 1.8e9);
            assert_eq!(s.freq_max_hz, 3.6e9);
        }
    }

    #[test]
    fn half_servers_each_core_count() {
        let t = Topology::random(&RandomTopologyConfig::paper_defaults(10), 5);
        let big = t.server_ids().filter(|&n| t.server(n).cores == 128).count();
        assert_eq!(big, 8);
    }

    #[test]
    fn multi_link_base_stations() {
        let cfg = RandomTopologyConfig {
            links_per_base_station: 2,
            ..RandomTopologyConfig::paper_defaults(10)
        };
        let t = Topology::random(&cfg, 4);
        for k in t.base_station_ids() {
            assert_eq!(t.base_station(k).linked_clusters.len(), 2);
            assert_eq!(t.servers_reachable_from(k).len(), 16);
        }
    }

    #[test]
    fn tiny_config_shape() {
        let t = Topology::random(&RandomTopologyConfig::tiny(4), 2);
        assert_eq!(t.num_base_stations(), 2);
        assert_eq!(t.num_servers(), 3);
        assert_eq!(t.num_devices(), 4);
    }

    #[test]
    #[should_panic(expected = "links_per_base_station")]
    fn too_many_links_panics() {
        let cfg = RandomTopologyConfig {
            links_per_base_station: 5,
            ..RandomTopologyConfig::paper_defaults(10)
        };
        Topology::random(&cfg, 0);
    }
}
