//! Random topology generation matching the paper's §VI-A settings.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::geometry::Point;
use crate::model::{CoverageModel, Topology, TopologyBuilder};
use crate::ClusterId;

/// Configuration for [`Topology::random`].
///
/// The defaults mirror the paper's simulation: six base stations, two server
/// rooms with eight servers each (half with 64 cores, half with 128), access
/// bandwidth uniform in 50–100 MHz, wired fronthaul 0.5–1 GHz at a fixed
/// spectral efficiency of 10 bit/s/Hz, each base station wired to one random
/// room, and server clocks scalable over 1.8–3.6 GHz (the i7-3770K range used
/// for the energy model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomTopologyConfig {
    /// Number of base stations `K`.
    pub num_base_stations: usize,
    /// Number of server rooms `M`.
    pub num_clusters: usize,
    /// Servers per room (`N = num_clusters × servers_per_cluster`).
    pub servers_per_cluster: usize,
    /// Number of mobile devices `I`.
    pub num_devices: usize,
    /// Uniform range for access bandwidth `W_k^A` in Hz.
    pub access_bandwidth_hz: (f64, f64),
    /// Uniform range for fronthaul bandwidth `W_k^F` in Hz.
    pub fronthaul_bandwidth_hz: (f64, f64),
    /// Fixed fronthaul spectral efficiency `h^F` in bit/s/Hz.
    pub fronthaul_spectral_efficiency: f64,
    /// Core counts to alternate across servers (paper: half 64, half 128).
    pub core_options: Vec<u32>,
    /// Server clock bounds `(F^L, F^U)` in Hz.
    pub freq_bounds_hz: (f64, f64),
    /// Side length in meters of the square deployment area.
    pub area_side_m: f64,
    /// Coverage radius assigned to every base station (meters); only matters
    /// under [`CoverageModel::Radius`].
    pub coverage_radius_m: f64,
    /// Coverage model for the generated topology.
    pub coverage: CoverageModel,
    /// Number of clusters each base station links to (paper: wired ⇒ 1).
    pub links_per_base_station: usize,
    /// When `> 0`, generate that many geographically disjoint *islands*
    /// instead of one shared deployment. In island mode
    /// `num_base_stations`, `num_clusters`, and `servers_per_cluster` are
    /// per-island counts, devices are spread round-robin across islands,
    /// coverage is forced to [`CoverageModel::Radius`], and each base
    /// station links only to its own island's clusters — so the resource
    /// graph decomposes into one component per island (see
    /// `ClusterPartition`). `0` keeps the classic single-area generator.
    pub islands: usize,
    /// In island mode, how many of the `num_devices` devices are placed at
    /// island midpoints where they are covered by two adjacent islands —
    /// deliberate *cut devices* for reconciliation tests. Ignored when
    /// `islands == 0`; requires `islands ≥ 2` otherwise.
    pub island_straddlers: usize,
}

impl RandomTopologyConfig {
    /// The paper's §VI-A parameters with `num_devices` devices.
    pub fn paper_defaults(num_devices: usize) -> Self {
        Self {
            num_base_stations: 6,
            num_clusters: 2,
            servers_per_cluster: 8,
            num_devices,
            access_bandwidth_hz: (50e6, 100e6),
            fronthaul_bandwidth_hz: (0.5e9, 1.0e9),
            fronthaul_spectral_efficiency: 10.0,
            core_options: vec![64, 128],
            freq_bounds_hz: (1.8e9, 3.6e9),
            area_side_m: 2_000.0,
            coverage_radius_m: 1_500.0,
            coverage: CoverageModel::Full,
            links_per_base_station: 1,
            islands: 0,
            island_straddlers: 0,
        }
    }

    /// A scale-out configuration: `islands` disjoint BS clusters with
    /// realistic per-island fan-out (4 BSs → 1 room × 8 servers), devices
    /// spread round-robin. The resource graph has exactly `islands`
    /// connected components, so the sharded solver gets one subgame per
    /// island. Used by the 10k–100k device benches and the shard tests.
    pub fn scale_up(num_devices: usize, islands: usize) -> Self {
        Self {
            num_base_stations: 4,
            num_clusters: 1,
            servers_per_cluster: 8,
            num_devices,
            coverage_radius_m: 1_000.0,
            coverage: CoverageModel::Radius,
            islands,
            ..Self::paper_defaults(num_devices)
        }
    }

    /// The per-region topology of a fleet federated across `regions`
    /// controllers: region `index` runs one [`Self::scale_up`] island with
    /// its round-robin share of the devices ([`region_devices`]). Each
    /// region is an independent topology — federated controllers are
    /// coupled only through the shared energy budget, never the radio
    /// plane.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero or `index` is out of range.
    pub fn region(total_devices: usize, regions: usize, index: usize) -> Self {
        Self::scale_up(region_devices(total_devices, regions, index), 1)
    }

    /// A deliberately tiny instance for exact-baseline tests (2 BSs, 1 room,
    /// 3 servers).
    pub fn tiny(num_devices: usize) -> Self {
        Self {
            num_base_stations: 2,
            num_clusters: 1,
            servers_per_cluster: 3,
            num_devices,
            links_per_base_station: 1,
            ..Self::paper_defaults(num_devices)
        }
    }
}

/// The round-robin device share of region `index` in a fleet of
/// `total_devices` split across `regions` controllers: the first
/// `total_devices % regions` regions take one extra device, so shares
/// differ by at most one and always sum to the fleet size.
///
/// # Panics
///
/// Panics if `regions` is zero or `index` is out of range.
pub fn region_devices(total_devices: usize, regions: usize, index: usize) -> usize {
    assert!(regions > 0, "a federation needs at least one region");
    assert!(index < regions, "region index {index} out of range for {regions} regions");
    total_devices / regions + usize::from(index < total_devices % regions)
}

impl Topology {
    /// Generates a random topology per `config`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has zero entities, empty `core_options`, or
    /// `links_per_base_station` exceeding `num_clusters` — these indicate a
    /// programming error in experiment setup, not runtime input.
    pub fn random(config: &RandomTopologyConfig, seed: u64) -> Topology {
        assert!(config.num_base_stations > 0, "need at least one base station");
        assert!(config.num_clusters > 0, "need at least one cluster");
        assert!(config.servers_per_cluster > 0, "need at least one server per cluster");
        assert!(config.num_devices > 0, "need at least one device");
        assert!(!config.core_options.is_empty(), "core_options must be non-empty");
        assert!(
            (1..=config.num_clusters).contains(&config.links_per_base_station),
            "links_per_base_station must be in 1..=num_clusters"
        );
        if config.islands > 0 {
            return random_islands(config, seed);
        }

        let mut rng = Pcg32::seed_stream(seed, 0x70_70);
        let mut b = TopologyBuilder::new().coverage(config.coverage);

        for _ in 0..config.num_clusters {
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.cluster(pos);
        }
        let total_servers = config.num_clusters * config.servers_per_cluster;
        for n in 0..total_servers {
            let cluster = ClusterId(n / config.servers_per_cluster);
            // Alternate core options so "half have 64 cores, half 128".
            let cores = config.core_options[n % config.core_options.len()];
            b = b.server(cluster, cores, config.freq_bounds_hz.0, config.freq_bounds_hz.1);
        }
        for _ in 0..config.num_base_stations {
            let mut cluster_ids: Vec<ClusterId> = (0..config.num_clusters).map(ClusterId).collect();
            rng.shuffle(&mut cluster_ids);
            cluster_ids.truncate(config.links_per_base_station);
            cluster_ids.sort_unstable();
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.base_station(
                rng.uniform_in(config.access_bandwidth_hz.0, config.access_bandwidth_hz.1),
                rng.uniform_in(config.fronthaul_bandwidth_hz.0, config.fronthaul_bandwidth_hz.1),
                config.fronthaul_spectral_efficiency,
                cluster_ids,
                pos,
                config.coverage_radius_m,
            );
        }
        for _ in 0..config.num_devices {
            let pos = Point::new(
                rng.uniform_in(0.0, config.area_side_m),
                rng.uniform_in(0.0, config.area_side_m),
            );
            b = b.device(pos);
        }
        b.build().expect("randomly generated topology must validate")
    }
}

/// Island-mode generator behind [`Topology::random`] (`config.islands > 0`).
///
/// Islands sit on a line, centers spaced `1.8 × coverage_radius_m` apart, so
/// island deployments never overlap: stations sit within `0.05 r` of their
/// island center, regular devices within `0.2 r`, which puts every regular
/// device well inside its own island's coverage (≤ `0.33 r`) and well
/// outside any other island's (≥ `1.5 r`). Straddlers sit exactly at the
/// midpoint between two adjacent centers (`0.9 r` from each) so both
/// islands cover them — the deliberate cut devices.
fn random_islands(config: &RandomTopologyConfig, seed: u64) -> Topology {
    assert!(
        config.island_straddlers == 0 || config.islands >= 2,
        "island_straddlers requires at least two islands"
    );
    assert!(
        config.num_devices > config.island_straddlers,
        "need at least one non-straddler device"
    );

    let r = config.coverage_radius_m;
    let spacing = 1.8 * r;
    let center = |island: usize| Point::new(spacing * (island as f64 + 0.5), spacing * 0.5);

    let mut rng = Pcg32::seed_stream(seed, 0x70_71);
    let mut b = TopologyBuilder::new().coverage(CoverageModel::Radius);

    for island in 0..config.islands {
        let c = center(island);
        for _ in 0..config.num_clusters {
            b = b.cluster(c);
        }
        let first_cluster = island * config.num_clusters;
        for n in 0..config.num_clusters * config.servers_per_cluster {
            let cluster = ClusterId(first_cluster + n / config.servers_per_cluster);
            let cores = config.core_options[n % config.core_options.len()];
            b = b.server(cluster, cores, config.freq_bounds_hz.0, config.freq_bounds_hz.1);
        }
        for j in 0..config.num_base_stations {
            let mut cluster_ids: Vec<ClusterId> =
                (first_cluster..first_cluster + config.num_clusters).map(ClusterId).collect();
            rng.shuffle(&mut cluster_ids);
            cluster_ids.truncate(config.links_per_base_station);
            cluster_ids.sort_unstable();
            // Stations on a small ring around the center keeps positions
            // distinct without risking foreign-island coverage.
            let angle = std::f64::consts::TAU * j as f64 / config.num_base_stations as f64;
            let pos = Point::new(c.x + 0.05 * r * angle.cos(), c.y + 0.05 * r * angle.sin());
            b = b.base_station(
                rng.uniform_in(config.access_bandwidth_hz.0, config.access_bandwidth_hz.1),
                rng.uniform_in(config.fronthaul_bandwidth_hz.0, config.fronthaul_bandwidth_hz.1),
                config.fronthaul_spectral_efficiency,
                cluster_ids,
                pos,
                r,
            );
        }
    }

    let regulars = config.num_devices - config.island_straddlers;
    for d in 0..regulars {
        let c = center(d % config.islands);
        let pos = Point::new(
            c.x + rng.uniform_in(-0.2 * r, 0.2 * r),
            c.y + rng.uniform_in(-0.2 * r, 0.2 * r),
        );
        b = b.device(pos);
    }
    for s in 0..config.island_straddlers {
        let left = s % (config.islands - 1);
        let (a, z) = (center(left), center(left + 1));
        b = b.device(Point::new((a.x + z.x) / 2.0, (a.y + z.y) / 2.0));
    }
    b.build().expect("island topology must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_shape() {
        let t = Topology::random(&RandomTopologyConfig::paper_defaults(100), 1);
        assert_eq!(t.num_base_stations(), 6);
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.num_servers(), 16);
        assert_eq!(t.num_devices(), 100);
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomTopologyConfig::paper_defaults(30);
        let a = Topology::random(&cfg, 7);
        let b = Topology::random(&cfg, 7);
        assert_eq!(a, b);
        let c = Topology::random(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn parameter_ranges_respected() {
        let cfg = RandomTopologyConfig::paper_defaults(10);
        let t = Topology::random(&cfg, 3);
        for k in t.base_station_ids() {
            let bs = t.base_station(k);
            assert!((50e6..=100e6).contains(&bs.access_bandwidth_hz));
            assert!((0.5e9..=1.0e9).contains(&bs.fronthaul_bandwidth_hz));
            assert_eq!(bs.fronthaul_spectral_efficiency, 10.0);
            assert_eq!(bs.linked_clusters.len(), 1);
        }
        for n in t.server_ids() {
            let s = t.server(n);
            assert!(s.cores == 64 || s.cores == 128);
            assert_eq!(s.freq_min_hz, 1.8e9);
            assert_eq!(s.freq_max_hz, 3.6e9);
        }
    }

    #[test]
    fn half_servers_each_core_count() {
        let t = Topology::random(&RandomTopologyConfig::paper_defaults(10), 5);
        let big = t.server_ids().filter(|&n| t.server(n).cores == 128).count();
        assert_eq!(big, 8);
    }

    #[test]
    fn multi_link_base_stations() {
        let cfg = RandomTopologyConfig {
            links_per_base_station: 2,
            ..RandomTopologyConfig::paper_defaults(10)
        };
        let t = Topology::random(&cfg, 4);
        for k in t.base_station_ids() {
            assert_eq!(t.base_station(k).linked_clusters.len(), 2);
            assert_eq!(t.servers_reachable_from(k).len(), 16);
        }
    }

    #[test]
    fn tiny_config_shape() {
        let t = Topology::random(&RandomTopologyConfig::tiny(4), 2);
        assert_eq!(t.num_base_stations(), 2);
        assert_eq!(t.num_servers(), 3);
        assert_eq!(t.num_devices(), 4);
    }

    #[test]
    fn scale_up_islands_shape_and_separability() {
        let cfg = RandomTopologyConfig::scale_up(120, 6);
        let t = Topology::random(&cfg, 9);
        assert_eq!(t.num_base_stations(), 24);
        assert_eq!(t.num_clusters(), 6);
        assert_eq!(t.num_servers(), 48);
        assert_eq!(t.num_devices(), 120);
        assert_eq!(t.coverage(), CoverageModel::Radius);
        let p = crate::partition::ClusterPartition::compute(&t);
        assert_eq!(p.num_components(), 6);
        assert!(p.is_separable());
        // Round-robin spread: every island gets the same device count.
        assert_eq!(p.component_device_counts(), &[20; 6]);
    }

    #[test]
    fn island_straddlers_become_cut_devices() {
        let cfg =
            RandomTopologyConfig { island_straddlers: 3, ..RandomTopologyConfig::scale_up(60, 4) };
        let t = Topology::random(&cfg, 11);
        let p = crate::partition::ClusterPartition::compute(&t);
        assert_eq!(p.num_components(), 4);
        assert_eq!(p.cut_devices(), &[57, 58, 59]);
        for &d in p.cut_devices() {
            let comps: std::collections::BTreeSet<usize> = t
                .covering_base_stations(crate::ids::DeviceId(d))
                .into_iter()
                .map(|k| p.station_component(k))
                .collect();
            assert_eq!(comps.len(), 2, "straddler {d} must see exactly two islands");
        }
    }

    #[test]
    fn island_mode_is_deterministic() {
        let cfg = RandomTopologyConfig::scale_up(50, 5);
        assert_eq!(Topology::random(&cfg, 3), Topology::random(&cfg, 3));
    }

    #[test]
    fn region_shares_cover_the_fleet() {
        for (total, regions) in [(10, 3), (9, 3), (1, 4), (100, 7)] {
            let shares: Vec<usize> =
                (0..regions).map(|i| region_devices(total, regions, i)).collect();
            assert_eq!(shares.iter().sum::<usize>(), total, "{total}/{regions}");
            let (lo, hi) = (shares.iter().min().copied(), shares.iter().max().copied());
            assert!(hi.zip(lo).is_some_and(|(h, l)| h - l <= 1), "{shares:?}");
        }
        let cfg = RandomTopologyConfig::region(10, 3, 0);
        assert_eq!(cfg.num_devices, 4);
        assert_eq!(cfg.islands, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn region_index_out_of_range_panics() {
        region_devices(10, 3, 3);
    }

    #[test]
    #[should_panic(expected = "links_per_base_station")]
    fn too_many_links_panics() {
        let cfg = RandomTopologyConfig {
            links_per_base_station: 5,
            ..RandomTopologyConfig::paper_defaults(10)
        };
        Topology::random(&cfg, 0);
    }
}
