//! The static MEC network: entities, connectivity, and validation.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::Point;
use crate::ids::{BaseStationId, ClusterId, DeviceId, ServerId};

/// A base station `B_k` with its access and fronthaul link parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseStation {
    /// Access-link bandwidth `W_k^A` in Hz shared by the devices that select
    /// this base station.
    pub access_bandwidth_hz: f64,
    /// Fronthaul bandwidth `W_k^F` in Hz toward the linked clusters.
    pub fronthaul_bandwidth_hz: f64,
    /// Fronthaul spectral efficiency `h_k^F` in bit/s/Hz (time-invariant in
    /// the paper's evaluation; the state layer may override it per slot).
    pub fronthaul_spectral_efficiency: f64,
    /// Clusters this base station's fronthaul reaches. Wired fiber BSs have
    /// exactly one; wireless mmWave BSs may list several.
    pub linked_clusters: Vec<ClusterId>,
    /// Physical position (used by the radius coverage and mobility models).
    pub position: Point,
    /// Coverage radius in meters for [`CoverageModel::Radius`].
    pub coverage_radius_m: f64,
}

/// An edge server `S_n` (its energy model lives in `eotora-energy`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    /// The room/cluster hosting this server.
    pub cluster: ClusterId,
    /// Number of CPU cores; the effective compute rate is
    /// `cores × clock frequency` (cycles/s).
    pub cores: u32,
    /// Lowest allowed clock frequency `F_n^L` in Hz.
    pub freq_min_hz: f64,
    /// Highest allowed clock frequency `F_n^U` in Hz.
    pub freq_max_hz: f64,
}

impl EdgeServer {
    /// Ratio `F_n^U / F_n^L`, the per-server factor entering the paper's
    /// approximation constant `R_F = max_n F_n^U/F_n^L` (Theorem 3).
    pub fn frequency_ratio(&self) -> f64 {
        self.freq_max_hz / self.freq_min_hz
    }
}

/// A room hosting a cluster of edge servers (`S_m` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Servers hosted in this room.
    pub servers: Vec<ServerId>,
    /// Physical position of the room.
    pub position: Point,
}

/// A mobile device `D_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobileDevice {
    /// Current position (the mobility model updates this over time).
    pub position: Point,
}

/// How device↔base-station coverage is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoverageModel {
    /// Every device is covered by every base station (the paper's §VI-A
    /// evaluation setting).
    #[default]
    Full,
    /// A device is covered iff it lies within the base station's
    /// `coverage_radius_m` (used by the mobility example).
    Radius,
}

/// Validation failures for a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// The topology must contain at least one of each entity kind.
    Empty {
        /// Which collection was empty.
        what: &'static str,
    },
    /// A referenced id is out of range.
    DanglingReference {
        /// Description of the offending reference.
        context: String,
    },
    /// A numeric parameter is non-positive or otherwise out of its domain.
    BadParameter {
        /// Description of the offending parameter.
        context: String,
    },
    /// A server's cluster membership disagrees with the cluster's list.
    InconsistentMembership {
        /// The offending server.
        server: ServerId,
    },
    /// A base station has no linked cluster (it could never carry traffic).
    UnconnectedBaseStation {
        /// The offending base station.
        base_station: BaseStationId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty { what } => write!(f, "topology has no {what}"),
            Self::DanglingReference { context } => write!(f, "dangling reference: {context}"),
            Self::BadParameter { context } => write!(f, "bad parameter: {context}"),
            Self::InconsistentMembership { server } => {
                write!(f, "server {server} cluster membership is inconsistent")
            }
            Self::UnconnectedBaseStation { base_station } => {
                write!(f, "base station {base_station} is linked to no cluster")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The full static network (paper Fig. 1).
///
/// Construct via [`TopologyBuilder`] or [`Topology::random`]. All accessors
/// are index-based and panic on out-of-range ids (ids are created by this
/// crate, so out-of-range means a logic error, not bad input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    base_stations: Vec<BaseStation>,
    clusters: Vec<Cluster>,
    servers: Vec<EdgeServer>,
    devices: Vec<MobileDevice>,
    coverage: CoverageModel,
}

impl Topology {
    /// Number of base stations `K`.
    pub fn num_base_stations(&self) -> usize {
        self.base_stations.len()
    }

    /// Number of edge servers `N`.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of clusters/rooms `M`.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of mobile devices `I`.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The coverage model in force.
    pub fn coverage(&self) -> CoverageModel {
        self.coverage
    }

    /// Base station `k`.
    pub fn base_station(&self, k: BaseStationId) -> &BaseStation {
        &self.base_stations[k.index()]
    }

    /// Edge server `n`.
    pub fn server(&self, n: ServerId) -> &EdgeServer {
        &self.servers[n.index()]
    }

    /// Cluster `m`.
    pub fn cluster(&self, m: ClusterId) -> &Cluster {
        &self.clusters[m.index()]
    }

    /// Mobile device `i`.
    pub fn device(&self, i: DeviceId) -> &MobileDevice {
        &self.devices[i.index()]
    }

    /// Mutable device access (for mobility updates).
    pub fn device_mut(&mut self, i: DeviceId) -> &mut MobileDevice {
        &mut self.devices[i.index()]
    }

    /// Iterates over all base-station ids.
    pub fn base_station_ids(&self) -> impl Iterator<Item = BaseStationId> + '_ {
        (0..self.base_stations.len()).map(BaseStationId)
    }

    /// Iterates over all server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers.len()).map(ServerId)
    }

    /// Iterates over all device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// Servers reachable through base station `k` — the set `N_i(x_t)` of
    /// eq. (3) for a device whose base-station choice is `k`.
    ///
    /// Sorted ascending; deterministic across runs.
    pub fn servers_reachable_from(&self, k: BaseStationId) -> Vec<ServerId> {
        let mut out = BTreeSet::new();
        for &m in &self.base_station(k).linked_clusters {
            for &s in &self.cluster(m).servers {
                out.insert(s);
            }
        }
        out.into_iter().collect()
    }

    /// Base stations covering device `i` under the active coverage model.
    pub fn covering_base_stations(&self, i: DeviceId) -> Vec<BaseStationId> {
        match self.coverage {
            CoverageModel::Full => self.base_station_ids().collect(),
            CoverageModel::Radius => {
                let pos = self.device(i).position;
                self.base_station_ids()
                    .filter(|&k| {
                        let bs = self.base_station(k);
                        bs.position.distance_to(pos) <= bs.coverage_radius_m
                    })
                    .collect()
            }
        }
    }

    /// Maximum `F_n^U / F_n^L` across servers — the paper's `R_F` constant.
    pub fn max_frequency_ratio(&self) -> f64 {
        self.servers.iter().map(EdgeServer::frequency_ratio).fold(1.0, f64::max)
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found: empty collections, dangling
    /// ids, inconsistent cluster membership, non-positive bandwidths or
    /// reversed frequency bounds, or base stations with no fronthaul link.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.base_stations.is_empty() {
            return Err(TopologyError::Empty { what: "base stations" });
        }
        if self.clusters.is_empty() {
            return Err(TopologyError::Empty { what: "clusters" });
        }
        if self.servers.is_empty() {
            return Err(TopologyError::Empty { what: "servers" });
        }
        if self.devices.is_empty() {
            return Err(TopologyError::Empty { what: "devices" });
        }
        for (k, bs) in self.base_stations.iter().enumerate() {
            if bs.linked_clusters.is_empty() {
                return Err(TopologyError::UnconnectedBaseStation {
                    base_station: BaseStationId(k),
                });
            }
            for &m in &bs.linked_clusters {
                if m.index() >= self.clusters.len() {
                    return Err(TopologyError::DanglingReference {
                        context: format!("base station B{k} links missing cluster {m}"),
                    });
                }
            }
            if bs.access_bandwidth_hz <= 0.0
                || bs.fronthaul_bandwidth_hz <= 0.0
                || bs.access_bandwidth_hz.is_nan()
                || bs.fronthaul_bandwidth_hz.is_nan()
            {
                return Err(TopologyError::BadParameter {
                    context: format!("base station B{k} has non-positive bandwidth"),
                });
            }
            if bs.fronthaul_spectral_efficiency <= 0.0 || bs.fronthaul_spectral_efficiency.is_nan()
            {
                return Err(TopologyError::BadParameter {
                    context: format!("base station B{k} has non-positive fronthaul efficiency"),
                });
            }
        }
        for (n, srv) in self.servers.iter().enumerate() {
            if srv.cluster.index() >= self.clusters.len() {
                return Err(TopologyError::DanglingReference {
                    context: format!("server S{n} references missing cluster {}", srv.cluster),
                });
            }
            if !self.clusters[srv.cluster.index()].servers.contains(&ServerId(n)) {
                return Err(TopologyError::InconsistentMembership { server: ServerId(n) });
            }
            if srv.freq_min_hz <= 0.0
                || srv.freq_min_hz.is_nan()
                || srv.freq_max_hz < srv.freq_min_hz
            {
                return Err(TopologyError::BadParameter {
                    context: format!("server S{n} frequency bounds invalid"),
                });
            }
            if srv.cores == 0 {
                return Err(TopologyError::BadParameter {
                    context: format!("server S{n} has zero cores"),
                });
            }
        }
        for (m, cl) in self.clusters.iter().enumerate() {
            for &s in &cl.servers {
                if s.index() >= self.servers.len() {
                    return Err(TopologyError::DanglingReference {
                        context: format!("cluster R{m} lists missing server {s}"),
                    });
                }
                if self.servers[s.index()].cluster.index() != m {
                    return Err(TopologyError::InconsistentMembership { server: s });
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Topology`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use eotora_topology::{TopologyBuilder, Point};
///
/// let topo = TopologyBuilder::new()
///     .cluster(Point::new(0.0, 0.0))
///     .server(0.into(), 64, 1.8e9, 3.6e9)
///     .base_station(50e6, 0.5e9, 10.0, vec![0.into()], Point::new(0.0, 0.0), 500.0)
///     .device(Point::new(10.0, 10.0))
///     .build()
///     .unwrap();
/// assert_eq!(topo.num_servers(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    base_stations: Vec<BaseStation>,
    clusters: Vec<Cluster>,
    servers: Vec<EdgeServer>,
    devices: Vec<MobileDevice>,
    coverage: CoverageModel,
}

impl TopologyBuilder {
    /// Creates an empty builder with [`CoverageModel::Full`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cluster/room at `position`; returns the builder for chaining.
    pub fn cluster(mut self, position: Point) -> Self {
        self.clusters.push(Cluster { servers: Vec::new(), position });
        self
    }

    /// Adds a server to `cluster` with the given core count and frequency
    /// bounds (Hz); registers it in the cluster's member list.
    pub fn server(
        mut self,
        cluster: ClusterId,
        cores: u32,
        freq_min_hz: f64,
        freq_max_hz: f64,
    ) -> Self {
        let id = ServerId(self.servers.len());
        self.servers.push(EdgeServer { cluster, cores, freq_min_hz, freq_max_hz });
        if let Some(c) = self.clusters.get_mut(cluster.index()) {
            c.servers.push(id);
        }
        self
    }

    /// Adds a base station.
    #[allow(clippy::too_many_arguments)]
    pub fn base_station(
        mut self,
        access_bandwidth_hz: f64,
        fronthaul_bandwidth_hz: f64,
        fronthaul_spectral_efficiency: f64,
        linked_clusters: Vec<ClusterId>,
        position: Point,
        coverage_radius_m: f64,
    ) -> Self {
        self.base_stations.push(BaseStation {
            access_bandwidth_hz,
            fronthaul_bandwidth_hz,
            fronthaul_spectral_efficiency,
            linked_clusters,
            position,
            coverage_radius_m,
        });
        self
    }

    /// Adds a mobile device at `position`.
    pub fn device(mut self, position: Point) -> Self {
        self.devices.push(MobileDevice { position });
        self
    }

    /// Sets the coverage model.
    pub fn coverage(mut self, coverage: CoverageModel) -> Self {
        self.coverage = coverage;
        self
    }

    /// Finalizes and validates the topology.
    ///
    /// # Errors
    ///
    /// Propagates [`Topology::validate`] failures.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let topo = Topology {
            base_stations: self.base_stations,
            clusters: self.clusters,
            servers: self.servers,
            devices: self.devices,
            coverage: self.coverage,
        };
        topo.validate()?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TopologyBuilder {
        TopologyBuilder::new()
            .cluster(Point::new(0.0, 0.0))
            .cluster(Point::new(100.0, 0.0))
            .server(ClusterId(0), 64, 1.8e9, 3.6e9)
            .server(ClusterId(1), 128, 1.8e9, 3.6e9)
            .base_station(50e6, 0.5e9, 10.0, vec![ClusterId(0)], Point::new(0.0, 0.0), 300.0)
            .base_station(
                80e6,
                1.0e9,
                10.0,
                vec![ClusterId(0), ClusterId(1)],
                Point::new(50.0, 0.0),
                300.0,
            )
            .device(Point::new(1.0, 1.0))
            .device(Point::new(400.0, 0.0))
    }

    #[test]
    fn build_and_counts() {
        let t = tiny().build().unwrap();
        assert_eq!(t.num_base_stations(), 2);
        assert_eq!(t.num_clusters(), 2);
        assert_eq!(t.num_servers(), 2);
        assert_eq!(t.num_devices(), 2);
    }

    #[test]
    fn reachability_follows_fronthaul_links() {
        let t = tiny().build().unwrap();
        assert_eq!(t.servers_reachable_from(BaseStationId(0)), vec![ServerId(0)]);
        assert_eq!(t.servers_reachable_from(BaseStationId(1)), vec![ServerId(0), ServerId(1)]);
    }

    #[test]
    fn full_coverage_lists_all_stations() {
        let t = tiny().build().unwrap();
        assert_eq!(t.covering_base_stations(DeviceId(1)), vec![BaseStationId(0), BaseStationId(1)]);
    }

    #[test]
    fn radius_coverage_filters_by_distance() {
        let t = tiny().coverage(CoverageModel::Radius).build().unwrap();
        // Device 0 at (1,1) is within 300m of both stations.
        assert_eq!(t.covering_base_stations(DeviceId(0)).len(), 2);
        // Device 1 at (400,0) is outside both radii.
        assert!(t.covering_base_stations(DeviceId(1)).is_empty());
    }

    #[test]
    fn frequency_ratio() {
        let t = tiny().build().unwrap();
        assert!((t.max_frequency_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_unlinked_base_station() {
        let err = TopologyBuilder::new()
            .cluster(Point::default())
            .server(ClusterId(0), 64, 1.0e9, 2.0e9)
            .base_station(1e6, 1e6, 10.0, vec![], Point::default(), 1.0)
            .device(Point::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, TopologyError::UnconnectedBaseStation { .. }));
    }

    #[test]
    fn validation_catches_dangling_cluster() {
        let err = TopologyBuilder::new()
            .cluster(Point::default())
            .server(ClusterId(0), 64, 1.0e9, 2.0e9)
            .base_station(1e6, 1e6, 10.0, vec![ClusterId(9)], Point::default(), 1.0)
            .device(Point::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, TopologyError::DanglingReference { .. }));
    }

    #[test]
    fn validation_catches_bad_frequencies() {
        let err = TopologyBuilder::new()
            .cluster(Point::default())
            .server(ClusterId(0), 64, 3.0e9, 2.0e9)
            .base_station(1e6, 1e6, 10.0, vec![ClusterId(0)], Point::default(), 1.0)
            .device(Point::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, TopologyError::BadParameter { .. }));
    }

    #[test]
    fn validation_catches_empty_collections() {
        let err = TopologyBuilder::new().build().unwrap_err();
        assert!(matches!(err, TopologyError::Empty { .. }));
    }

    #[test]
    fn validation_catches_zero_cores() {
        let err = TopologyBuilder::new()
            .cluster(Point::default())
            .server(ClusterId(0), 0, 1.0e9, 2.0e9)
            .base_station(1e6, 1e6, 10.0, vec![ClusterId(0)], Point::default(), 1.0)
            .device(Point::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, TopologyError::BadParameter { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TopologyError::UnconnectedBaseStation { base_station: BaseStationId(2) };
        assert!(e.to_string().contains("B2"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = tiny().build().unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
