//! Minimal planar geometry for coverage and mobility models.

use serde::{Deserialize, Serialize};

/// A point in the plane, in meters.
///
/// # Examples
///
/// ```
/// use eotora_topology::geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// The point `self + t · (other − self)`; `t = 0` is `self`, `t = 1` is
    /// `other`. Used by the random-waypoint mobility model.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + t * (other.x - self.x), self.y + t * (other.y - self.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_close!(a.distance_to(b), b.distance_to(a), 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_close!(mid.x, 5.0, 1e-12);
        assert_close!(mid.y, -5.0, 1e-12);
    }

    #[test]
    fn triangle_inequality() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(4.0, 3.0);
        assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12);
    }
}
