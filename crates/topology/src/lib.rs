//! Network-topology model of the heterogeneous MEC system (paper §III-A).
//!
//! The system consists of `K` base stations, `M` edge-server rooms
//! ("clusters") hosting `N` servers in total, and `I` mobile devices.
//! Base stations reach mobile devices over *access links* and reach server
//! clusters over *fronthaul links*; a base station may connect to one room
//! (wired fiber) or several (wireless mmWave). A device can only offload to a
//! server whose cluster is linked to the device's chosen base station — the
//! paper's constraint `ν_i(y_t) ∈ N_i(x_t)` (eq. 3).
//!
//! This crate models only the static physical network. Time-varying state
//! (channels, prices, workloads) lives in `eotora-states`; per-server energy
//! functions live in `eotora-energy`; the optimization problem that ties them
//! together lives in `eotora-core`.
//!
//! # Examples
//!
//! ```
//! use eotora_topology::{RandomTopologyConfig, Topology};
//!
//! // The paper's §VI-A setting: 6 BSs, 2 rooms × 8 servers, 100 devices.
//! let topo = Topology::random(&RandomTopologyConfig::paper_defaults(100), 42);
//! assert_eq!(topo.num_base_stations(), 6);
//! assert_eq!(topo.num_servers(), 16);
//! assert_eq!(topo.num_devices(), 100);
//! topo.validate().unwrap();
//! ```

pub mod geometry;
pub mod ids;
pub mod model;
pub mod partition;
pub mod random;

pub use geometry::Point;
pub use ids::{BaseStationId, ClusterId, DeviceId, ServerId};
pub use model::{
    BaseStation, Cluster, CoverageModel, EdgeServer, MobileDevice, Topology, TopologyBuilder,
    TopologyError,
};
pub use partition::ClusterPartition;
pub use random::{region_devices, RandomTopologyConfig};
