//! Connected-component analysis of the device↔server/fronthaul resource graph.
//!
//! The per-slot P2 congestion game couples two devices only when their
//! strategy sets can share a resource: an edge server, an access link, or a
//! fronthaul link. Resources belonging to base stations whose fronthaul
//! reaches disjoint server clusters never co-occur in a strategy, so the
//! global game splits into independent subgames — one per connected component
//! of the infrastructure graph. [`ClusterPartition`] computes those
//! components with a union-find pass and classifies every device as either
//! *homed* to a single component or a *cut device* whose coverage straddles
//! several (those need bounded reconciliation after a sharded solve; see
//! DESIGN.md §5g).

use eotora_util::UnionFind;

use crate::ids::{BaseStationId, DeviceId, ServerId};
use crate::model::Topology;

/// Connected components of the base-station/server infrastructure graph,
/// plus per-device homing.
///
/// Infrastructure nodes are base stations and servers; station `k` is joined
/// with every server reachable over its fronthaul. Component ids are dense
/// (`0..num_components`) and deterministic: numbered by the smallest
/// infrastructure index in each component (stations first, then servers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPartition {
    num_components: usize,
    station_component: Vec<usize>,
    server_component: Vec<usize>,
    device_home: Vec<usize>,
    cut_devices: Vec<usize>,
    component_devices: Vec<usize>,
}

impl ClusterPartition {
    /// Runs the union-find pass over `topology`.
    ///
    /// Devices covered by stations in more than one component are recorded
    /// as cut devices and homed to the component covering them through the
    /// most stations (ties break toward the smallest component id). Devices
    /// with no covering station are homed to component 0 — they contribute
    /// no strategies, so any home is equally valid.
    pub fn compute(topology: &Topology) -> Self {
        let stations = topology.num_base_stations();
        let servers = topology.num_servers();
        let mut uf = UnionFind::new(stations + servers);
        for k in topology.base_station_ids() {
            for n in topology.servers_reachable_from(k) {
                uf.union(k.index(), stations + n.index());
            }
        }
        let ids = uf.component_ids();
        let num_components = uf.components();
        let station_component = ids[..stations].to_vec();
        let server_component = ids[stations..].to_vec();

        let mut device_home = Vec::with_capacity(topology.num_devices());
        let mut cut_devices = Vec::new();
        let mut component_devices = vec![0usize; num_components];
        // Scratch vote counter, reset sparsely between devices.
        let mut votes = vec![0usize; num_components];
        for i in topology.device_ids() {
            let covering = topology.covering_base_stations(i);
            let mut seen: Vec<usize> = Vec::new();
            for &k in &covering {
                let c = station_component[k.index()];
                if votes[c] == 0 {
                    seen.push(c);
                }
                votes[c] += 1;
            }
            seen.sort_unstable();
            let home =
                seen.iter().copied().max_by_key(|&c| (votes[c], usize::MAX - c)).unwrap_or(0);
            if seen.len() > 1 {
                cut_devices.push(i.index());
            }
            for c in seen {
                votes[c] = 0;
            }
            component_devices[home] += 1;
            device_home.push(home);
        }

        Self {
            num_components,
            station_component,
            server_component,
            device_home,
            cut_devices,
            component_devices,
        }
    }

    /// Number of infrastructure components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Component of base station `k`.
    pub fn station_component(&self, k: BaseStationId) -> usize {
        self.station_component[k.index()]
    }

    /// Component of server `n`.
    pub fn server_component(&self, n: ServerId) -> usize {
        self.server_component[n.index()]
    }

    /// Home component of device `i`.
    pub fn device_home(&self, i: DeviceId) -> usize {
        self.device_home[i.index()]
    }

    /// Home components for all devices, indexed by device.
    pub fn device_homes(&self) -> &[usize] {
        &self.device_home
    }

    /// Devices whose coverage spans more than one component, ascending.
    pub fn cut_devices(&self) -> &[usize] {
        &self.cut_devices
    }

    /// `true` when no device straddles components: a sharded solve is then
    /// decision-identical to the sequential one.
    pub fn is_separable(&self) -> bool {
        self.cut_devices.is_empty()
    }

    /// Devices homed to each component, indexed by component id.
    pub fn component_device_counts(&self) -> &[usize] {
        &self.component_devices
    }

    /// Device count of the most populated component.
    pub fn largest_component(&self) -> usize {
        self.component_devices.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::ids::ClusterId;
    use crate::model::{CoverageModel, TopologyBuilder};
    use crate::random::RandomTopologyConfig;

    /// Two disjoint islands 1800 m apart (radius 1000 m); optionally a
    /// midpoint device covered by both.
    fn two_islands(with_straddler: bool) -> Topology {
        let mut b = TopologyBuilder::new()
            .cluster(Point::new(0.0, 0.0))
            .cluster(Point::new(1800.0, 0.0))
            .server(ClusterId(0), 64, 1.8e9, 3.6e9)
            .server(ClusterId(1), 64, 1.8e9, 3.6e9)
            .base_station(50e6, 0.5e9, 10.0, vec![ClusterId(0)], Point::new(0.0, 0.0), 1000.0)
            .base_station(50e6, 0.5e9, 10.0, vec![ClusterId(1)], Point::new(1800.0, 0.0), 1000.0)
            .coverage(CoverageModel::Radius)
            .device(Point::new(10.0, 0.0))
            .device(Point::new(1790.0, 0.0));
        if with_straddler {
            // The midpoint is 900 m from both stations — inside both radii.
            b = b.device(Point::new(900.0, 0.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn disjoint_islands_are_separable() {
        let p = ClusterPartition::compute(&two_islands(false));
        assert_eq!(p.num_components(), 2);
        assert!(p.is_separable());
        assert_eq!(p.station_component(BaseStationId(0)), 0);
        assert_eq!(p.station_component(BaseStationId(1)), 1);
        assert_eq!(p.server_component(ServerId(0)), 0);
        assert_eq!(p.server_component(ServerId(1)), 1);
        assert_eq!(p.device_home(DeviceId(0)), 0);
        assert_eq!(p.device_home(DeviceId(1)), 1);
        assert_eq!(p.component_device_counts(), &[1, 1]);
        assert_eq!(p.largest_component(), 1);
    }

    #[test]
    fn straddling_device_is_cut_and_homed_by_majority() {
        let p = ClusterPartition::compute(&two_islands(true));
        assert_eq!(p.num_components(), 2);
        assert!(!p.is_separable());
        assert_eq!(p.cut_devices(), &[2]);
        // The midpoint device sees one station per component: a tie, which
        // breaks to the smaller component id.
        assert_eq!(p.device_home(DeviceId(2)), 0);
    }

    #[test]
    fn full_coverage_with_multi_link_fronthaul_is_one_component() {
        // With every BS wired to both rooms the infrastructure graph is one
        // component regardless of coverage.
        let cfg = RandomTopologyConfig {
            links_per_base_station: 2,
            ..RandomTopologyConfig::paper_defaults(12)
        };
        let topo = Topology::random(&cfg, 7);
        let p = ClusterPartition::compute(&topo);
        assert_eq!(p.num_components(), 1);
        assert!(p.is_separable());
        assert_eq!(p.largest_component(), 12);
    }

    #[test]
    fn full_coverage_over_split_fronthaul_marks_every_device_cut() {
        // paper_defaults wires each BS to ONE random room; with full
        // coverage every device can reach both rooms' components, so every
        // device is a cut device — the game layer's cut-fraction heuristic
        // must then fall back to a single shard.
        let topo = Topology::random(&RandomTopologyConfig::paper_defaults(12), 7);
        let p = ClusterPartition::compute(&topo);
        if p.num_components() > 1 {
            assert_eq!(p.cut_devices().len(), 12);
            assert!(!p.is_separable());
        }
    }
}
