//! Structured trace events and their flat JSON encoding.
//!
//! Events serialize as single-level JSON objects discriminated by a
//! `"type"` field, so a JSONL trace is greppable line-by-line without a
//! streaming JSON parser:
//!
//! ```text
//! {"seq":17,"t_ns":1754560000123456789,"type":"span","name":"p2a","nanos":41230}
//! ```
//!
//! The encoding is hand-written (rather than derived) precisely to keep
//! this flat schema; derived enum encodings would nest the payload under
//! the variant name.

use serde::{get_field, Deserialize, Error, Serialize, Value};

/// One structured event emitted by the instrumented pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A completed simulation slot with its headline outcomes.
    Slot {
        /// Zero-based slot index t.
        slot: u64,
        /// Drift-plus-penalty objective V·T_t + Q(t)·Θ_t for the slot.
        objective: f64,
        /// Total fleet latency T_t (s).
        latency: f64,
        /// Energy cost C_t ($).
        cost: f64,
        /// Virtual queue backlog Q(t+1) after the update.
        queue: f64,
    },
    /// A completed timed span.
    Span {
        /// Span name (e.g. `p2a`, `p2b`, `queue_update`, `slot_solve`).
        name: String,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
    /// A monotonic counter's updated running total.
    Counter {
        /// Counter name (e.g. `bdma_rounds`).
        name: String,
        /// Running total after the increment.
        value: u64,
    },
    /// One virtual-queue update Q(t+1) = max{Q(t) + C_t - C̄, 0}.
    QueueUpdate {
        /// Zero-based slot index t.
        slot: u64,
        /// Backlog Q(t) before the update.
        before: f64,
        /// Backlog Q(t+1) after the update.
        after: f64,
        /// Constraint excess C_t - C̄ applied by the update.
        excess: f64,
    },
    /// One health-rule status transition emitted by the `HealthMonitor`.
    Health {
        /// Zero-based slot index t at which the transition fired.
        slot: u64,
        /// Rule name (e.g. `queue_level`, `budget_overrun`).
        rule: String,
        /// Status before the transition (`ok`/`degraded`/`critical`).
        from: String,
        /// Status after the transition.
        to: String,
        /// The signal value that triggered the transition.
        value: f64,
    },
    /// One BDMA alternation round (Algorithm 2) within a slot solve.
    BdmaIteration {
        /// Zero-based slot index t.
        slot: u64,
        /// One-based alternation round within the slot.
        round: u64,
        /// Candidate objective produced by this round.
        objective: f64,
        /// Whether the candidate improved on the incumbent.
        accepted: bool,
        /// Time spent in the P2-A discrete solve (ns).
        p2a_nanos: u64,
        /// Time spent in the P2-B continuous solve (ns).
        p2b_nanos: u64,
    },
}

impl TraceEvent {
    /// The value of the discriminating `"type"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Slot { .. } => "slot",
            TraceEvent::Span { .. } => "span",
            TraceEvent::Counter { .. } => "counter",
            TraceEvent::QueueUpdate { .. } => "queue_update",
            TraceEvent::Health { .. } => "health",
            TraceEvent::BdmaIteration { .. } => "bdma_iteration",
        }
    }

    fn push_fields(&self, fields: &mut Vec<(String, Value)>) {
        let f = |name: &str, v: Value| (name.to_owned(), v);
        fields.push(f("type", Value::Str(self.kind().to_owned())));
        match self {
            TraceEvent::Slot { slot, objective, latency, cost, queue } => {
                fields.push(f("slot", Value::U64(*slot)));
                fields.push(f("objective", Value::F64(*objective)));
                fields.push(f("latency", Value::F64(*latency)));
                fields.push(f("cost", Value::F64(*cost)));
                fields.push(f("queue", Value::F64(*queue)));
            }
            TraceEvent::Span { name, nanos } => {
                fields.push(f("name", Value::Str(name.clone())));
                fields.push(f("nanos", Value::U64(*nanos)));
            }
            TraceEvent::Counter { name, value } => {
                fields.push(f("name", Value::Str(name.clone())));
                fields.push(f("value", Value::U64(*value)));
            }
            TraceEvent::QueueUpdate { slot, before, after, excess } => {
                fields.push(f("slot", Value::U64(*slot)));
                fields.push(f("before", Value::F64(*before)));
                fields.push(f("after", Value::F64(*after)));
                fields.push(f("excess", Value::F64(*excess)));
            }
            TraceEvent::Health { slot, rule, from, to, value } => {
                fields.push(f("slot", Value::U64(*slot)));
                fields.push(f("rule", Value::Str(rule.clone())));
                fields.push(f("from", Value::Str(from.clone())));
                fields.push(f("to", Value::Str(to.clone())));
                fields.push(f("value", Value::F64(*value)));
            }
            TraceEvent::BdmaIteration {
                slot,
                round,
                objective,
                accepted,
                p2a_nanos,
                p2b_nanos,
            } => {
                fields.push(f("slot", Value::U64(*slot)));
                fields.push(f("round", Value::U64(*round)));
                fields.push(f("objective", Value::F64(*objective)));
                fields.push(f("accepted", Value::Bool(*accepted)));
                fields.push(f("p2a_nanos", Value::U64(*p2a_nanos)));
                fields.push(f("p2b_nanos", Value::U64(*p2b_nanos)));
            }
        }
    }

    fn from_fields(fields: &[(String, Value)]) -> Result<Self, Error> {
        let kind = String::from_value(get_field(fields, "type", "TraceEvent")?)?;
        let u64_field = |name: &str| -> Result<u64, Error> {
            u64::from_value(get_field(fields, name, "TraceEvent")?)
        };
        let f64_field = |name: &str| -> Result<f64, Error> {
            f64::from_value(get_field(fields, name, "TraceEvent")?)
        };
        let str_field = |name: &str| -> Result<String, Error> {
            String::from_value(get_field(fields, name, "TraceEvent")?)
        };
        match kind.as_str() {
            "slot" => Ok(TraceEvent::Slot {
                slot: u64_field("slot")?,
                objective: f64_field("objective")?,
                latency: f64_field("latency")?,
                cost: f64_field("cost")?,
                queue: f64_field("queue")?,
            }),
            "span" => Ok(TraceEvent::Span { name: str_field("name")?, nanos: u64_field("nanos")? }),
            "counter" => {
                Ok(TraceEvent::Counter { name: str_field("name")?, value: u64_field("value")? })
            }
            "queue_update" => Ok(TraceEvent::QueueUpdate {
                slot: u64_field("slot")?,
                before: f64_field("before")?,
                after: f64_field("after")?,
                excess: f64_field("excess")?,
            }),
            "health" => Ok(TraceEvent::Health {
                slot: u64_field("slot")?,
                rule: str_field("rule")?,
                from: str_field("from")?,
                to: str_field("to")?,
                value: f64_field("value")?,
            }),
            "bdma_iteration" => Ok(TraceEvent::BdmaIteration {
                slot: u64_field("slot")?,
                round: u64_field("round")?,
                objective: f64_field("objective")?,
                accepted: bool::from_value(get_field(fields, "accepted", "TraceEvent")?)?,
                p2a_nanos: u64_field("p2a_nanos")?,
                p2b_nanos: u64_field("p2b_nanos")?,
            }),
            other => Err(Error::custom(format!("unknown trace event type `{other}`"))),
        }
    }
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields = Vec::with_capacity(7);
        self.push_fields(&mut fields);
        Value::Object(fields)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", "TraceEvent", v))?;
        TraceEvent::from_fields(fields)
    }
}

/// A [`TraceEvent`] stamped with its position in the stream: one JSONL
/// line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Zero-based sequence number within the trace.
    pub seq: u64,
    /// Wall-clock timestamp, nanoseconds since the Unix epoch.
    pub t_ns: u64,
    /// The event payload, flattened into the same JSON object.
    pub event: TraceEvent,
}

impl Serialize for TraceRecord {
    fn to_value(&self) -> Value {
        let mut fields = Vec::with_capacity(9);
        fields.push(("seq".to_owned(), Value::U64(self.seq)));
        fields.push(("t_ns".to_owned(), Value::U64(self.t_ns)));
        self.event.push_fields(&mut fields);
        Value::Object(fields)
    }
}

impl Deserialize for TraceRecord {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", "TraceRecord", v))?;
        Ok(TraceRecord {
            seq: u64::from_value(get_field(fields, "seq", "TraceRecord")?)?,
            t_ns: u64::from_value(get_field(fields, "t_ns", "TraceRecord")?)?,
            event: TraceEvent::from_fields(fields)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Slot { slot: 3, objective: 12.5, latency: 0.25, cost: 0.01, queue: 1.75 },
            TraceEvent::Span { name: "p2a".into(), nanos: 41_230 },
            TraceEvent::Counter { name: "bdma_rounds".into(), value: 12 },
            TraceEvent::QueueUpdate { slot: 3, before: 2.0, after: 1.75, excess: -0.25 },
            TraceEvent::Health {
                slot: 7,
                rule: "queue_level".into(),
                from: "ok".into(),
                to: "degraded".into(),
                value: 55.25,
            },
            TraceEvent::BdmaIteration {
                slot: 3,
                round: 2,
                objective: 12.5,
                accepted: true,
                p2a_nanos: 41_230,
                p2b_nanos: 9_800,
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_serde_json() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let record = TraceRecord { seq: i as u64, t_ns: 1_754_560_000_123_456_789, event };
            let line = serde_json::to_string(&record).unwrap();
            let back: TraceRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn encoding_is_flat_with_type_discriminant() {
        let record = TraceRecord {
            seq: 17,
            t_ns: 99,
            event: TraceEvent::Span { name: "p2b".into(), nanos: 7 },
        };
        let line = serde_json::to_string(&record).unwrap();
        assert_eq!(line, r#"{"seq":17,"t_ns":99,"type":"span","name":"p2b","nanos":7}"#);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let err = serde_json::from_str::<TraceRecord>(r#"{"seq":0,"t_ns":0,"type":"mystery"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = serde_json::from_str::<TraceRecord>(r#"{"seq":0,"type":"span","name":"x"}"#);
        assert!(err.is_err());
    }
}
