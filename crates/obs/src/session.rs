//! The run-level telemetry driver: live registry + health monitor +
//! flight recorder behind one [`Recorder`].
//!
//! [`TelemetrySession`] is wired into the engine as an ordinary sink,
//! so it derives everything — gauges, health signals, postmortem
//! triggers — purely from the event stream without touching the
//! deterministic simulation state. Per completed slot it:
//!
//! 1. updates the run gauges (queue backlog, running averages, budget
//!    residual) in the [`LiveRegistry`],
//! 2. feeds the [`HealthMonitor`] and converts any rule transitions
//!    into `health.to_*` counters, the `health_level` gauge, and
//!    [`TraceEvent::Health`] flight entries,
//! 3. every `metrics_every` slots rewrites/appends the `--metrics-out`
//!    file (Prometheus text for `.prom`, JSONL snapshots otherwise).
//!
//! Robust-ladder escalation counters (`robust.solve_errors`,
//! `robust.lifeboat_decisions`, `robust.equal_share_fallbacks`) trigger
//! a flight-recorder postmortem dump into `postmortem_dir`, and a panic
//! hook dumps the ring to `flight-panic.jsonl` there as a last resort.
//! I/O errors are latched and surfaced by [`TelemetrySession::finish`].

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::cell::RefCell;
use std::io::{self, Write};
use std::path::PathBuf;

use serde::{Serialize, Value};

use crate::event::TraceEvent;
use crate::flight::{install_panic_hook, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::health::{HealthMonitor, HealthSample, HealthSummary};
use crate::live::{LiveRegistry, RegistrySnapshot};
use crate::names;
use crate::recorder::Recorder;

/// Counters whose increment marks a robust-ladder escalation and
/// triggers a postmortem dump.
const POSTMORTEM_TRIGGERS: &[&str] = &[
    names::COUNTER_ROBUST_SOLVE_ERRORS,
    names::COUNTER_ROBUST_LIFEBOAT_DECISIONS,
    names::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS,
];

/// Cap on per-run postmortem bundles, so a long corrupt burst cannot
/// fill the disk with near-identical dumps.
const MAX_POSTMORTEMS: u64 = 8;

/// Configuration for a [`TelemetrySession`].
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Drift-plus-penalty weight V of the run (scales queue health
    /// thresholds).
    pub v: f64,
    /// Per-slot energy budget C̄ ($/slot); `<= 0` disables the budget
    /// signal.
    pub budget: f64,
    /// Where to write periodic metric snapshots. `.prom` extension
    /// selects Prometheus text exposition (file rewritten each
    /// interval); anything else appends JSONL snapshot lines.
    pub metrics_out: Option<PathBuf>,
    /// Snapshot interval in slots (0 = only a final snapshot).
    pub metrics_every: u64,
    /// Where postmortem flight dumps land (`None` disables dumping;
    /// health and counters still work).
    pub postmortem_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity (0 = default).
    pub flight_capacity: usize,
}

struct SessionInner {
    monitor: HealthMonitor,
    slots: u64,
    latency_sum: f64,
    cost_sum: f64,
    jsonl: Option<io::BufWriter<std::fs::File>>,
    prev_snapshot: Option<RegistrySnapshot>,
    io_error: Option<io::Error>,
    postmortems: u64,
    last_postmortem_slot: Option<u64>,
}

/// Live telemetry for one run. Implements [`Recorder`]; thread it into
/// any entry point that takes a sink.
pub struct TelemetrySession {
    registry: LiveRegistry,
    flight: FlightRecorder,
    config: TelemetryConfig,
    prom: bool,
    inner: RefCell<SessionInner>,
}

impl TelemetrySession {
    /// Builds a session; opens the metrics sink eagerly so path errors
    /// surface on the first [`TelemetrySession::finish`] rather than
    /// silently dropping every snapshot.
    pub fn new(config: TelemetryConfig) -> Self {
        let prom =
            config.metrics_out.as_deref().and_then(|p| p.extension()).is_some_and(|e| e == "prom");
        let mut io_error = None;
        let jsonl = match config.metrics_out.as_deref() {
            Some(path) if !prom => match std::fs::File::create(path) {
                Ok(f) => Some(io::BufWriter::new(f)),
                Err(e) => {
                    io_error = Some(e);
                    None
                }
            },
            _ => None,
        };
        let capacity = if config.flight_capacity == 0 {
            DEFAULT_FLIGHT_CAPACITY
        } else {
            config.flight_capacity
        };
        let flight = FlightRecorder::new(capacity);
        if let Some(dir) = config.postmortem_dir.as_deref() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                io_error.get_or_insert(e);
            }
            install_panic_hook();
            flight.register_for_panic(dir.join("flight-panic.jsonl"));
        }
        let registry = LiveRegistry::new();
        registry.gauge(names::GAUGE_CONFIG_V, config.v);
        registry.gauge(names::GAUGE_CONFIG_BUDGET, config.budget);
        registry.gauge(names::GAUGE_HEALTH_LEVEL, 0.0);
        let monitor = HealthMonitor::paper_defaults(config.v, config.budget);
        TelemetrySession {
            registry,
            flight,
            config,
            prom,
            inner: RefCell::new(SessionInner {
                monitor,
                slots: 0,
                latency_sum: 0.0,
                cost_sum: 0.0,
                jsonl,
                prev_snapshot: None,
                io_error,
                postmortems: 0,
                last_postmortem_slot: None,
            }),
        }
    }

    /// A file-less session (health + live registry only) — what the
    /// chaos harness and tests use.
    pub fn in_memory(v: f64, budget: f64) -> Self {
        Self::new(TelemetryConfig { v, budget, ..TelemetryConfig::default() })
    }

    /// The configuration this session was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The live registry backing this session.
    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }

    /// The flight-recorder ring backing this session.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Current health roll-up (callable mid-run).
    pub fn health_summary(&self) -> HealthSummary {
        self.inner.borrow().monitor.summary()
    }

    /// Postmortem bundles dumped so far.
    pub fn postmortems(&self) -> u64 {
        self.inner.borrow().postmortems
    }

    /// Escalates on behalf of an external supervisor (the server
    /// watchdog): dumps a flight-recorder postmortem bundle now, under
    /// the same per-run cap and same-slot dedup as the robust-ladder
    /// triggers. Returns `true` if a bundle was written.
    pub fn force_postmortem(&self, reason: &str) -> bool {
        let before = self.postmortems();
        self.maybe_postmortem(reason);
        self.postmortems() > before
    }

    /// Writes the final snapshot, flushes the metrics sink, and returns
    /// the health summary (or the first latched I/O error).
    pub fn finish(self) -> io::Result<HealthSummary> {
        let slots = self.inner.borrow().slots;
        self.write_metrics(slots);
        let mut inner = self.inner.into_inner();
        if let Some(err) = inner.io_error.take() {
            return Err(err);
        }
        if let Some(mut w) = inner.jsonl.take() {
            w.flush()?;
        }
        Ok(inner.monitor.summary())
    }

    fn write_metrics(&self, slot: u64) {
        if self.config.metrics_out.is_none() {
            return;
        }
        let snapshot = self.registry.snapshot(slot);
        let mut inner = self.inner.borrow_mut();
        if self.prom {
            let text = self.registry.to_prometheus();
            if let Some(path) = self.config.metrics_out.as_deref() {
                if let Err(e) = std::fs::write(path, text) {
                    inner.io_error.get_or_insert(e);
                }
            }
        } else if inner.jsonl.is_some() {
            let deltas = inner
                .prev_snapshot
                .as_ref()
                .map(|prev| snapshot.counter_diff(prev))
                .unwrap_or_default();
            let mut value = snapshot.to_value();
            if let Value::Object(fields) = &mut value {
                fields.push(("deltas".to_owned(), deltas.to_value()));
            }
            match serde_json::to_string(&value) {
                Ok(mut line) => {
                    line.push('\n');
                    let result = inner
                        .jsonl
                        .as_mut()
                        .map(|w| w.write_all(line.as_bytes()))
                        .unwrap_or(Ok(()));
                    if let Err(e) = result {
                        inner.io_error.get_or_insert(e);
                        inner.jsonl = None;
                    }
                }
                Err(e) => {
                    inner.io_error.get_or_insert(io::Error::other(e));
                }
            }
        }
        inner.prev_snapshot = Some(snapshot);
    }

    fn maybe_postmortem(&self, reason: &str) {
        let Some(dir) = self.config.postmortem_dir.as_deref() else {
            return;
        };
        let path = {
            let mut inner = self.inner.borrow_mut();
            if inner.postmortems >= MAX_POSTMORTEMS
                || inner.last_postmortem_slot == Some(inner.slots)
            {
                return;
            }
            inner.postmortems += 1;
            inner.last_postmortem_slot = Some(inner.slots);
            dir.join(format!("flight-slot{}.jsonl", inner.slots))
        };
        match self.flight.dump_to_path(&path) {
            Ok(_) => self.registry.add(names::COUNTER_FLIGHT_POSTMORTEMS, 1),
            Err(e) => {
                self.inner.borrow_mut().io_error.get_or_insert(e);
            }
        }
        let _ = reason;
    }

    fn observe_slot(&self, slot: u64, latency: f64, cost: f64, queue: f64) {
        let journal_p99_ms = {
            let h = self.registry.span_histogram(names::SPAN_JOURNAL_APPEND);
            h.quantile(0.99).unwrap_or(0.0) / 1e6
        };
        let escalations = self.registry.counter(names::COUNTER_ROBUST_SOLVE_ERRORS)
            + self.registry.counter(names::COUNTER_ROBUST_LIFEBOAT_DECISIONS)
            + self.registry.counter(names::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS);
        let (events, overall, due) = {
            let mut inner = self.inner.borrow_mut();
            inner.slots = slot + 1;
            inner.latency_sum += latency;
            inner.cost_sum += cost;
            let slots = inner.slots as f64;
            let avg_latency = inner.latency_sum / slots;
            let avg_cost = inner.cost_sum / slots;
            self.registry.gauge(names::GAUGE_QUEUE_BACKLOG, queue);
            self.registry.gauge(names::GAUGE_AVG_LATENCY, avg_latency);
            self.registry.gauge(names::GAUGE_AVG_COST, avg_cost);
            if self.config.budget > 0.0 {
                self.registry.gauge(names::GAUGE_BUDGET_RESIDUAL, self.config.budget - avg_cost);
            }
            let sample = HealthSample {
                slot,
                queue,
                avg_cost,
                masked_resources: self.registry.counter(names::COUNTER_FAULT_MASKED_RESOURCES),
                substitutions: self.registry.counter(names::COUNTER_FAULT_STATE_SUBSTITUTIONS),
                deadline_expirations: self.registry.counter(names::COUNTER_DEADLINE_EXPIRATIONS),
                escalations,
                journal_p99_ms,
            };
            let events = inner.monitor.observe(sample);
            if let Some(trend) = inner.monitor.last_value("queue_trend") {
                self.registry.gauge(names::GAUGE_QUEUE_TREND, trend);
            }
            let overall = inner.monitor.overall();
            let due = self.config.metrics_every > 0 && inner.slots % self.config.metrics_every == 0;
            (events, overall, due)
        };
        for event in &events {
            let counter = match event.to {
                crate::health::HealthStatus::Ok => names::COUNTER_HEALTH_TO_OK,
                crate::health::HealthStatus::Degraded => names::COUNTER_HEALTH_TO_DEGRADED,
                crate::health::HealthStatus::Critical => names::COUNTER_HEALTH_TO_CRITICAL,
            };
            self.registry.add(counter, 1);
            self.flight.record(&TraceEvent::Health {
                slot: event.slot,
                rule: event.rule.to_owned(),
                from: event.from.as_str().to_owned(),
                to: event.to.as_str().to_owned(),
                value: event.value,
            });
        }
        self.registry.gauge(names::GAUGE_HEALTH_LEVEL, overall.level());
        if due {
            self.write_metrics(slot + 1);
        }
    }
}

impl Recorder for TelemetrySession {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.registry.span_ns(name, nanos);
        self.flight.span_ns(name, nanos);
    }

    fn add(&self, name: &str, delta: u64) {
        self.registry.add(name, delta);
        self.flight.add(name, delta);
        if POSTMORTEM_TRIGGERS.contains(&name) {
            self.maybe_postmortem(name);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        self.registry.gauge(name, value);
    }

    fn record(&self, event: &TraceEvent) {
        self.flight.record(event);
        if let TraceEvent::Slot { slot, latency, cost, queue, .. } = *event {
            self.observe_slot(slot, latency, cost, queue);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::health::HealthStatus;

    fn slot_event(slot: u64, cost: f64, queue: f64) -> TraceEvent {
        TraceEvent::Slot { slot, objective: 1.0, latency: 0.2, cost, queue }
    }

    #[test]
    fn clean_slots_keep_health_ok_and_update_gauges() {
        let session = TelemetrySession::in_memory(100.0, 1.0);
        for t in 0..10 {
            session.add(names::COUNTER_SLOTS, 1);
            session.record(&slot_event(t, 0.5, 1.0));
        }
        assert_eq!(session.health_summary().final_status, HealthStatus::Ok);
        let reg = session.registry();
        assert_eq!(reg.gauge_value(names::GAUGE_QUEUE_BACKLOG), Some(1.0));
        assert_eq!(reg.gauge_value(names::GAUGE_BUDGET_RESIDUAL), Some(0.5));
        assert_eq!(reg.gauge_value(names::GAUGE_HEALTH_LEVEL), Some(0.0));
        assert_eq!(reg.counter(names::COUNTER_SLOTS), 10);
    }

    #[test]
    fn fault_counters_degrade_health_and_emit_transition() {
        let session = TelemetrySession::in_memory(100.0, 1.0);
        session.record(&slot_event(0, 0.5, 1.0));
        session.add(names::COUNTER_FAULT_MASKED_RESOURCES, 3);
        session.record(&slot_event(1, 0.5, 1.0));
        let summary = session.health_summary();
        assert_eq!(summary.final_status, HealthStatus::Degraded);
        let reg = session.registry();
        assert_eq!(reg.counter(names::COUNTER_HEALTH_TO_DEGRADED), 1);
        assert_eq!(reg.gauge_value(names::GAUGE_HEALTH_LEVEL), Some(1.0));
    }

    #[test]
    fn escalation_trigger_dumps_a_postmortem_bundle() {
        let dir = std::env::temp_dir().join(format!("eotora-session-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = TelemetrySession::new(TelemetryConfig {
            v: 100.0,
            budget: 1.0,
            postmortem_dir: Some(dir.clone()),
            ..TelemetryConfig::default()
        });
        session.record(&slot_event(0, 0.5, 1.0));
        session.span_ns(names::SPAN_SLOT_SOLVE, 1_000);
        session.add(names::COUNTER_ROBUST_SOLVE_ERRORS, 1);
        session.add(names::COUNTER_ROBUST_LIFEBOAT_DECISIONS, 1); // same slot: no second dump
        assert_eq!(session.postmortems(), 1);
        let path = dir.join("flight-slot1.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            let record: crate::TraceRecord = serde_json::from_str(line).unwrap();
            let _ = record;
        }
        assert!(text.contains("slot_solve"));
        assert_eq!(session.registry().counter(names::COUNTER_FLIGHT_POSTMORTEMS), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_metrics_snapshots_are_parseable_and_diffed() {
        let dir = std::env::temp_dir().join(format!("eotora-session-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let session = TelemetrySession::new(TelemetryConfig {
            v: 100.0,
            budget: 1.0,
            metrics_out: Some(path.clone()),
            metrics_every: 2,
            ..TelemetryConfig::default()
        });
        for t in 0..4 {
            session.add(names::COUNTER_SLOTS, 1);
            session.record(&slot_event(t, 0.5, 1.0));
        }
        session.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 periodic + 1 final snapshot");
        for line in &lines {
            let snap: RegistrySnapshot = serde_json::from_str(line).unwrap();
            assert!(snap.counters.contains_key(names::COUNTER_SLOTS));
        }
        // The second periodic line's deltas record 2 new slots.
        assert!(lines[1].contains(r#""deltas":{"#));
        assert!(lines[1].contains(r#""slots":2"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prom_metrics_out_rewrites_exposition() {
        let dir = std::env::temp_dir().join(format!("eotora-session-prom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let session = TelemetrySession::new(TelemetryConfig {
            v: 100.0,
            budget: 1.0,
            metrics_out: Some(path.clone()),
            metrics_every: 1,
            ..TelemetryConfig::default()
        });
        session.add(names::COUNTER_SLOTS, 1);
        session.record(&slot_event(0, 0.5, 1.0));
        session.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("eotora_slots_total 1"));
        assert!(text.contains("# TYPE eotora_health_level gauge"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
