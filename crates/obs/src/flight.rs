//! Flight recorder: a fixed-size ring of recent trace events, dumped
//! as a postmortem JSONL bundle when something goes wrong.
//!
//! Unlike [`crate::JsonlRecorder`] (which streams *everything* and
//! needs a writer for the whole run), the flight recorder keeps only
//! the last `capacity` events in memory at a bounded cost, so it can be
//! always-on. When the robust ladder escalates, a `SolveError`
//! surfaces, or a panic fires, the ring is serialized oldest-first as
//! ordinary [`TraceRecord`] JSONL — the same schema the trace tooling
//! already reads — giving a "what happened just before" postmortem.
//!
//! [`install_panic_hook`] chains onto the existing panic hook and dumps
//! every ring registered via [`FlightRecorder::register_for_panic`]
//! before the original hook runs.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once, PoisonError, Weak};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::{TraceEvent, TraceRecord};
use crate::recorder::Recorder;

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

struct RingState {
    events: VecDeque<TraceRecord>,
    seq: u64,
    dropped: u64,
    counters: BTreeMap<String, u64>,
}

pub(crate) struct FlightRing {
    capacity: usize,
    state: Mutex<RingState>,
}

impl FlightRing {
    fn lock(&self) -> std::sync::MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn dump_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        let state = self.lock();
        for record in &state.events {
            let line = serde_json::to_string(record).map_err(io::Error::other)?;
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
        Ok(state.events.len())
    }
}

/// Default ring capacity: enough for several slots' worth of spans,
/// counters, and BDMA iterations at paper-scale device counts.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// An always-on bounded recorder of the most recent trace events.
///
/// Cloning is cheap and shares the ring (the panic hook holds a weak
/// reference, so a dropped recorder never leaks).
#[derive(Clone)]
pub struct FlightRecorder {
    ring: Arc<FlightRing>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (min 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        FlightRecorder {
            ring: Arc::new(FlightRing {
                capacity,
                state: Mutex::new(RingState {
                    events: VecDeque::with_capacity(capacity),
                    seq: 0,
                    dropped: 0,
                    counters: BTreeMap::new(),
                }),
            }),
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut state = self.ring.lock();
        let seq = state.seq;
        state.seq += 1;
        if state.events.len() == self.ring.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(TraceRecord { seq, t_ns: unix_nanos(), event });
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Writes the retained events oldest-first as TraceRecord JSONL and
    /// returns how many lines were written. The ring is left intact.
    pub fn dump_jsonl<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        self.ring.dump_jsonl(w)
    }

    /// Writes the retained events to a new file at `path`.
    pub fn dump_to_path(&self, path: &std::path::Path) -> io::Result<usize> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.dump_jsonl(&mut file)
    }

    /// Registers this ring to be dumped to `path` if a panic fires
    /// (requires [`install_panic_hook`] to have been called). The hook
    /// holds only a weak reference.
    pub fn register_for_panic(&self, path: PathBuf) {
        let mut sinks = panic_sinks().lock().unwrap_or_else(PoisonError::into_inner);
        sinks.retain(|(ring, _)| ring.strong_count() > 0);
        sinks.push((Arc::downgrade(&self.ring), path));
    }
}

impl Recorder for FlightRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.push(TraceEvent::Span { name: name.to_owned(), nanos });
    }

    fn add(&self, name: &str, delta: u64) {
        let total = {
            let mut state = self.ring.lock();
            let total = state.counters.entry(name.to_owned()).or_insert(0);
            *total += delta;
            *total
        };
        self.push(TraceEvent::Counter { name: name.to_owned(), value: total });
    }

    fn record(&self, event: &TraceEvent) {
        self.push(event.clone());
    }
}

fn panic_sinks() -> &'static Mutex<Vec<(Weak<FlightRing>, PathBuf)>> {
    static SINKS: Mutex<Vec<(Weak<FlightRing>, PathBuf)>> = Mutex::new(Vec::new());
    &SINKS
}

/// Installs (once per process) a panic hook that dumps every ring
/// registered via [`FlightRecorder::register_for_panic`], then chains
/// to the previously installed hook.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let sinks = panic_sinks().lock().unwrap_or_else(PoisonError::into_inner);
            for (ring, path) in sinks.iter() {
                if let Some(ring) = ring.upgrade() {
                    if let Ok(file) = std::fs::File::create(path) {
                        let mut w = io::BufWriter::new(file);
                        let _ = ring.dump_jsonl(&mut w);
                    }
                }
            }
            drop(sinks);
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let flight = FlightRecorder::new(16);
        for i in 0..40u64 {
            flight.span_ns("p2a", i);
        }
        assert_eq!(flight.len(), 16);
        assert_eq!(flight.dropped(), 24);
        let mut buf = Vec::new();
        let written = flight.dump_jsonl(&mut buf).unwrap();
        assert_eq!(written, 16);
        let lines: Vec<TraceRecord> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // Oldest-first, contiguous sequence numbers, newest retained.
        assert_eq!(lines.first().unwrap().seq, 24);
        assert_eq!(lines.last().unwrap().seq, 39);
        for pair in lines.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }

    #[test]
    fn counters_record_running_totals() {
        let flight = FlightRecorder::new(64);
        flight.add("slots", 1);
        flight.add("slots", 1);
        let mut buf = Vec::new();
        flight.dump_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(r#""value":1"#));
        assert!(text.contains(r#""value":2"#));
    }

    #[test]
    fn panic_hook_dumps_registered_rings() {
        let dir = std::env::temp_dir().join(format!("eotora-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panic-dump.jsonl");
        let flight = FlightRecorder::new(64);
        flight.add("slots", 7);
        install_panic_hook();
        flight.register_for_panic(path.clone());
        let result = std::thread::Builder::new()
            .name("flight-panic-probe".into())
            .spawn(|| panic!("induced"))
            .unwrap()
            .join();
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        let record: TraceRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(record.event, TraceEvent::Counter { name: "slots".into(), value: 7 });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
