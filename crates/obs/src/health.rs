//! Online health judgment for the DPP controller.
//!
//! A [`HealthMonitor`] turns per-slot raw observations (cumulative
//! counters, queue backlog, running-average cost) into derived signals —
//! queue level and trend vs the O(V) stability bound, budget residual,
//! deadline/fault/sanitizer rates over a sliding window, journal
//! latency — and classifies each against a [`HealthRule`] with
//! hysteresis: a rule *enters* Degraded/Critical when its signal
//! reaches the threshold but only *exits* once the signal falls a
//! margin below it, so boundary noise cannot flap Ok↔Degraded every
//! slot. Status changes are emitted as typed [`HealthEvent`]s.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::VecDeque;
use std::fmt;

/// Overall or per-rule health level, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthStatus {
    /// All signals within tolerance.
    #[default]
    Ok,
    /// At least one signal past its degraded threshold.
    Degraded,
    /// At least one signal past its critical threshold.
    Critical,
}

impl HealthStatus {
    /// Lower-case wire name (`ok`/`degraded`/`critical`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Critical => "critical",
        }
    }

    /// Numeric level for the `health_level` gauge (0/1/2).
    pub fn level(self) -> f64 {
        match self {
            HealthStatus::Ok => 0.0,
            HealthStatus::Degraded => 1.0,
            HealthStatus::Critical => 2.0,
        }
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One threshold rule over a derived signal.
///
/// Semantics: the rule's status rises to Degraded when the signal is
/// `>= degraded` and to Critical when `>= critical`; it falls back only
/// once the signal drops below `threshold - hysteresis`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthRule {
    /// Signal name (e.g. `queue_level`).
    pub name: &'static str,
    /// Enter-Degraded threshold (inclusive).
    pub degraded: f64,
    /// Enter-Critical threshold (inclusive).
    pub critical: f64,
    /// Exit margin: leave a level only when the signal is below
    /// `enter - hysteresis`.
    pub hysteresis: f64,
}

impl HealthRule {
    /// A rule that never fires (thresholds at +∞).
    pub fn disabled(name: &'static str) -> Self {
        HealthRule { name, degraded: f64::INFINITY, critical: f64::INFINITY, hysteresis: 0.0 }
    }

    /// Classifies `value` with no history (used for end-of-run
    /// assessment where hysteresis has no meaning).
    pub fn classify(&self, value: f64) -> HealthStatus {
        if value >= self.critical {
            HealthStatus::Critical
        } else if value >= self.degraded {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        }
    }

    /// One hysteresis step from `current` given the new `value`.
    fn step(&self, current: HealthStatus, value: f64) -> HealthStatus {
        match current {
            HealthStatus::Ok => self.classify(value),
            HealthStatus::Degraded => {
                if value >= self.critical {
                    HealthStatus::Critical
                } else if value < self.degraded - self.hysteresis {
                    HealthStatus::Ok
                } else {
                    HealthStatus::Degraded
                }
            }
            HealthStatus::Critical => {
                if value >= self.critical - self.hysteresis {
                    HealthStatus::Critical
                } else if value < self.degraded - self.hysteresis {
                    HealthStatus::Ok
                } else {
                    HealthStatus::Degraded
                }
            }
        }
    }
}

/// A status transition of one rule, emitted by
/// [`HealthMonitor::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Slot at which the transition fired.
    pub slot: u64,
    /// Rule name.
    pub rule: &'static str,
    /// Status before.
    pub from: HealthStatus,
    /// Status after.
    pub to: HealthStatus,
    /// The signal value that triggered it.
    pub value: f64,
}

/// Raw per-slot observation fed to the monitor. Counters are cumulative
/// run totals; the monitor differentiates them over its window.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSample {
    /// Zero-based slot index.
    pub slot: u64,
    /// Queue backlog Q(t+1) after this slot.
    pub queue: f64,
    /// Running time-average energy cost ($/slot).
    pub avg_cost: f64,
    /// Cumulative `fault.masked_resources`.
    pub masked_resources: u64,
    /// Cumulative `fault.state_substitutions`.
    pub substitutions: u64,
    /// Cumulative `deadline.expirations`.
    pub deadline_expirations: u64,
    /// Cumulative robust-ladder escalations (solve errors + lifeboat +
    /// equal-share fallbacks).
    pub escalations: u64,
    /// Current p99 of the journal append span, milliseconds (0 when no
    /// journal is attached).
    pub journal_p99_ms: f64,
}

/// Per-rule outcome in a [`HealthSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuleReport {
    /// Rule name.
    pub name: &'static str,
    /// Status at end of run.
    pub status: HealthStatus,
    /// Worst status the rule reached.
    pub worst: HealthStatus,
    /// Last signal value seen.
    pub value: f64,
}

/// End-of-run health roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Status at the final slot (worst across rules).
    pub final_status: HealthStatus,
    /// Worst status reached at any slot.
    pub worst: HealthStatus,
    /// Total rule transitions over the run.
    pub transitions: u64,
    /// Per-rule detail.
    pub rules: Vec<RuleReport>,
}

/// Sliding-window health monitor over the derived controller signals.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rules: Vec<HealthRule>,
    states: Vec<HealthStatus>,
    worst_per_rule: Vec<HealthStatus>,
    last_values: Vec<f64>,
    window: VecDeque<HealthSample>,
    window_len: usize,
    budget: f64,
    worst: HealthStatus,
    transitions: u64,
}

/// Window length (slots) used for rate and trend signals.
const DEFAULT_WINDOW: usize = 20;

/// Rule indices into the default rule vector (kept in sync with
/// [`HealthMonitor::paper_defaults`]).
const RULE_QUEUE_LEVEL: usize = 0;
const RULE_QUEUE_TREND: usize = 1;
const RULE_BUDGET_OVERRUN: usize = 2;
const RULE_DEADLINE_RATE: usize = 3;
const RULE_FAULT_MASK_RATE: usize = 4;
const RULE_SUBSTITUTION_RATE: usize = 5;
const RULE_ESCALATION_RATE: usize = 6;
const RULE_JOURNAL_LATENCY: usize = 7;

/// The default rule set for a run with drift-plus-penalty weight `v`
/// and per-slot budget `budget`.
///
/// Queue thresholds scale with V per the paper's O(V) backlog bound:
/// a healthy queue hovers below ~V/2 in the budget's units; sustained
/// positive trend signals the budget constraint is infeasible. Any
/// fault masking / sanitizer substitution / ladder escalation inside
/// the window is at least Degraded — those only happen when the
/// environment is actively failing.
pub fn paper_default_rules(v: f64, budget: f64) -> Vec<HealthRule> {
    let vq = v.max(1.0);
    let budget_rule = if budget > 0.0 {
        HealthRule { name: "budget_overrun", degraded: 0.05, critical: 0.25, hysteresis: 0.02 }
    } else {
        HealthRule::disabled("budget_overrun")
    };
    vec![
        HealthRule {
            name: "queue_level",
            degraded: 0.5 * vq,
            critical: 2.0 * vq,
            hysteresis: 0.1 * vq,
        },
        HealthRule {
            name: "queue_trend",
            degraded: 0.02 * vq,
            critical: 0.2 * vq,
            hysteresis: 0.01 * vq,
        },
        budget_rule,
        HealthRule { name: "deadline_rate", degraded: 0.05, critical: 0.5, hysteresis: 0.02 },
        HealthRule {
            name: "fault_mask_rate",
            degraded: f64::MIN_POSITIVE,
            critical: 8.0,
            hysteresis: 0.0,
        },
        HealthRule {
            name: "substitution_rate",
            degraded: f64::MIN_POSITIVE,
            critical: 8.0,
            hysteresis: 0.0,
        },
        HealthRule {
            name: "escalation_rate",
            degraded: f64::MIN_POSITIVE,
            critical: 0.5,
            hysteresis: 0.0,
        },
        HealthRule { name: "journal_latency", degraded: 50.0, critical: 1000.0, hysteresis: 10.0 },
    ]
}

impl HealthMonitor {
    /// Monitor with the paper-default rules for `(v, budget)`.
    pub fn paper_defaults(v: f64, budget: f64) -> Self {
        Self::with_rules(paper_default_rules(v, budget), DEFAULT_WINDOW, budget)
    }

    /// Monitor with explicit rules, window length (slots), and per-slot
    /// budget (`<= 0` disables the budget signal).
    pub fn with_rules(rules: Vec<HealthRule>, window_len: usize, budget: f64) -> Self {
        let n = rules.len();
        HealthMonitor {
            rules,
            states: vec![HealthStatus::Ok; n],
            worst_per_rule: vec![HealthStatus::Ok; n],
            last_values: vec![0.0; n],
            window: VecDeque::new(),
            window_len: window_len.max(2),
            budget,
            worst: HealthStatus::Ok,
            transitions: 0,
        }
    }

    fn signal(&self, idx: usize, sample: &HealthSample) -> f64 {
        let front = self.window.front().copied().unwrap_or(*sample);
        let span = (sample.slot.saturating_sub(front.slot)).max(1) as f64;
        let rate = |now: u64, then: u64| now.saturating_sub(then) as f64 / span;
        match idx {
            RULE_QUEUE_LEVEL => sample.queue,
            RULE_QUEUE_TREND => (sample.queue - front.queue) / span,
            RULE_BUDGET_OVERRUN => {
                if self.budget > 0.0 {
                    ((sample.avg_cost - self.budget) / self.budget).max(0.0)
                } else {
                    0.0
                }
            }
            RULE_DEADLINE_RATE => rate(sample.deadline_expirations, front.deadline_expirations),
            RULE_FAULT_MASK_RATE => rate(sample.masked_resources, front.masked_resources),
            RULE_SUBSTITUTION_RATE => rate(sample.substitutions, front.substitutions),
            RULE_ESCALATION_RATE => rate(sample.escalations, front.escalations),
            _ => sample.journal_p99_ms,
        }
    }

    /// Feeds one slot's raw observation; returns the rule transitions
    /// it triggered (empty almost always).
    pub fn observe(&mut self, sample: HealthSample) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for idx in 0..self.rules.len() {
            let value = self.signal(idx, &sample);
            self.last_values[idx] = value;
            let rule = self.rules[idx];
            let from = self.states[idx];
            let to = rule.step(from, value);
            if to != from {
                self.states[idx] = to;
                self.transitions += 1;
                events.push(HealthEvent { slot: sample.slot, rule: rule.name, from, to, value });
            }
            self.worst_per_rule[idx] = self.worst_per_rule[idx].max(to);
        }
        self.worst = self.worst.max(self.overall());
        self.window.push_back(sample);
        while self.window.len() > self.window_len {
            self.window.pop_front();
        }
        events
    }

    /// Current overall status: the worst current per-rule status.
    pub fn overall(&self) -> HealthStatus {
        self.states.iter().copied().max().unwrap_or(HealthStatus::Ok)
    }

    /// Worst overall status reached at any observed slot.
    pub fn worst(&self) -> HealthStatus {
        self.worst
    }

    /// Total rule transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Most recent signal value of the named rule, if it exists and at
    /// least one sample has been observed.
    pub fn last_value(&self, rule: &str) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        self.rules.iter().position(|r| r.name == rule).map(|i| self.last_values[i])
    }

    /// End-of-run roll-up.
    pub fn summary(&self) -> HealthSummary {
        HealthSummary {
            final_status: self.overall(),
            worst: self.worst,
            transitions: self.transitions,
            rules: self
                .rules
                .iter()
                .enumerate()
                .map(|(i, r)| RuleReport {
                    name: r.name,
                    status: self.states[i],
                    worst: self.worst_per_rule[i],
                    value: self.last_values[i],
                })
                .collect(),
        }
    }
}

/// Classifies a whole finished run from its final cumulative totals
/// (no hysteresis — there is no trajectory). Rates are averaged over
/// the full horizon, and the trend signal (which needs a trajectory)
/// is skipped.
pub fn assess_totals(v: f64, budget: f64, totals: &HealthSample) -> HealthSummary {
    let rules = paper_default_rules(v, budget);
    let slots = totals.slot.max(1) as f64;
    let mut reports = Vec::with_capacity(rules.len());
    for (idx, rule) in rules.iter().enumerate() {
        if idx == RULE_QUEUE_TREND {
            continue;
        }
        let value = match idx {
            RULE_QUEUE_LEVEL => totals.queue,
            RULE_BUDGET_OVERRUN if budget > 0.0 => ((totals.avg_cost - budget) / budget).max(0.0),
            RULE_DEADLINE_RATE => totals.deadline_expirations as f64 / slots,
            RULE_FAULT_MASK_RATE => totals.masked_resources as f64 / slots,
            RULE_SUBSTITUTION_RATE => totals.substitutions as f64 / slots,
            RULE_ESCALATION_RATE => totals.escalations as f64 / slots,
            RULE_JOURNAL_LATENCY => totals.journal_p99_ms,
            _ => 0.0,
        };
        let status = rule.classify(value);
        reports.push(RuleReport { name: rule.name, status, worst: status, value });
    }
    let overall = reports.iter().map(|r| r.status).max().unwrap_or(HealthStatus::Ok);
    HealthSummary { final_status: overall, worst: overall, transitions: 0, rules: reports }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn sample(slot: u64, queue: f64) -> HealthSample {
        HealthSample { slot, queue, avg_cost: 0.0, ..HealthSample::default() }
    }

    #[test]
    fn clean_signals_stay_ok() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        for t in 0..50 {
            let events = m.observe(sample(t, 2.0));
            assert!(events.is_empty(), "unexpected events at slot {t}: {events:?}");
        }
        assert_eq!(m.overall(), HealthStatus::Ok);
        assert_eq!(m.worst(), HealthStatus::Ok);
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn queue_past_half_v_degrades_then_recovers() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        m.observe(sample(0, 60.0));
        assert_eq!(m.overall(), HealthStatus::Degraded);
        // Above the exit threshold (50 − 10 = 40): still degraded.
        m.observe(sample(1, 45.0));
        assert_eq!(m.overall(), HealthStatus::Degraded);
        // Below it: recovered.
        m.observe(sample(2, 30.0));
        assert_eq!(m.overall(), HealthStatus::Ok);
        assert_eq!(m.worst(), HealthStatus::Degraded);
    }

    /// The anti-flap property: a signal oscillating right at the
    /// Degraded boundary must transition once, not every slot.
    #[test]
    fn boundary_oscillation_does_not_flap() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        // Enter threshold is 50, hysteresis 10 → exit below 40.
        let mut transitions = 0;
        for t in 0..40 {
            let q = if t % 2 == 0 { 50.5 } else { 49.5 };
            transitions += m.observe(sample(t, q)).len();
        }
        assert_eq!(transitions, 1, "hysteresis must suppress boundary flapping");
        assert_eq!(m.overall(), HealthStatus::Degraded);
    }

    #[test]
    fn critical_requires_two_v_and_exits_through_degraded() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        m.observe(sample(0, 250.0));
        assert_eq!(m.overall(), HealthStatus::Critical);
        // Down past critical−hysteresis but above degraded: Degraded.
        m.observe(sample(1, 100.0));
        assert_eq!(m.overall(), HealthStatus::Degraded);
        m.observe(sample(2, 10.0));
        assert_eq!(m.overall(), HealthStatus::Ok);
        assert_eq!(m.transitions(), 3);
    }

    #[test]
    fn any_fault_masking_in_window_is_degraded() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        let mut s = sample(0, 1.0);
        m.observe(s);
        s.slot = 1;
        s.masked_resources = 4;
        let events = m.observe(s);
        assert!(events
            .iter()
            .any(|e| e.rule == "fault_mask_rate" && e.to == HealthStatus::Degraded));
        // Once the window's oldest sample already includes the masking,
        // the rate decays to zero and the rule recovers.
        for t in 2..40 {
            s.slot = t;
            m.observe(s);
        }
        assert_eq!(m.overall(), HealthStatus::Ok);
        assert_eq!(m.worst(), HealthStatus::Degraded);
    }

    #[test]
    fn budget_overrun_fires_on_sustained_overspend() {
        let mut m = HealthMonitor::paper_defaults(100.0, 1.0);
        let mut s = sample(0, 1.0);
        s.avg_cost = 1.30;
        m.observe(s);
        let summary = m.summary();
        let budget = summary.rules.iter().find(|r| r.name == "budget_overrun").unwrap();
        assert_eq!(budget.status, HealthStatus::Critical);
        assert!((budget.value - 0.30).abs() < 1e-12);
    }

    #[test]
    fn assess_totals_matches_classify_semantics() {
        let clean = HealthSample { slot: 500, queue: 2.0, avg_cost: 0.5, ..Default::default() };
        assert_eq!(assess_totals(100.0, 1.0, &clean).final_status, HealthStatus::Ok);
        let faulted = HealthSample {
            slot: 500,
            queue: 2.0,
            avg_cost: 0.5,
            masked_resources: 120,
            ..Default::default()
        };
        let summary = assess_totals(100.0, 1.0, &faulted);
        assert_eq!(summary.final_status, HealthStatus::Degraded);
        assert!(summary
            .rules
            .iter()
            .any(|r| r.name == "fault_mask_rate" && r.status == HealthStatus::Degraded));
    }
}
