//! Lock-free live metric registry: atomic counters, gauges, and
//! sharded log-linear histograms with Prometheus-style exposition.
//!
//! [`LiveRegistry`] pre-allocates one slot per entry of
//! [`crate::names::ALL`], so a hot-path update is a `HashMap` probe on
//! an interned `&'static str` plus one relaxed atomic RMW — no locks,
//! no allocation, sub-microsecond. Histograms are sharded
//! ([`ShardedHistogram`]) so concurrent writers (a future worker pool)
//! do not contend on one cache line; reads merge the shards into an
//! ordinary [`Histogram`] on demand.
//!
//! Names outside the static registry still record (into mutex-guarded
//! overflow maps) so experimental counters are never silently dropped —
//! they are just slower and exported without help text.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;
use crate::histogram::{bucket_index, bucket_upper_bound, Histogram};
use crate::names::{self, MetricKind};
use crate::recorder::Recorder;

/// Number of independent shards per histogram. Eight covers the worker
/// counts we run while keeping merge-on-read cheap.
const SHARDS: usize = 8;

/// `bucket_index(u64::MAX) + 1`: every possible observation lands in
/// one of this many fixed buckets.
const BUCKETS: usize = 976;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

struct HistShard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-linear histogram whose buckets are relaxed atomics, split into
/// `SHARDS` shards indexed by a per-thread id.
///
/// Writers never contend with readers; [`ShardedHistogram::snapshot`]
/// merges the shards into a plain [`Histogram`] with identical bucket
/// semantics, so quantiles match single-threaded recording exactly
/// (verified by proptest below).
pub struct ShardedHistogram {
    shards: Vec<HistShard>,
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedHistogram {
    /// An empty sharded histogram.
    pub fn new() -> Self {
        ShardedHistogram { shards: (0..SHARDS).map(|_| HistShard::new()).collect() }
    }

    /// Records one observation into the calling thread's shard.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index() % self.shards.len()];
        shard.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        shard.count.fetch_add(1, Relaxed);
        shard.sum.fetch_add(value, Relaxed);
        shard.min.fetch_min(value, Relaxed);
        shard.max.fetch_max(value, Relaxed);
    }

    /// Total observations across all shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Relaxed)).sum()
    }

    /// Merges all shards into a plain [`Histogram`] snapshot.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u128;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for shard in &self.shards {
            let shard_count = shard.count.load(Relaxed);
            if shard_count == 0 {
                continue;
            }
            count += shard_count;
            sum += u128::from(shard.sum.load(Relaxed));
            min = min.min(shard.min.load(Relaxed));
            max = max.max(shard.max.load(Relaxed));
            for (dst, src) in buckets.iter_mut().zip(&shard.buckets) {
                *dst += src.load(Relaxed);
            }
        }
        if count == 0 {
            return Histogram::new();
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram::from_parts(buckets, count, sum, min, max)
    }
}

/// Summary statistics of one span histogram inside a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Median duration (ns, ~6.25% bucket error).
    pub p50_ns: u64,
    /// 95th-percentile duration (ns).
    pub p95_ns: u64,
    /// 99th-percentile duration (ns).
    pub p99_ns: u64,
    /// Exact maximum duration (ns).
    pub max_ns: u64,
    /// Exact mean duration (ns).
    pub mean_ns: f64,
}

impl SpanStats {
    fn from_histogram(h: &Histogram) -> Option<Self> {
        let q = |q: f64| h.quantile(q).map(|v| v as u64).unwrap_or(0);
        (h.count() > 0).then(|| SpanStats {
            count: h.count(),
            p50_ns: q(0.5),
            p95_ns: q(0.95),
            p99_ns: q(0.99),
            max_ns: h.max().unwrap_or(0),
            mean_ns: h.mean().unwrap_or(0.0),
        })
    }
}

/// A point-in-time copy of a [`LiveRegistry`]: one JSON line of the
/// `--metrics-out` stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Slots completed when the snapshot was taken.
    pub slot: u64,
    /// All counters (registered ones always present, even at zero).
    pub counters: BTreeMap<String, u64>,
    /// Gauges that have been set (NaN-valued gauges are omitted).
    pub gauges: BTreeMap<String, f64>,
    /// Non-empty span histograms, summarized.
    pub spans: BTreeMap<String, SpanStats>,
}

impl RegistrySnapshot {
    /// Counter deltas `self − prev` (saturating; counters absent from
    /// `prev` count from zero). Zero deltas are omitted.
    pub fn counter_diff(&self, prev: &RegistrySnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(name, &now)| {
                let before = prev.counters.get(name).copied().unwrap_or(0);
                let delta = now.saturating_sub(before);
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }
}

/// Maps a metric name onto the Prometheus name charset: characters
/// outside `[a-zA-Z0-9_:]` become `_`, and the `eotora_` namespace
/// prefix is prepended.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("eotora_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// The always-on live telemetry registry.
///
/// Implements [`Recorder`], so it drops into any pipeline slot that
/// takes `&dyn Recorder`: spans feed sharded histograms, counter
/// increments feed atomic counters, gauges feed atomic f64 cells.
/// Structured [`TraceEvent`]s are ignored here — the session layer
/// (`TelemetrySession`) derives gauges and health from them.
pub struct LiveRegistry {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
    histograms: Vec<ShardedHistogram>,
    counter_index: HashMap<&'static str, usize>,
    gauge_index: HashMap<&'static str, usize>,
    histogram_index: HashMap<&'static str, usize>,
    overflow_counters: Mutex<BTreeMap<String, u64>>,
    overflow_gauges: Mutex<BTreeMap<String, f64>>,
    overflow_spans: Mutex<BTreeMap<String, Histogram>>,
}

impl Default for LiveRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl LiveRegistry {
    /// A registry with one pre-allocated slot per [`names::ALL`] entry.
    pub fn new() -> Self {
        let mut counter_index = HashMap::new();
        let mut gauge_index = HashMap::new();
        let mut histogram_index = HashMap::new();
        for def in names::ALL {
            match def.kind {
                MetricKind::Counter => {
                    let idx = counter_index.len();
                    counter_index.insert(def.name, idx);
                }
                MetricKind::Gauge => {
                    let idx = gauge_index.len();
                    gauge_index.insert(def.name, idx);
                }
                MetricKind::Histogram => {
                    let idx = histogram_index.len();
                    histogram_index.insert(def.name, idx);
                }
            }
        }
        LiveRegistry {
            counters: (0..counter_index.len()).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..gauge_index.len()).map(|_| AtomicU64::new(f64::NAN.to_bits())).collect(),
            histograms: (0..histogram_index.len()).map(|_| ShardedHistogram::new()).collect(),
            counter_index,
            gauge_index,
            histogram_index,
            overflow_counters: Mutex::new(BTreeMap::new()),
            overflow_gauges: Mutex::new(BTreeMap::new()),
            overflow_spans: Mutex::new(BTreeMap::new()),
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        if let Some(&idx) = self.counter_index.get(name) {
            return self.counters[idx].load(Relaxed);
        }
        lock_or_recover(&self.overflow_counters).get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (`None` until first set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        if let Some(&idx) = self.gauge_index.get(name) {
            let v = f64::from_bits(self.gauges[idx].load(Relaxed));
            return (!v.is_nan()).then_some(v);
        }
        lock_or_recover(&self.overflow_gauges).get(name).copied()
    }

    /// Merged snapshot of a span histogram (empty if never recorded).
    pub fn span_histogram(&self, name: &str) -> Histogram {
        if let Some(&idx) = self.histogram_index.get(name) {
            return self.histograms[idx].snapshot();
        }
        lock_or_recover(&self.overflow_spans).get(name).cloned().unwrap_or_default()
    }

    /// Takes a point-in-time snapshot, stamped with `slot`.
    pub fn snapshot(&self, slot: u64) -> RegistrySnapshot {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut spans = BTreeMap::new();
        for def in names::ALL {
            match def.kind {
                MetricKind::Counter => {
                    counters.insert(def.name.to_owned(), self.counter(def.name));
                }
                MetricKind::Gauge => {
                    if let Some(v) = self.gauge_value(def.name) {
                        gauges.insert(def.name.to_owned(), v);
                    }
                }
                MetricKind::Histogram => {
                    let h = self.span_histogram(def.name);
                    if let Some(stats) = SpanStats::from_histogram(&h) {
                        spans.insert(def.name.to_owned(), stats);
                    }
                }
            }
        }
        for (name, &v) in lock_or_recover(&self.overflow_counters).iter() {
            counters.insert(name.clone(), v);
        }
        for (name, &v) in lock_or_recover(&self.overflow_gauges).iter() {
            gauges.insert(name.clone(), v);
        }
        for (name, h) in lock_or_recover(&self.overflow_spans).iter() {
            if let Some(stats) = SpanStats::from_histogram(h) {
                spans.insert(name.clone(), stats);
            }
        }
        RegistrySnapshot { slot, counters, gauges, spans }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` per metric, counters with a `_total` suffix,
    /// histograms as cumulative `_bucket{le=...}`/`_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for def in names::ALL {
            let prom = prometheus_name(def.name);
            match def.kind {
                MetricKind::Counter => {
                    counter_exposition(&mut out, &prom, def.help, self.counter(def.name));
                }
                MetricKind::Gauge => {
                    if let Some(v) = self.gauge_value(def.name) {
                        gauge_exposition(&mut out, &prom, def.help, v);
                    }
                }
                MetricKind::Histogram => {
                    let h = self.span_histogram(def.name);
                    if h.count() > 0 {
                        histogram_exposition(&mut out, &prom, def.help, &h);
                    }
                }
            }
        }
        for (name, &v) in lock_or_recover(&self.overflow_counters).iter() {
            counter_exposition(&mut out, &prometheus_name(name), "unregistered counter", v);
        }
        for (name, &v) in lock_or_recover(&self.overflow_gauges).iter() {
            gauge_exposition(&mut out, &prometheus_name(name), "unregistered gauge", v);
        }
        for (name, h) in lock_or_recover(&self.overflow_spans).iter() {
            if h.count() > 0 {
                histogram_exposition(&mut out, &prometheus_name(name), "unregistered span", h);
            }
        }
        out
    }
}

fn counter_exposition(out: &mut String, prom: &str, help: &str, value: u64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {prom}_total {help}");
    let _ = writeln!(out, "# TYPE {prom}_total counter");
    let _ = writeln!(out, "{prom}_total {value}");
}

fn gauge_exposition(out: &mut String, prom: &str, help: &str, value: f64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {prom} {help}");
    let _ = writeln!(out, "# TYPE {prom} gauge");
    let _ = writeln!(out, "{prom} {value}");
}

fn histogram_exposition(out: &mut String, prom: &str, help: &str, h: &Histogram) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {prom}_ns {help}");
    let _ = writeln!(out, "# TYPE {prom}_ns histogram");
    let mut cumulative = 0u64;
    for (idx, &n) in h.bucket_counts().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ =
            writeln!(out, "{prom}_ns_bucket{{le=\"{}\"}} {cumulative}", bucket_upper_bound(idx));
    }
    let _ = writeln!(out, "{prom}_ns_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{prom}_ns_sum {}", h.sum());
    let _ = writeln!(out, "{prom}_ns_count {}", h.count());
}

impl Recorder for LiveRegistry {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        if let Some(&idx) = self.histogram_index.get(name) {
            self.histograms[idx].record(nanos);
            return;
        }
        lock_or_recover(&self.overflow_spans).entry(name.to_owned()).or_default().record(nanos);
    }

    fn add(&self, name: &str, delta: u64) {
        if let Some(&idx) = self.counter_index.get(name) {
            self.counters[idx].fetch_add(delta, Relaxed);
            return;
        }
        *lock_or_recover(&self.overflow_counters).entry(name.to_owned()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        if let Some(&idx) = self.gauge_index.get(name) {
            self.gauges[idx].store(value.to_bits(), Relaxed);
            return;
        }
        lock_or_recover(&self.overflow_gauges).insert(name.to_owned(), value);
    }

    fn record(&self, _event: &TraceEvent) {}
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use proptest::prelude::*;

    #[test]
    fn registered_counter_hits_the_atomic_slot() {
        let reg = LiveRegistry::new();
        reg.add(names::COUNTER_SLOTS, 3);
        reg.add(names::COUNTER_SLOTS, 4);
        assert_eq!(reg.counter(names::COUNTER_SLOTS), 7);
        assert!(lock_or_recover(&reg.overflow_counters).is_empty());
    }

    #[test]
    fn unknown_names_land_in_overflow_not_dropped() {
        let reg = LiveRegistry::new();
        reg.add("experimental.thing", 2);
        reg.span_ns("experimental.span", 500);
        reg.gauge("experimental.gauge", 1.5);
        assert_eq!(reg.counter("experimental.thing"), 2);
        assert_eq!(reg.span_histogram("experimental.span").count(), 1);
        assert_eq!(reg.gauge_value("experimental.gauge"), Some(1.5));
        let snap = reg.snapshot(0);
        assert_eq!(snap.counters.get("experimental.thing"), Some(&2));
    }

    #[test]
    fn gauges_are_unset_until_first_store() {
        let reg = LiveRegistry::new();
        assert_eq!(reg.gauge_value(names::GAUGE_QUEUE_BACKLOG), None);
        reg.gauge(names::GAUGE_QUEUE_BACKLOG, 12.5);
        assert_eq!(reg.gauge_value(names::GAUGE_QUEUE_BACKLOG), Some(12.5));
    }

    #[test]
    fn snapshot_roundtrips_and_diffs() {
        let reg = LiveRegistry::new();
        reg.add(names::COUNTER_SLOTS, 5);
        reg.span_ns(names::SPAN_SLOT_SOLVE, 1_000_000);
        reg.gauge(names::GAUGE_QUEUE_BACKLOG, 3.0);
        let a = reg.snapshot(5);
        let json = serde_json::to_string(&a).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);

        reg.add(names::COUNTER_SLOTS, 2);
        let b = reg.snapshot(7);
        let diff = b.counter_diff(&a);
        assert_eq!(diff.get(names::COUNTER_SLOTS), Some(&2));
        assert!(!diff.contains_key(names::COUNTER_BDMA_ROUNDS));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = LiveRegistry::new();
        reg.add(names::COUNTER_SLOTS, 9);
        reg.span_ns(names::SPAN_P2A, 40_000);
        reg.span_ns(names::SPAN_P2A, 90_000);
        reg.gauge(names::GAUGE_QUEUE_BACKLOG, 0.25);
        reg.add("odd name!", 1);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE eotora_slots_total counter"));
        assert!(text.contains("eotora_slots_total 9"));
        assert!(text.contains("# TYPE eotora_p2a_ns histogram"));
        assert!(text.contains("eotora_p2a_ns_count 2"));
        assert!(text.contains("eotora_p2a_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE eotora_queue_backlog gauge"));
        assert!(text.contains("eotora_odd_name__total 1"));
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
            } else {
                let mut parts = line.split(' ');
                let name = parts.next().unwrap();
                let value = parts.next().unwrap();
                assert!(parts.next().is_none(), "extra token in {line}");
                assert!(name.starts_with("eotora_"));
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            }
        }
    }

    #[test]
    fn sharded_histogram_matches_plain_single_threaded() {
        let sharded = ShardedHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 15, 16, 1_000, 123_456_789] {
            sharded.record(v);
            plain.record(v);
        }
        assert_eq!(sharded.snapshot(), plain);
    }

    proptest! {
        /// Concurrent recording across threads merges to exactly the
        /// histogram single-threaded recording would produce.
        #[test]
        fn concurrent_merge_equals_single_threaded(
            chunks in prop::collection::vec(
                prop::collection::vec(0u64..10_000_000_000, 1..60),
                2..6,
            ),
        ) {
            let sharded = std::sync::Arc::new(ShardedHistogram::new());
            let mut plain = Histogram::new();
            for chunk in &chunks {
                for &v in chunk {
                    plain.record(v);
                }
            }
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let sharded = std::sync::Arc::clone(&sharded);
                    std::thread::spawn(move || {
                        for v in chunk {
                            sharded.record(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let merged = sharded.snapshot();
            prop_assert_eq!(&merged, &plain);
            for q in [0.0, 0.5, 0.95, 1.0] {
                prop_assert_eq!(merged.quantile(q), plain.quantile(q));
            }
        }

        /// Concurrent counter adds on the registry never lose updates.
        #[test]
        fn concurrent_counter_adds_sum_exactly(
            per_thread in prop::collection::vec(1u64..1000, 2..5),
        ) {
            let reg = std::sync::Arc::new(LiveRegistry::new());
            let expected: u64 = per_thread.iter().sum();
            let handles: Vec<_> = per_thread
                .into_iter()
                .map(|n| {
                    let reg = std::sync::Arc::clone(&reg);
                    std::thread::spawn(move || {
                        for _ in 0..n {
                            reg.add(names::COUNTER_BDMA_ROUNDS, 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            prop_assert_eq!(reg.counter(names::COUNTER_BDMA_ROUNDS), expected);
        }
    }
}
