//! The [`Recorder`] trait, RAII span timing, and the no-op / tee
//! recorders.

use std::time::Instant;

use crate::event::TraceEvent;

/// Sink for instrumentation emitted by the pipeline.
///
/// Methods take `&self` so a single recorder can be threaded as a shared
/// reference through solver layers that already borrow their state
/// mutably; implementations use interior mutability. Recorders are not
/// required to be thread-safe — each simulation run owns its own.
pub trait Recorder {
    /// Whether recording is active. When `false`, [`SpanGuard`]s skip
    /// their clock reads and callers may skip event construction.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records a completed timed span.
    fn span_ns(&self, name: &str, nanos: u64);

    /// Increments a monotonic counter.
    fn add(&self, name: &str, delta: u64);

    /// Sets a point-in-time gauge. Defaults to a no-op so pre-existing
    /// recorders (metrics, JSONL) that have no gauge concept need no
    /// change.
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records a structured event.
    fn record(&self, event: &TraceEvent);
}

impl dyn Recorder + '_ {
    /// Starts an RAII span; its wall-clock duration is recorded via
    /// [`Recorder::span_ns`] when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::new(self, name)
    }
}

/// RAII timer: measures from construction to drop and reports the span
/// to its recorder. On a disabled recorder the clock is never read.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// Starts timing a span named `name` against `recorder`.
    pub fn new(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        let start = recorder.is_enabled().then(Instant::now);
        SpanGuard { recorder, name, start }
    }

    /// Ends the span now, recording its duration and returning it in
    /// nanoseconds (`None` when the recorder is disabled).
    pub fn finish(mut self) -> Option<u64> {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Option<u64> {
        let start = self.start.take()?;
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.recorder.span_ns(self.name, nanos);
        Some(nanos)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A recorder that records nothing and reports itself disabled.
///
/// This is the default wired through the pipeline: `is_enabled` is
/// `false`, so span guards never read the clock and instrumented code
/// paths cost a virtual call at most.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn span_ns(&self, _name: &str, _nanos: u64) {}

    fn add(&self, _name: &str, _delta: u64) {}

    fn record(&self, _event: &TraceEvent) {}
}

/// Fans every recording out to two recorders (e.g. in-memory metrics
/// plus a JSONL sink).
pub struct TeeRecorder<'a> {
    first: &'a dyn Recorder,
    second: &'a dyn Recorder,
}

impl<'a> TeeRecorder<'a> {
    /// Tees recordings to `first` and `second`, in that order.
    pub fn new(first: &'a dyn Recorder, second: &'a dyn Recorder) -> Self {
        TeeRecorder { first, second }
    }
}

impl Recorder for TeeRecorder<'_> {
    fn is_enabled(&self) -> bool {
        self.first.is_enabled() || self.second.is_enabled()
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.first.span_ns(name, nanos);
        self.second.span_ns(name, nanos);
    }

    fn add(&self, name: &str, delta: u64) {
        self.first.add(name, delta);
        self.second.add(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.first.gauge(name, value);
        self.second.gauge(name, value);
    }

    fn record(&self, event: &TraceEvent) {
        self.first.record(event);
        self.second.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Test double that logs every call.
    #[derive(Default)]
    struct LogRecorder {
        calls: RefCell<Vec<String>>,
    }

    impl Recorder for LogRecorder {
        fn span_ns(&self, name: &str, _nanos: u64) {
            self.calls.borrow_mut().push(format!("span:{name}"));
        }

        fn add(&self, name: &str, delta: u64) {
            self.calls.borrow_mut().push(format!("add:{name}:{delta}"));
        }

        fn record(&self, event: &TraceEvent) {
            self.calls.borrow_mut().push(format!("event:{}", event.kind()));
        }
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = LogRecorder::default();
        {
            let _guard = SpanGuard::new(&rec, "p2a");
        }
        assert_eq!(rec.calls.borrow().as_slice(), ["span:p2a"]);
    }

    #[test]
    fn span_guard_finish_records_once() {
        let rec = LogRecorder::default();
        let guard = SpanGuard::new(&rec, "p2b");
        let nanos = guard.finish();
        assert!(nanos.is_some());
        assert_eq!(rec.calls.borrow().as_slice(), ["span:p2b"]);
    }

    #[test]
    fn noop_recorder_skips_span_timing() {
        let rec = NoopRecorder;
        let guard = SpanGuard::new(&rec, "slot_solve");
        assert_eq!(guard.finish(), None);
    }

    #[test]
    fn tee_forwards_to_both() {
        let a = LogRecorder::default();
        let b = LogRecorder::default();
        let tee = TeeRecorder::new(&a, &b);
        tee.add("slots", 1);
        tee.record(&TraceEvent::Counter { name: "slots".into(), value: 1 });
        let dyn_tee: &dyn Recorder = &tee;
        dyn_tee.span("queue_update").finish();
        assert_eq!(
            a.calls.borrow().as_slice(),
            ["add:slots:1", "event:counter", "span:queue_update"]
        );
        assert_eq!(a.calls.borrow().as_slice(), b.calls.borrow().as_slice());
    }
}
