//! Offline analysis of JSONL traces written by
//! [`JsonlRecorder`](crate::JsonlRecorder).

use std::collections::BTreeMap;
use std::io::BufRead;

use crate::event::{TraceEvent, TraceRecord};
use crate::histogram::Histogram;

/// Parses one JSONL line into a [`TraceRecord`].
pub fn parse_line(line: &str) -> Result<TraceRecord, serde_json::Error> {
    serde_json::from_str(line)
}

/// Aggregated view of a whole trace file.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    /// Duration histograms per span name, in nanoseconds.
    pub spans: BTreeMap<String, Histogram>,
    /// Final running total per counter.
    pub counters: BTreeMap<String, u64>,
    /// BDMA alternation rounds per slot, over slots that ran BDMA.
    pub bdma_rounds_per_slot: Histogram,
    /// Virtual-queue backlog per completed slot, in slot order.
    pub queue_by_slot: Vec<(u64, f64)>,
    /// Number of `slot` events seen.
    pub slots: u64,
    /// Total records parsed.
    pub records: u64,
    /// Lines that failed to parse: `(line_number, error)`, 1-based.
    pub malformed: Vec<(u64, String)>,
}

impl TraceAnalysis {
    /// Builds an analysis by streaming a JSONL trace from `reader`.
    ///
    /// Malformed lines are collected in [`TraceAnalysis::malformed`]
    /// rather than aborting, so a truncated trace (e.g. from a killed
    /// run) still analyses. I/O errors abort.
    pub fn from_reader(reader: impl BufRead) -> std::io::Result<Self> {
        let mut analysis = TraceAnalysis::default();
        let mut rounds_this_slot = 0u64;
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let line_no = idx as u64 + 1;
            if line.trim().is_empty() {
                continue;
            }
            let record = match parse_line(&line) {
                Ok(record) => record,
                Err(err) => {
                    analysis.malformed.push((line_no, err.to_string()));
                    continue;
                }
            };
            analysis.records += 1;
            match record.event {
                TraceEvent::Span { ref name, nanos } => {
                    analysis.spans.entry(name.clone()).or_default().record(nanos);
                }
                TraceEvent::Counter { ref name, value } => {
                    analysis.counters.insert(name.clone(), value);
                }
                TraceEvent::BdmaIteration { .. } => rounds_this_slot += 1,
                TraceEvent::Slot { slot, queue, .. } => {
                    analysis.slots += 1;
                    analysis.queue_by_slot.push((slot, queue));
                    if rounds_this_slot > 0 {
                        analysis.bdma_rounds_per_slot.record(rounds_this_slot);
                        rounds_this_slot = 0;
                    }
                }
                TraceEvent::QueueUpdate { .. } | TraceEvent::Health { .. } => {}
            }
        }
        Ok(analysis)
    }

    /// Span names in deterministic order.
    pub fn span_names(&self) -> impl Iterator<Item = &str> {
        self.spans.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlRecorder, Recorder};

    fn sample_trace() -> Vec<u8> {
        let rec = JsonlRecorder::new(Vec::new());
        for slot in 0..3u64 {
            for round in 1..=(slot + 1) {
                rec.span_ns("p2a", 1000 * round);
                rec.span_ns("p2b", 500);
                rec.record(&TraceEvent::BdmaIteration {
                    slot,
                    round,
                    objective: 1.0,
                    accepted: round == 1,
                    p2a_nanos: 1000 * round,
                    p2b_nanos: 500,
                });
            }
            rec.span_ns("queue_update", 50);
            rec.add("bdma_rounds", slot + 1);
            rec.record(&TraceEvent::Slot {
                slot,
                objective: 1.0,
                latency: 0.1,
                cost: 0.01,
                queue: slot as f64,
            });
        }
        rec.finish().unwrap()
    }

    #[test]
    fn analysis_aggregates_spans_counters_and_slots() {
        let buf = sample_trace();
        let analysis = TraceAnalysis::from_reader(buf.as_slice()).unwrap();
        assert_eq!(analysis.slots, 3);
        assert!(analysis.malformed.is_empty());
        assert_eq!(analysis.spans["p2a"].count(), 6);
        assert_eq!(analysis.spans["p2b"].count(), 6);
        assert_eq!(analysis.spans["queue_update"].count(), 3);
        assert_eq!(analysis.counters["bdma_rounds"], 6);
        assert_eq!(analysis.bdma_rounds_per_slot.mean(), Some(2.0));
        assert_eq!(analysis.queue_by_slot, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn malformed_lines_are_collected_not_fatal() {
        let mut buf = sample_trace();
        buf.extend_from_slice(b"{not json\n");
        buf.extend_from_slice(b"\n");
        let analysis = TraceAnalysis::from_reader(buf.as_slice()).unwrap();
        assert_eq!(analysis.slots, 3);
        assert_eq!(analysis.malformed.len(), 1);
    }
}
