//! Observability for the eotora DPP/BDMA pipeline.
//!
//! This crate provides the recording side of the pipeline's
//! instrumentation: a [`Recorder`] trait that the solvers and the
//! simulation runner emit into, plus three implementations —
//!
//! * [`NoopRecorder`]: recording disabled; every hook is a no-op and
//!   [`SpanGuard`]s skip the clock reads entirely, so instrumented code
//!   costs nothing when tracing is off.
//! * [`MetricsRecorder`]: in-memory aggregation — per-span log-linear
//!   [`Histogram`]s with quantile readout, monotonic counters, and
//!   per-slot per-stage solve-time series for
//!   `SimulationResult::per_stage_solve_time`.
//! * [`JsonlRecorder`]: a structured JSONL sink writing one
//!   [`TraceRecord`] per line (`slot`, `span`, `counter`,
//!   `queue_update`, `bdma_iteration` events with sequence numbers and
//!   wall-clock nanos), replayable with [`trace::TraceAnalysis`].
//!
//! [`TeeRecorder`] fans a single event stream out to two recorders, so
//! a run can aggregate metrics and stream JSONL simultaneously.

mod event;
mod flight;
pub mod health;
mod histogram;
mod jsonl;
mod live;
mod metrics;
pub mod names;
mod recorder;
mod session;
pub mod trace;

pub use event::{TraceEvent, TraceRecord};
pub use flight::{install_panic_hook, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use health::{
    HealthEvent, HealthMonitor, HealthRule, HealthSample, HealthStatus, HealthSummary,
};
pub use histogram::Histogram;
pub use jsonl::JsonlRecorder;
pub use live::{prometheus_name, LiveRegistry, RegistrySnapshot, ShardedHistogram, SpanStats};
pub use metrics::MetricsRecorder;
pub use recorder::{NoopRecorder, Recorder, SpanGuard, TeeRecorder};
pub use session::{TelemetryConfig, TelemetrySession};
pub use trace::TraceAnalysis;

// Every metric name is defined once in [`names`]; the glob re-export
// keeps the historical `eotora_obs::COUNTER_*` / `SPAN_*` paths alive.
pub use names::*;
