//! Observability for the eotora DPP/BDMA pipeline.
//!
//! This crate provides the recording side of the pipeline's
//! instrumentation: a [`Recorder`] trait that the solvers and the
//! simulation runner emit into, plus three implementations —
//!
//! * [`NoopRecorder`]: recording disabled; every hook is a no-op and
//!   [`SpanGuard`]s skip the clock reads entirely, so instrumented code
//!   costs nothing when tracing is off.
//! * [`MetricsRecorder`]: in-memory aggregation — per-span log-linear
//!   [`Histogram`]s with quantile readout, monotonic counters, and
//!   per-slot per-stage solve-time series for
//!   `SimulationResult::per_stage_solve_time`.
//! * [`JsonlRecorder`]: a structured JSONL sink writing one
//!   [`TraceRecord`] per line (`slot`, `span`, `counter`,
//!   `queue_update`, `bdma_iteration` events with sequence numbers and
//!   wall-clock nanos), replayable with [`trace::TraceAnalysis`].
//!
//! [`TeeRecorder`] fans a single event stream out to two recorders, so
//! a run can aggregate metrics and stream JSONL simultaneously.

mod event;
mod histogram;
mod jsonl;
mod metrics;
mod recorder;
pub mod trace;

pub use event::{TraceEvent, TraceRecord};
pub use histogram::Histogram;
pub use jsonl::JsonlRecorder;
pub use metrics::MetricsRecorder;
pub use recorder::{NoopRecorder, Recorder, SpanGuard, TeeRecorder};
pub use trace::TraceAnalysis;

/// Span name for one whole per-slot DPP solve.
pub const SPAN_SLOT_SOLVE: &str = "slot_solve";
/// Span name for a P2-A (discrete offloading/scheduling) solve.
pub const SPAN_P2A: &str = "p2a";
/// Span name for a P2-B (continuous frequency) solve.
pub const SPAN_P2B: &str = "p2b";
/// Span name for the virtual-queue update Q(t+1) = max{Q(t)+C_t-C̄, 0}.
pub const SPAN_QUEUE_UPDATE: &str = "queue_update";

/// Counter name for BDMA alternation rounds executed.
pub const COUNTER_BDMA_ROUNDS: &str = "bdma_rounds";
/// Counter name for BDMA rounds whose candidate improved the incumbent.
pub const COUNTER_BDMA_ACCEPTED: &str = "bdma_accepted";
/// Counter name for BDMA rounds skipped by ε early termination
/// (`z − rounds_used`, accumulated across slots).
pub const COUNTER_BDMA_ROUNDS_SAVED: &str = "bdma.rounds_saved";
/// Counter name for best-response moves made by warm-seeded CGBA solves.
pub const COUNTER_CGBA_WARM_MOVES: &str = "cgba.warm.moves_to_converge";
/// Counter name for slots solved.
pub const COUNTER_SLOTS: &str = "slots";

/// Counter name for game resources masked out by availability faults,
/// accumulated across slots.
pub const COUNTER_FAULT_MASKED_RESOURCES: &str = "fault.masked_resources";
/// Counter name for players whose retained strategy was displaced by a
/// mask and repaired onto a reachable alternative (includes players
/// re-allowed best-effort because the mask left them nothing).
pub const COUNTER_FAULT_REPAIRED_PLAYERS: &str = "fault.repaired_players";
/// Counter name for corrupt state entries replaced by the sanitizer.
pub const COUNTER_FAULT_STATE_SUBSTITUTIONS: &str = "fault.state_substitutions";
/// Counter name for slots whose solve hit the anytime deadline and
/// returned the checkpointed incumbent instead of finishing.
pub const COUNTER_DEADLINE_EXPIRATIONS: &str = "deadline.expirations";

/// Counter name for snapshots written by a checkpointed run.
pub const COUNTER_DURABILITY_SNAPSHOTS: &str = "durability.snapshots_written";
/// Counter name for slot records appended to the write-ahead journal.
pub const COUNTER_DURABILITY_FRAMES: &str = "durability.frames_journaled";
/// Counter name for torn journal frames silently dropped during recovery
/// (a crash mid-append tears at most the final frame).
pub const COUNTER_DURABILITY_TORN: &str = "durability.torn_frames_dropped";
/// Counter name for intact journal frames past the snapshot slot that a
/// resume discards (their slots are re-executed deterministically).
pub const COUNTER_DURABILITY_DISCARDED: &str = "durability.frames_discarded";
/// Counter name for completed slots restored from the checkpoint instead
/// of re-solved (the resume fast-forward).
pub const COUNTER_DURABILITY_RESUMED: &str = "durability.resumed_slots";
