//! In-memory metrics aggregation: span histograms, counters, and
//! per-slot per-stage solve-time series.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::event::TraceEvent;
use crate::histogram::Histogram;
use crate::recorder::Recorder;

#[derive(Default)]
struct MetricsInner {
    spans: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    /// Nanoseconds accumulated per span name since the last slot event.
    stage_acc: BTreeMap<String, u64>,
    /// Per-slot seconds spent in each stage, aligned by slot index.
    stage_series: BTreeMap<String, Vec<f64>>,
    /// BDMA alternation rounds observed since the last slot event.
    rounds_this_slot: u64,
    /// Per-slot BDMA round counts (slots that ran BDMA only).
    bdma_rounds: Histogram,
    /// Per-slot BDMA round counts, one entry per completed slot (0 for
    /// slots that never ran BDMA) — the `rounds_used` series.
    rounds_series: Vec<f64>,
    slots: u64,
    final_queue: Option<f64>,
    /// Bounded mode: per-slot series keep only the most recent slot so a
    /// long-running process stays O(1) in memory (see
    /// [`MetricsRecorder::bounded`]).
    bounded: bool,
}

/// Aggregating [`Recorder`]: builds per-span [`Histogram`]s, monotonic
/// counters, and — keyed on the `slot` events that close each slot —
/// per-slot time series of the seconds spent in every named stage.
///
/// Stage series are aligned: every series has exactly one entry per
/// completed slot (zero for slots in which the stage never ran), so they
/// convert directly into the runner's per-slot `TimeSeries`.
#[derive(Default)]
pub struct MetricsRecorder {
    inner: RefCell<MetricsInner>,
}

impl MetricsRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder whose per-slot series ([`MetricsRecorder::stage_series`]
    /// and [`MetricsRecorder::bdma_rounds_series`]) retain only the most
    /// recently completed slot, so memory stays constant no matter how
    /// long the process runs. Histograms, counters, quantiles, and the
    /// `last_slot_*` accessors behave exactly as in the default recorder
    /// — only whole-run series reconstruction is given up. The daemon
    /// loop runs on this; batch runs keep the unbounded default.
    pub fn bounded() -> Self {
        let rec = Self::default();
        rec.inner.borrow_mut().bounded = true;
        rec
    }

    /// Number of completed slots observed.
    pub fn slots(&self) -> u64 {
        self.inner.borrow().slots
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// The `q`-quantile of a span's duration in seconds.
    pub fn span_quantile(&self, name: &str, q: f64) -> Option<f64> {
        let inner = self.inner.borrow();
        Some(inner.spans.get(name)?.quantile(q)? / 1e9)
    }

    /// Mean duration of a span in seconds.
    pub fn span_mean(&self, name: &str) -> Option<f64> {
        let inner = self.inner.borrow();
        Some(inner.spans.get(name)?.mean()? / 1e9)
    }

    /// Number of recordings of a span.
    pub fn span_count(&self, name: &str) -> u64 {
        self.inner.borrow().spans.get(name).map_or(0, Histogram::count)
    }

    /// Mean BDMA alternation rounds per slot, over slots that ran BDMA.
    pub fn mean_bdma_rounds(&self) -> Option<f64> {
        self.inner.borrow().bdma_rounds.mean()
    }

    /// BDMA rounds used per completed slot (`rounds_used ≤ z` under ε early
    /// termination; 0 for slots that never ran BDMA). One entry per slot,
    /// aligned with [`MetricsRecorder::stage_series`].
    pub fn bdma_rounds_series(&self) -> Vec<f64> {
        self.inner.borrow().rounds_series.clone()
    }

    /// Virtual-queue backlog after the last completed slot.
    pub fn final_queue(&self) -> Option<f64> {
        self.inner.borrow().final_queue
    }

    /// Per-slot seconds spent in each recorded stage, one aligned series
    /// per span name.
    pub fn stage_series(&self) -> BTreeMap<String, Vec<f64>> {
        self.inner.borrow().stage_series.clone()
    }

    /// A snapshot of every counter and its current value.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.borrow().counters.clone()
    }

    /// Seconds spent per stage in the most recently completed slot (the
    /// final entry of each aligned stage series). Empty before the first
    /// slot completes.
    pub fn last_slot_stages(&self) -> Vec<(String, f64)> {
        let inner = self.inner.borrow();
        inner
            .stage_series
            .iter()
            .filter_map(|(name, series)| series.last().map(|&v| (name.clone(), v)))
            .collect()
    }

    /// BDMA rounds of the most recently completed slot (0 if BDMA never
    /// ran that slot; `None` before the first slot completes).
    pub fn last_slot_rounds(&self) -> Option<f64> {
        self.inner.borrow().rounds_series.last().copied()
    }
}

impl Recorder for MetricsRecorder {
    fn span_ns(&self, name: &str, nanos: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.spans.get_mut(name) {
            Some(hist) => hist.record(nanos),
            None => {
                let mut hist = Histogram::new();
                hist.record(nanos);
                inner.spans.insert(name.to_owned(), hist);
            }
        }
        *inner.stage_acc.entry(name.to_owned()).or_insert(0) += nanos;
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.counters.get_mut(name) {
            Some(total) => *total += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn record(&self, event: &TraceEvent) {
        match event {
            TraceEvent::Slot { queue, .. } => {
                let mut inner = self.inner.borrow_mut();
                let inner = &mut *inner;
                // Bounded mode drops everything but the slot just
                // completed before appending, so every series holds at
                // most one entry and `last_slot_*` stay correct.
                if inner.bounded {
                    for series in inner.stage_series.values_mut() {
                        series.clear();
                    }
                    inner.rounds_series.clear();
                }
                let completed = if inner.bounded { 0 } else { inner.slots };
                // One entry per slot in every series: new stages backfill
                // zeros for the slots before they first appeared, and
                // stages idle this slot append a zero.
                for (name, acc) in &inner.stage_acc {
                    let series = inner.stage_series.entry(name.clone()).or_default();
                    series.resize(completed as usize, 0.0);
                    series.push(*acc as f64 / 1e9);
                }
                for (name, series) in &mut inner.stage_series {
                    if !inner.stage_acc.contains_key(name) {
                        series.resize(completed as usize + 1, 0.0);
                    }
                }
                inner.stage_acc.clear();
                inner.rounds_series.push(inner.rounds_this_slot as f64);
                if inner.rounds_this_slot > 0 {
                    inner.bdma_rounds.record(inner.rounds_this_slot);
                    inner.rounds_this_slot = 0;
                }
                inner.slots += 1;
                inner.final_queue = Some(*queue);
            }
            TraceEvent::BdmaIteration { .. } => {
                self.inner.borrow_mut().rounds_this_slot += 1;
            }
            TraceEvent::Span { .. }
            | TraceEvent::Counter { .. }
            | TraceEvent::QueueUpdate { .. }
            | TraceEvent::Health { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn slot_event(slot: u64, queue: f64) -> TraceEvent {
        TraceEvent::Slot { slot, objective: 0.0, latency: 0.0, cost: 0.0, queue }
    }

    #[test]
    fn bounded_recorder_keeps_only_last_slot() {
        let rec = MetricsRecorder::bounded();
        for slot in 0..100u64 {
            rec.span_ns("p2a", (slot + 1) * 1_000_000_000);
            if slot == 50 {
                rec.span_ns("p2b", 7_000_000_000);
            }
            rec.record(&TraceEvent::BdmaIteration {
                slot,
                round: 1,
                objective: 0.0,
                accepted: true,
                p2a_nanos: 0,
                p2b_nanos: 0,
            });
            rec.record(&slot_event(slot, slot as f64));
        }
        assert_eq!(rec.slots(), 100);
        let series = rec.stage_series();
        assert_eq!(series["p2a"], vec![100.0]);
        assert_eq!(series["p2b"], vec![0.0]);
        assert_eq!(rec.bdma_rounds_series(), vec![1.0]);
        assert_eq!(rec.last_slot_rounds(), Some(1.0));
        assert_eq!(rec.last_slot_stages(), vec![("p2a".into(), 100.0), ("p2b".into(), 0.0)]);
        assert_eq!(rec.final_queue(), Some(99.0));
        // Whole-run aggregates are unaffected by the bound.
        assert_eq!(rec.span_count("p2a"), 100);
        assert_eq!(rec.mean_bdma_rounds(), Some(1.0));
    }

    #[test]
    fn stage_series_align_per_slot() {
        let rec = MetricsRecorder::new();
        // Slot 0: only p2a runs.
        rec.span_ns("p2a", 2_000_000_000);
        rec.record(&slot_event(0, 1.0));
        // Slot 1: p2a twice (two rounds) and p2b once.
        rec.span_ns("p2a", 500_000_000);
        rec.span_ns("p2a", 500_000_000);
        rec.span_ns("p2b", 3_000_000_000);
        rec.record(&slot_event(1, 2.0));
        // Slot 2: neither runs.
        rec.record(&slot_event(2, 0.5));

        let series = rec.stage_series();
        assert_eq!(series["p2a"], vec![2.0, 1.0, 0.0]);
        assert_eq!(series["p2b"], vec![0.0, 3.0, 0.0]);
        assert_eq!(rec.slots(), 3);
        assert_eq!(rec.final_queue(), Some(0.5));
    }

    #[test]
    fn bdma_rounds_average_over_active_slots() {
        let rec = MetricsRecorder::new();
        for round in 1..=3u64 {
            rec.record(&TraceEvent::BdmaIteration {
                slot: 0,
                round,
                objective: 0.0,
                accepted: round == 1,
                p2a_nanos: 0,
                p2b_nanos: 0,
            });
        }
        rec.record(&slot_event(0, 0.0));
        rec.record(&TraceEvent::BdmaIteration {
            slot: 1,
            round: 1,
            objective: 0.0,
            accepted: true,
            p2a_nanos: 0,
            p2b_nanos: 0,
        });
        rec.record(&slot_event(1, 0.0));
        assert_eq!(rec.mean_bdma_rounds(), Some(2.0));
    }

    #[test]
    fn span_quantiles_convert_to_seconds() {
        let rec = MetricsRecorder::new();
        for _ in 0..100 {
            rec.span_ns("slot_solve", 1_000_000_000);
        }
        let p95 = rec.span_quantile("slot_solve", 0.95).unwrap();
        assert!((p95 - 1.0).abs() < 1e-9);
        assert_eq!(rec.span_count("slot_solve"), 100);
    }

    proptest! {
        /// Counters only ever increase, regardless of interleaving.
        #[test]
        fn counters_never_decrease(deltas in prop::collection::vec(0u64..1000, 1..50)) {
            let rec = MetricsRecorder::new();
            let mut prev = 0;
            for &d in &deltas {
                rec.add("bdma_rounds", d);
                let now = rec.counter("bdma_rounds");
                prop_assert!(now >= prev);
                prop_assert_eq!(now, prev + d);
                prev = now;
            }
        }

        /// Every stage series has exactly one entry per completed slot.
        #[test]
        fn stage_series_lengths_match_slots(
            pattern in prop::collection::vec((prop::bool::ANY, prop::bool::ANY), 1..20),
        ) {
            let rec = MetricsRecorder::new();
            for (i, &(run_a, run_b)) in pattern.iter().enumerate() {
                if run_a {
                    rec.span_ns("p2a", 10);
                }
                if run_b {
                    rec.span_ns("p2b", 20);
                }
                rec.record(&slot_event(i as u64, 0.0));
            }
            for series in rec.stage_series().values() {
                prop_assert_eq!(series.len(), pattern.len());
            }
        }
    }
}
