//! Central registry of every metric name the pipeline emits.
//!
//! Counters, gauges, and span histograms are addressed by string keys;
//! a typo'd literal silently creates a brand-new metric, so every name
//! lives here as a `const` and call sites refer to the constant. The
//! [`ALL`] table pairs each name with its [`MetricKind`] and a help
//! string — it drives the Prometheus `# TYPE`/`# HELP` exposition in
//! [`crate::LiveRegistry`] and the reference table in `DESIGN.md`.
//!
//! Names not listed here still work (they land in a registry overflow
//! map and are exported untyped), so downstream crates can experiment
//! without an obs-crate change — but pipeline code should always add
//! the const.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

/// Span name for one whole per-slot DPP solve.
pub const SPAN_SLOT_SOLVE: &str = "slot_solve";
/// Span name for a P2-A (discrete offloading/scheduling) solve.
pub const SPAN_P2A: &str = "p2a";
/// Span name for a P2-B (continuous frequency) solve.
pub const SPAN_P2B: &str = "p2b";
/// Span name for the virtual-queue update Q(t+1) = max{Q(t)+C_t-C̄, 0}.
pub const SPAN_QUEUE_UPDATE: &str = "queue_update";
/// Span name for one slot-record append to the durability journal.
pub const SPAN_JOURNAL_APPEND: &str = "journal.append";
/// Span name for a journal fsync (only emitted when the journal runs
/// with `fsync` durability).
pub const SPAN_JOURNAL_FSYNC: &str = "journal.fsync";
/// Span name for writing one atomic checkpoint snapshot.
pub const SPAN_SNAPSHOT_WRITE: &str = "journal.snapshot_write";
/// Span name for one speculative next-slot pre-solve (staged off the
/// critical path; compare against `slot_solve` to see the overlap win).
pub const SPAN_SPEC_STAGE: &str = "spec.staged_solve";

/// Counter name for BDMA alternation rounds executed.
pub const COUNTER_BDMA_ROUNDS: &str = "bdma_rounds";
/// Counter name for BDMA rounds whose candidate improved the incumbent.
pub const COUNTER_BDMA_ACCEPTED: &str = "bdma_accepted";
/// Counter name for BDMA rounds skipped by ε early termination
/// (`z − rounds_used`, accumulated across slots).
pub const COUNTER_BDMA_ROUNDS_SAVED: &str = "bdma.rounds_saved";
/// Counter name for CGBA best-response iterations executed.
pub const COUNTER_CGBA_ITERATIONS: &str = "cgba_iterations";
/// Counter name for CGBA solves that converged to a Nash equilibrium
/// within the iteration cap.
pub const COUNTER_CGBA_CONVERGED: &str = "cgba_converged";
/// Counter name for strategy-cost probes evaluated inside CGBA
/// best-response scans (the game hot path's unit of work).
pub const COUNTER_CGBA_PROBES: &str = "cgba.probes";
/// Counter name for best-response moves made by warm-seeded CGBA solves.
pub const COUNTER_CGBA_WARM_MOVES: &str = "cgba.warm.moves_to_converge";
/// Counter name for slots solved.
pub const COUNTER_SLOTS: &str = "slots";

/// Counter name for MCBA (simulated annealing) proposals evaluated.
pub const COUNTER_MCBA_PROPOSALS: &str = "mcba_proposals";
/// Counter name for MCBA proposals accepted.
pub const COUNTER_MCBA_ACCEPTED: &str = "mcba_accepted";
/// Counter name for branch-and-bound nodes expanded by the exact P2-A
/// baseline.
pub const COUNTER_BNB_NODES: &str = "bnb_nodes";
/// Counter name for branch-and-bound solves that proved optimality.
pub const COUNTER_BNB_PROVEN_OPTIMAL: &str = "bnb_proven_optimal";
/// Counter name for bisection probes made by the per-slot baseline's
/// multiplier search.
pub const COUNTER_PER_SLOT_PROBES: &str = "per_slot_probes";

/// Counter name for game resources masked out by availability faults,
/// accumulated across slots.
pub const COUNTER_FAULT_MASKED_RESOURCES: &str = "fault.masked_resources";
/// Counter name for players whose retained strategy was displaced by a
/// mask and repaired onto a reachable alternative (includes players
/// re-allowed best-effort because the mask left them nothing).
pub const COUNTER_FAULT_REPAIRED_PLAYERS: &str = "fault.repaired_players";
/// Counter name for corrupt state entries replaced by the sanitizer.
pub const COUNTER_FAULT_STATE_SUBSTITUTIONS: &str = "fault.state_substitutions";
/// Counter name for slots whose solve hit the anytime deadline and
/// returned the checkpointed incumbent instead of finishing.
pub const COUNTER_DEADLINE_EXPIRATIONS: &str = "deadline.expirations";

/// Counter name for robust solves that retried after a transient
/// `SolveError` before succeeding or escalating.
pub const COUNTER_ROBUST_RETRIES: &str = "robust.retries";
/// Counter name for `SolveError`s surfaced to the robust ladder (each
/// one forces an escalation past the first rung).
pub const COUNTER_ROBUST_SOLVE_ERRORS: &str = "robust.solve_errors";
/// Counter name for slots decided by the topology-only lifeboat after
/// the optimizing solve failed.
pub const COUNTER_ROBUST_LIFEBOAT_DECISIONS: &str = "robust.lifeboat_decisions";
/// Counter name for slots whose frequency allocation fell back to
/// equal-share after the optimal allocation failed.
pub const COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS: &str = "robust.equal_share_fallbacks";

/// Counter name for snapshots written by a checkpointed run.
pub const COUNTER_DURABILITY_SNAPSHOTS: &str = "durability.snapshots_written";
/// Counter name for slot records appended to the write-ahead journal.
pub const COUNTER_DURABILITY_FRAMES: &str = "durability.frames_journaled";
/// Counter name for torn journal frames silently dropped during recovery
/// (a crash mid-append tears at most the final frame).
pub const COUNTER_DURABILITY_TORN: &str = "durability.torn_frames_dropped";
/// Counter name for intact journal frames past the snapshot slot that a
/// resume discards (their slots are re-executed deterministically).
pub const COUNTER_DURABILITY_DISCARDED: &str = "durability.frames_discarded";
/// Counter name for completed slots restored from the checkpoint instead
/// of re-solved (the resume fast-forward).
pub const COUNTER_DURABILITY_RESUMED: &str = "durability.resumed_slots";

/// Counter name for per-shard CGBA subgame solves executed.
pub const COUNTER_SHARD_SOLVES: &str = "shard.solves";
/// Counter name for cut players (strategy sets spanning shards) seen by
/// sharded solves.
pub const COUNTER_SHARD_CUT_PLAYERS: &str = "shard.cut_players";
/// Counter name for global best-response moves made by the post-merge
/// cut-player reconciliation pass.
pub const COUNTER_SHARD_RECONCILE_MOVES: &str = "shard.reconcile_moves";
/// Counter name for shards that missed the anytime deadline and merged
/// their best-so-far profile (the shard-local degradation path).
pub const COUNTER_SHARD_DEADLINE_DEGRADED: &str = "shard.deadline_degraded";

/// Counter name for staged speculative solves adopted verbatim because
/// the predicted state matched the observed state exactly.
pub const COUNTER_SPEC_HITS: &str = "spec.hits";
/// Counter name for staged solves close enough (per-state relative
/// deltas under the tolerance) to warm-seed a repair solve.
pub const COUNTER_SPEC_NEAR_HITS: &str = "spec.near_hits";
/// Counter name for slots whose prediction missed and fell back to the
/// normal solve path.
pub const COUNTER_SPEC_MISSES: &str = "spec.misses";
/// Counter name for assignments the near-miss repair pass moved away
/// from the speculated profile.
pub const COUNTER_SPEC_REPAIR_MOVES: &str = "spec.repair_moves";
/// Counter name for staged solves discarded before comparison (staging
/// deadline overrun, or superseded by a resume).
pub const COUNTER_SPEC_STAGED_DISCARDS: &str = "spec.staged_discards";

/// Counter name for state frames accepted into the admission queue.
pub const COUNTER_SERVER_ADMITTED: &str = "server.admitted";
/// Counter name for stale state frames shed from the *front* of the
/// bounded admission queue under the `DropOldest` policy (dropped
/// without a decision).
pub const COUNTER_SERVER_SHED_OLDEST: &str = "server.shed_oldest";
/// Counter name for state frames shed under the `NewestWins` policy —
/// the queued frames displaced when a newer state supersedes the whole
/// backlog (every coalesce is also counted here).
pub const COUNTER_SERVER_SHED_NEWEST: &str = "server.shed_newest";
/// Counter name for queued state frames superseded in place by a newer
/// frame for the same stream position (newest-state-wins coalescing;
/// every coalesce is also counted as a shed).
pub const COUNTER_SERVER_COALESCED: &str = "server.coalesced";
/// Counter name for malformed input frames rejected by the codec with a
/// typed error (bad JSON, wrong shape, non-finite payload).
pub const COUNTER_SERVER_MALFORMED: &str = "server.malformed_frames";
/// Counter name for well-formed state frames rejected by admission
/// policy (e.g. slot index mismatch under strict sequencing).
pub const COUNTER_SERVER_REJECTED: &str = "server.rejected_frames";
/// Counter name for config hot-reloads validated and applied.
pub const COUNTER_SERVER_RELOADS: &str = "server.reloads_applied";
/// Counter name for config hot-reloads rejected atomically (old config
/// stayed live).
pub const COUNTER_SERVER_RELOADS_REJECTED: &str = "server.reloads_rejected";
/// Counter name for watchdog escalations after repeated consecutive
/// deadline expirations (each one dumps a flight-recorder postmortem).
pub const COUNTER_SERVER_WATCHDOG_TRIPS: &str = "server.watchdog_trips";
/// Counter name for decision records emitted on the output stream.
pub const COUNTER_SERVER_DECISIONS: &str = "server.decisions";

/// Counter name for `QueueGossip` frames a federated region handed to
/// the peer link (duplicated transmissions count once per copy sent).
pub const COUNTER_FED_GOSSIP_SENT: &str = "fed.gossip_sent";
/// Counter name for gossip frames the link-fault layer dropped (loss or
/// partition) before reaching the peer.
pub const COUNTER_FED_GOSSIP_DROPPED: &str = "fed.gossip_dropped";
/// Counter name for sync epochs a region closed with at least one peer
/// stale (no fresh gossip within the staleness window).
pub const COUNTER_FED_STALE_EPOCHS: &str = "fed.stale_epochs";
/// Counter name for transitions into the partitioned degradation rung —
/// a peer's missed-epoch count crossing the partition threshold.
pub const COUNTER_FED_PARTITIONS: &str = "fed.partitions";
/// Counter name for budget-share changes a region applied — a staged
/// round cutting the share immediately, or a fleet-confirmed round
/// raising it.
pub const COUNTER_FED_BUDGET_REBALANCES: &str = "fed.budget_rebalances";
/// Counter name for share rounds a region promoted after the whole fleet
/// advertised knowing them (the confirmation phase of the two-phase
/// rebalance protocol).
pub const COUNTER_FED_ROUNDS_PROMOTED: &str = "fed.rounds_promoted";

/// Counter name for health transitions into `Ok`.
pub const COUNTER_HEALTH_TO_OK: &str = "health.to_ok";
/// Counter name for health transitions into `Degraded`.
pub const COUNTER_HEALTH_TO_DEGRADED: &str = "health.to_degraded";
/// Counter name for health transitions into `Critical`.
pub const COUNTER_HEALTH_TO_CRITICAL: &str = "health.to_critical";
/// Counter name for flight-recorder postmortem bundles dumped.
pub const COUNTER_FLIGHT_POSTMORTEMS: &str = "flight.postmortems";

/// Gauge name for the current virtual-queue backlog Q(t+1).
pub const GAUGE_QUEUE_BACKLOG: &str = "queue_backlog";
/// Gauge name for the queue trend (backlog change per slot over the
/// health window).
pub const GAUGE_QUEUE_TREND: &str = "queue_trend_per_slot";
/// Gauge name for the budget residual C̄ − (1/t)·ΣE ($/slot; negative
/// means overspending).
pub const GAUGE_BUDGET_RESIDUAL: &str = "budget_residual_usd";
/// Gauge name for the running time-average fleet latency (s).
pub const GAUGE_AVG_LATENCY: &str = "avg_latency_s";
/// Gauge name for the running time-average energy cost ($/slot).
pub const GAUGE_AVG_COST: &str = "avg_cost_usd";
/// Gauge name for the overall health level (0 = Ok, 1 = Degraded,
/// 2 = Critical).
pub const GAUGE_HEALTH_LEVEL: &str = "health_level";
/// Gauge name for the run's drift-plus-penalty weight V.
pub const GAUGE_CONFIG_V: &str = "config_v";
/// Gauge name for the run's per-slot energy budget C̄ ($/slot).
pub const GAUGE_CONFIG_BUDGET: &str = "config_budget_usd";

/// Counter-name families exported to downstream consumers: the `ctr_*`
/// CSV columns, the run-summary counter lines, and the server's stats
/// frames all filter through this single list, so adding a family here
/// is the one change that surfaces a new counter group everywhere (the
/// PR-8 lesson: `shard.*` existed for a full PR before anything printed
/// it). Core solver counters (`bdma_rounds`, `cgba_*`, …) stay internal
/// — they are solver mechanics, not run outcomes.
pub const EXPORTED_COUNTER_FAMILIES: &[&str] =
    &["fault.", "deadline.", "durability.", "shard.", "spec.", "server.", "fed."];

/// Whether a counter belongs to an exported family (see
/// [`EXPORTED_COUNTER_FAMILIES`]).
pub fn is_exported_counter(name: &str) -> bool {
    EXPORTED_COUNTER_FAMILIES.iter().any(|family| name.starts_with(family))
}

/// The kind of a metric, deciding its Prometheus `# TYPE` and snapshot
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (exposed with a `_total` suffix).
    Counter,
    /// Point-in-time float value.
    Gauge,
    /// Log-linear distribution of span durations (nanoseconds).
    Histogram,
}

/// One registered metric: name, kind, and a one-line meaning.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The wire name (the `const` above).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// One-line help string for exposition and docs.
    pub help: &'static str,
}

const fn def(name: &'static str, kind: MetricKind, help: &'static str) -> MetricDef {
    MetricDef { name, kind, help }
}

/// Every known metric, in exposition order. [`crate::LiveRegistry`]
/// pre-allocates one slot per entry so hot-path updates are a single
/// index + atomic op.
pub const ALL: &[MetricDef] = &[
    def(SPAN_SLOT_SOLVE, MetricKind::Histogram, "wall time of one whole per-slot DPP solve (ns)"),
    def(SPAN_P2A, MetricKind::Histogram, "wall time of one P2-A discrete solve (ns)"),
    def(SPAN_P2B, MetricKind::Histogram, "wall time of one P2-B frequency solve (ns)"),
    def(SPAN_QUEUE_UPDATE, MetricKind::Histogram, "wall time of one virtual-queue update (ns)"),
    def(SPAN_JOURNAL_APPEND, MetricKind::Histogram, "wall time of one journal append (ns)"),
    def(SPAN_JOURNAL_FSYNC, MetricKind::Histogram, "wall time of one journal fsync (ns)"),
    def(
        SPAN_SNAPSHOT_WRITE,
        MetricKind::Histogram,
        "wall time of one checkpoint snapshot write (ns)",
    ),
    def(
        SPAN_SPEC_STAGE,
        MetricKind::Histogram,
        "wall time of one speculative next-slot pre-solve (ns)",
    ),
    def(COUNTER_SLOTS, MetricKind::Counter, "slots solved"),
    def(COUNTER_BDMA_ROUNDS, MetricKind::Counter, "BDMA alternation rounds executed"),
    def(COUNTER_BDMA_ACCEPTED, MetricKind::Counter, "BDMA rounds that improved the incumbent"),
    def(COUNTER_BDMA_ROUNDS_SAVED, MetricKind::Counter, "BDMA rounds skipped by early termination"),
    def(COUNTER_CGBA_ITERATIONS, MetricKind::Counter, "CGBA best-response iterations executed"),
    def(COUNTER_CGBA_CONVERGED, MetricKind::Counter, "CGBA solves that reached a Nash equilibrium"),
    def(COUNTER_CGBA_PROBES, MetricKind::Counter, "strategy-cost probes evaluated in CGBA scans"),
    def(
        COUNTER_CGBA_WARM_MOVES,
        MetricKind::Counter,
        "best-response moves of warm-seeded CGBA solves",
    ),
    def(COUNTER_MCBA_PROPOSALS, MetricKind::Counter, "MCBA annealing proposals evaluated"),
    def(COUNTER_MCBA_ACCEPTED, MetricKind::Counter, "MCBA annealing proposals accepted"),
    def(COUNTER_BNB_NODES, MetricKind::Counter, "branch-and-bound nodes expanded"),
    def(COUNTER_BNB_PROVEN_OPTIMAL, MetricKind::Counter, "branch-and-bound solves proven optimal"),
    def(
        COUNTER_PER_SLOT_PROBES,
        MetricKind::Counter,
        "per-slot baseline multiplier bisection probes",
    ),
    def(
        COUNTER_FAULT_MASKED_RESOURCES,
        MetricKind::Counter,
        "game resources masked by availability faults",
    ),
    def(
        COUNTER_FAULT_REPAIRED_PLAYERS,
        MetricKind::Counter,
        "players repaired after a mask displaced them",
    ),
    def(
        COUNTER_FAULT_STATE_SUBSTITUTIONS,
        MetricKind::Counter,
        "corrupt state entries replaced by the sanitizer",
    ),
    def(
        COUNTER_DEADLINE_EXPIRATIONS,
        MetricKind::Counter,
        "solves cut short by the anytime deadline",
    ),
    def(
        COUNTER_ROBUST_RETRIES,
        MetricKind::Counter,
        "robust solves retried after a transient error",
    ),
    def(
        COUNTER_ROBUST_SOLVE_ERRORS,
        MetricKind::Counter,
        "SolveErrors surfaced to the robust ladder",
    ),
    def(
        COUNTER_ROBUST_LIFEBOAT_DECISIONS,
        MetricKind::Counter,
        "slots decided by the topology-only lifeboat",
    ),
    def(
        COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS,
        MetricKind::Counter,
        "frequency allocations that fell back to equal share",
    ),
    def(COUNTER_DURABILITY_SNAPSHOTS, MetricKind::Counter, "checkpoint snapshots written"),
    def(COUNTER_DURABILITY_FRAMES, MetricKind::Counter, "slot records appended to the journal"),
    def(
        COUNTER_DURABILITY_TORN,
        MetricKind::Counter,
        "torn journal frames dropped during recovery",
    ),
    def(
        COUNTER_DURABILITY_DISCARDED,
        MetricKind::Counter,
        "intact journal frames discarded on resume",
    ),
    def(
        COUNTER_DURABILITY_RESUMED,
        MetricKind::Counter,
        "slots restored from checkpoint on resume",
    ),
    def(COUNTER_SHARD_SOLVES, MetricKind::Counter, "per-shard CGBA subgame solves executed"),
    def(
        COUNTER_SHARD_CUT_PLAYERS,
        MetricKind::Counter,
        "cut players spanning shards seen by sharded solves",
    ),
    def(
        COUNTER_SHARD_RECONCILE_MOVES,
        MetricKind::Counter,
        "global best-response moves in cut-player reconciliation",
    ),
    def(
        COUNTER_SHARD_DEADLINE_DEGRADED,
        MetricKind::Counter,
        "shards that missed the anytime deadline and merged best-so-far",
    ),
    def(COUNTER_SPEC_HITS, MetricKind::Counter, "staged speculative solves adopted on exact match"),
    def(
        COUNTER_SPEC_NEAR_HITS,
        MetricKind::Counter,
        "staged solves warm-seeding a near-miss repair",
    ),
    def(COUNTER_SPEC_MISSES, MetricKind::Counter, "predictions that missed; normal solve path ran"),
    def(
        COUNTER_SPEC_REPAIR_MOVES,
        MetricKind::Counter,
        "assignments moved off the speculated profile by repairs",
    ),
    def(
        COUNTER_SPEC_STAGED_DISCARDS,
        MetricKind::Counter,
        "staged solves discarded before comparison",
    ),
    def(COUNTER_SERVER_ADMITTED, MetricKind::Counter, "state frames accepted into the queue"),
    def(
        COUNTER_SERVER_SHED_OLDEST,
        MetricKind::Counter,
        "stale frames shed from the queue front (DropOldest)",
    ),
    def(
        COUNTER_SERVER_SHED_NEWEST,
        MetricKind::Counter,
        "queued frames displaced by a newer state (NewestWins)",
    ),
    def(
        COUNTER_SERVER_COALESCED,
        MetricKind::Counter,
        "queued frames superseded by newest-state-wins coalescing",
    ),
    def(
        COUNTER_SERVER_MALFORMED,
        MetricKind::Counter,
        "malformed input frames rejected by the codec",
    ),
    def(
        COUNTER_SERVER_REJECTED,
        MetricKind::Counter,
        "well-formed frames rejected by admission policy",
    ),
    def(COUNTER_SERVER_RELOADS, MetricKind::Counter, "config hot-reloads validated and applied"),
    def(
        COUNTER_SERVER_RELOADS_REJECTED,
        MetricKind::Counter,
        "config hot-reloads rejected atomically",
    ),
    def(
        COUNTER_SERVER_WATCHDOG_TRIPS,
        MetricKind::Counter,
        "watchdog escalations on repeated deadline expirations",
    ),
    def(COUNTER_SERVER_DECISIONS, MetricKind::Counter, "decision records emitted downstream"),
    def(COUNTER_FED_GOSSIP_SENT, MetricKind::Counter, "gossip frames handed to the peer link"),
    def(
        COUNTER_FED_GOSSIP_DROPPED,
        MetricKind::Counter,
        "gossip frames lost to link faults or partitions",
    ),
    def(
        COUNTER_FED_STALE_EPOCHS,
        MetricKind::Counter,
        "sync epochs closed with at least one stale peer",
    ),
    def(
        COUNTER_FED_PARTITIONS,
        MetricKind::Counter,
        "peers crossing the missed-epoch partition threshold",
    ),
    def(
        COUNTER_FED_BUDGET_REBALANCES,
        MetricKind::Counter,
        "budget-share changes applied by a region",
    ),
    def(
        COUNTER_FED_ROUNDS_PROMOTED,
        MetricKind::Counter,
        "share rounds promoted after fleet-wide acknowledgement",
    ),
    def(COUNTER_HEALTH_TO_OK, MetricKind::Counter, "health transitions into Ok"),
    def(COUNTER_HEALTH_TO_DEGRADED, MetricKind::Counter, "health transitions into Degraded"),
    def(COUNTER_HEALTH_TO_CRITICAL, MetricKind::Counter, "health transitions into Critical"),
    def(
        COUNTER_FLIGHT_POSTMORTEMS,
        MetricKind::Counter,
        "flight-recorder postmortem bundles dumped",
    ),
    def(GAUGE_QUEUE_BACKLOG, MetricKind::Gauge, "current virtual-queue backlog Q(t+1)"),
    def(
        GAUGE_QUEUE_TREND,
        MetricKind::Gauge,
        "queue backlog change per slot over the health window",
    ),
    def(
        GAUGE_BUDGET_RESIDUAL,
        MetricKind::Gauge,
        "budget residual C-bar minus running average cost ($/slot)",
    ),
    def(GAUGE_AVG_LATENCY, MetricKind::Gauge, "running time-average fleet latency (s)"),
    def(GAUGE_AVG_COST, MetricKind::Gauge, "running time-average energy cost ($/slot)"),
    def(
        GAUGE_HEALTH_LEVEL,
        MetricKind::Gauge,
        "overall health level (0 Ok, 1 Degraded, 2 Critical)",
    ),
    def(GAUGE_CONFIG_V, MetricKind::Gauge, "drift-plus-penalty weight V of the run"),
    def(GAUGE_CONFIG_BUDGET, MetricKind::Gauge, "per-slot energy budget C-bar of the run ($/slot)"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for d in ALL {
            assert!(seen.insert(d.name), "duplicate metric name {}", d.name);
            assert!(!d.help.is_empty());
        }
    }

    #[test]
    fn registry_covers_the_exported_consts() {
        for name in [
            SPAN_SLOT_SOLVE,
            SPAN_JOURNAL_APPEND,
            COUNTER_SLOTS,
            COUNTER_CGBA_PROBES,
            COUNTER_ROBUST_LIFEBOAT_DECISIONS,
            COUNTER_DURABILITY_FRAMES,
            COUNTER_SERVER_SHED_OLDEST,
            COUNTER_SERVER_SHED_NEWEST,
            COUNTER_SERVER_WATCHDOG_TRIPS,
            COUNTER_FED_GOSSIP_SENT,
            COUNTER_FED_BUDGET_REBALANCES,
            GAUGE_QUEUE_BACKLOG,
            GAUGE_HEALTH_LEVEL,
        ] {
            assert!(ALL.iter().any(|d| d.name == name), "{name} missing from ALL");
        }
    }

    /// Every registered counter in an exported family must be matched by
    /// `is_exported_counter`, and every family prefix must have at least
    /// one registered counter behind it — a new `x.*` counter group that
    /// forgets to extend `EXPORTED_COUNTER_FAMILIES` (or vice versa)
    /// fails here instead of silently vanishing from CSVs and summaries.
    #[test]
    fn exported_families_match_registry() {
        for family in EXPORTED_COUNTER_FAMILIES {
            assert!(
                ALL.iter().any(|d| d.kind == MetricKind::Counter && d.name.starts_with(family)),
                "exported family {family} has no registered counter"
            );
        }
        // Dotted counter groups are either exported or deliberately
        // internal; keep the internal list explicit so a new group must
        // pick a side.
        const INTERNAL_FAMILIES: &[&str] = &["bdma.", "cgba.", "robust.", "health.", "flight."];
        for d in ALL {
            if d.kind == MetricKind::Counter && d.name.contains('.') {
                let internal = INTERNAL_FAMILIES.iter().any(|f| d.name.starts_with(f));
                assert!(
                    internal != is_exported_counter(d.name),
                    "{} must be in exactly one of EXPORTED_COUNTER_FAMILIES / INTERNAL_FAMILIES",
                    d.name
                );
            }
        }
        assert!(is_exported_counter(COUNTER_SERVER_SHED_OLDEST));
        assert!(is_exported_counter(COUNTER_SERVER_SHED_NEWEST));
        assert!(is_exported_counter(COUNTER_FED_STALE_EPOCHS));
        assert!(is_exported_counter(COUNTER_DEADLINE_EXPIRATIONS));
        assert!(!is_exported_counter(COUNTER_BDMA_ROUNDS));
        assert!(!is_exported_counter(COUNTER_HEALTH_TO_OK));
    }
}
