//! Fixed-bucket log-linear histogram for durations and counts.

use serde::{get_field, Deserialize, Error, Serialize, Value};

/// Number of linear sub-buckets per power-of-two range (resolution
/// ~6.25%, i.e. 4 significant bits).
const SUB_BUCKETS: usize = 16;

/// A log-linear histogram over `u64` values with fixed bucket
/// boundaries.
///
/// Values below 16 get exact unit buckets; above that, each power-of-two
/// range `[2^k, 2^(k+1))` splits into 16 equal sub-buckets,
/// bounding relative quantile error at 1/16. Exact `min`/`max`/`sum`
/// are tracked alongside, so `quantile(0.0)` and `quantile(1.0)` are
/// exact and `mean` has no bucketing error.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 4)) & 15) as usize;
        (exp - 3) * SUB_BUCKETS + sub
    }
}

fn bucket_midpoint(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let exp = idx / SUB_BUCKETS + 3;
        let sub = (idx % SUB_BUCKETS) as u64;
        let width = 1u64 << (exp - 4);
        (SUB_BUCKETS as u64 + sub) * width + width / 2
    }
}

/// Largest value that lands in bucket `idx` (the inclusive upper edge,
/// i.e. a Prometheus `le` bound).
pub(crate) fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let exp = idx / SUB_BUCKETS + 3;
        let sub = (idx % SUB_BUCKETS) as u128;
        let width = 1u128 << (exp - 4);
        let next_lower = (SUB_BUCKETS as u128 + sub + 1) * width;
        u64::try_from(next_lower - 1).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a histogram from raw parts (used by the sharded
    /// atomic histogram's merge-on-read snapshot). `buckets[i]` must be
    /// the count for [`bucket_index`] `i`; `count`/`sum`/`min`/`max`
    /// must describe the same observations.
    pub(crate) fn from_parts(buckets: Vec<u64>, count: u64, sum: u128, min: u64, max: u64) -> Self {
        Histogram { buckets, count, sum, min, max }
    }

    /// Raw per-index bucket counts (index is [`bucket_index`]).
    pub(crate) fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += u128::from(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the observations, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// values, within one bucket width (~6.25% relative error).
    ///
    /// Returns `None` on an empty histogram. Non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic to report, in [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                // Clamp to the exact extremes so q=0 / q=1 are exact and
                // midpoint rounding can never leave the observed range.
                return Some((bucket_midpoint(idx) as f64).clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Exact sum of all recorded observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Occupied buckets as `(representative value, count)` pairs, in
    /// increasing value order — the raw material for ASCII bar charts.
    /// Representative values are exact below 16 and bucket midpoints
    /// (~6.25% error) above.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_midpoint(idx), n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("buckets".to_owned(), self.buckets.to_value()),
            ("count".to_owned(), Value::U64(self.count)),
            ("sum".to_owned(), Value::Str(self.sum.to_string())),
            ("min".to_owned(), Value::U64(self.min)),
            ("max".to_owned(), Value::U64(self.max)),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", "Histogram", v))?;
        let sum_str = String::from_value(get_field(fields, "sum", "Histogram")?)?;
        Ok(Histogram {
            buckets: Vec::from_value(get_field(fields, "buckets", "Histogram")?)?,
            count: u64::from_value(get_field(fields, "count", "Histogram")?)?,
            sum: sum_str
                .parse()
                .map_err(|_| Error::custom(format!("invalid u128 sum `{sum_str}`")))?,
            min: u64::from_value(get_field(fields, "min", "Histogram")?)?,
            max: u64::from_value(get_field(fields, "max", "Histogram")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(15.0));
        assert_eq!(h.mean(), Some(21.0 / 5.0));
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..10_000u64 {
            h.record(v * 1000);
        }
        for (q, exact) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.quantile(q).unwrap();
            assert!((got - exact).abs() / exact < 0.0725, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn nonzero_buckets_cover_all_observations() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 5, 5, 5] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 1), (5, 3)]);
        assert_eq!(h.sum(), 19);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..100u64 {
            let x = v * v * 31 + 7;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn serde_roundtrip_preserves_exact_state() {
        let mut h = Histogram::new();
        for v in [3u64, 70_000, u64::MAX, 12] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    proptest! {
        /// Quantiles are non-decreasing in q and bracketed by min/max.
        #[test]
        fn quantiles_are_monotone(
            values in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
            qs in prop::collection::vec(0.0f64..1.0, 2..10),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut qs = qs;
            qs.sort_by(f64::total_cmp);
            let mut prev = f64::NEG_INFINITY;
            for &q in &qs {
                let x = h.quantile(q).unwrap();
                prop_assert!(x >= prev, "quantile({}) = {} < previous {}", q, x, prev);
                prop_assert!(x >= h.min().unwrap() as f64 && x <= h.max().unwrap() as f64);
                prev = x;
            }
        }

        /// Bucket midpoints stay within ~6.25% of the recorded value.
        #[test]
        fn single_value_quantile_is_close(v in 16u64..u64::MAX / 2) {
            let mut h = Histogram::new();
            h.record(v);
            let got = h.quantile(0.5).unwrap();
            prop_assert!((got - v as f64).abs() / v as f64 <= 1.0 / 16.0);
        }
    }
}
