//! Structured JSONL event sink.

use std::cell::RefCell;
use std::io::{self, Write};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::{TraceEvent, TraceRecord};
use crate::recorder::Recorder;

struct JsonlInner<W: Write> {
    writer: W,
    seq: u64,
    counters: std::collections::BTreeMap<String, u64>,
    error: Option<io::Error>,
}

/// A [`Recorder`] that streams every event as one JSON object per line.
///
/// Each line is a [`TraceRecord`]: the event payload plus a sequence
/// number (`seq`, dense from 0) and a wall-clock timestamp (`t_ns`,
/// nanoseconds since the Unix epoch). Counter increments are written as
/// running totals, so replaying a prefix of the file reproduces exact
/// counter state.
///
/// Write errors are latched: the first failure stops further output and
/// is returned by [`JsonlRecorder::finish`].
pub struct JsonlRecorder<W: Write> {
    inner: RefCell<JsonlInner<W>>,
}

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps `writer` (callers wanting buffering should pass a
    /// `BufWriter`).
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            inner: RefCell::new(JsonlInner {
                writer,
                seq: 0,
                counters: std::collections::BTreeMap::new(),
                error: None,
            }),
        }
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.inner.borrow().seq
    }

    /// Flushes and returns the writer, surfacing any latched write
    /// error.
    pub fn finish(self) -> io::Result<W> {
        let mut inner = self.inner.into_inner();
        if let Some(err) = inner.error {
            return Err(err);
        }
        inner.writer.flush()?;
        Ok(inner.writer)
    }

    fn write_event(&self, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.error.is_some() {
            return;
        }
        let record = TraceRecord { seq: inner.seq, t_ns: unix_nanos(), event: event.clone() };
        let mut line = match serde_json::to_string(&record) {
            Ok(line) => line,
            Err(err) => {
                inner.error = Some(io::Error::other(err));
                return;
            }
        };
        line.push('\n');
        match inner.writer.write_all(line.as_bytes()) {
            Ok(()) => inner.seq += 1,
            Err(err) => inner.error = Some(err),
        }
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn span_ns(&self, name: &str, nanos: u64) {
        self.write_event(&TraceEvent::Span { name: name.to_owned(), nanos });
    }

    fn add(&self, name: &str, delta: u64) {
        let value = {
            let mut inner = self.inner.borrow_mut();
            let total = inner.counters.entry(name.to_owned()).or_insert(0);
            *total += delta;
            *total
        };
        self.write_event(&TraceEvent::Counter { name: name.to_owned(), value });
    }

    fn record(&self, event: &TraceEvent) {
        self.write_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn lines_to_records(buf: &[u8]) -> Vec<TraceRecord> {
        std::str::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|line| TraceRecord::from_value(&serde_json::from_str(line).unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn events_roundtrip_line_by_line() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.record(&TraceEvent::QueueUpdate { slot: 0, before: 0.0, after: 0.5, excess: 0.5 });
        rec.span_ns("p2a", 123);
        rec.add("bdma_rounds", 2);
        rec.add("bdma_rounds", 3);
        assert_eq!(rec.records_written(), 4);
        let buf = rec.finish().unwrap();
        let records = lines_to_records(&buf);
        assert_eq!(records.len(), 4);
        assert_eq!(records[1].event, TraceEvent::Span { name: "p2a".into(), nanos: 123 });
        // Counters are running totals.
        assert_eq!(records[3].event, TraceEvent::Counter { name: "bdma_rounds".into(), value: 5 });
    }

    #[test]
    fn sequence_numbers_are_dense_and_timestamps_monotone() {
        let rec = JsonlRecorder::new(Vec::new());
        for i in 0..10u64 {
            rec.record(&TraceEvent::Span { name: "slot_solve".into(), nanos: i });
        }
        let buf = rec.finish().unwrap();
        let records = lines_to_records(&buf);
        for (i, pair) in records.windows(2).enumerate() {
            assert_eq!(pair[0].seq, i as u64);
            assert!(pair[1].t_ns >= pair[0].t_ns);
        }
    }

    #[test]
    fn write_errors_are_latched_and_reported() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let rec = JsonlRecorder::new(FailAfter(1));
        rec.span_ns("ok", 1);
        rec.span_ns("fails", 2);
        rec.span_ns("skipped", 3);
        assert_eq!(rec.records_written(), 1);
        assert!(rec.finish().is_err());
    }
}
