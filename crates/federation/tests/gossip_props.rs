//! Property tests for the `QueueGossip` line codec — the federation
//! mirror of `server/tests/frame_props.rs`.
//!
//! The codec faces the hostile peer link directly, so the pinned
//! properties are survival properties:
//!
//! 1. every finite frame round-trips **bit-exactly**;
//! 2. arbitrary garbage, truncations, and CRC damage yield typed
//!    [`GossipError`]s — never a panic, never a silently wrong frame;
//! 3. non-finite queue levels are rejected on both encode and decode.

use eotora_federation::{GossipError, QueueGossip, GOSSIP_MAGIC};
use proptest::prelude::*;

/// Finite non-negative queue levels across several magnitude regimes:
/// exact zero, ordinary values, tiny sub-nano values, and awkward
/// fractional bit patterns.
fn finite_queue() -> impl Strategy<Value = f64> {
    (0u8..4, 0.0f64..1.0).prop_map(|(variant, unit)| match variant {
        0 => 0.0,
        1 => unit * 1e6,
        2 => unit * 1e-9,
        _ => (unit * 4_294_967_296.0).floor() / 1e3,
    })
}

/// Share vectors in-domain by construction: `k` equal entries scaled by
/// a unit factor, so the sum is `unit ≤ 1` with no float-rounding risk
/// of breaching the codec's sum gate.
fn share_vector() -> impl Strategy<Value = Vec<f64>> {
    (1usize..6, 0.0f64..1.0).prop_map(|(k, unit)| vec![unit / k as f64; k])
}

fn frame() -> impl Strategy<Value = QueueGossip> {
    (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX, finite_queue(), 0u64..u64::MAX, share_vector())
        .prop_map(|(region, epoch, slot, queue, round, shares)| QueueGossip {
            region,
            epoch,
            slot,
            queue,
            round,
            shares,
        })
}

/// Printable-ish garbage lines, including multi-byte characters, like the
/// server codec's property suite uses.
fn garbage_line() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x2500, 0..60).prop_map(|codes| {
        codes.into_iter().filter_map(char::from_u32).filter(|c| *c != '\n' && *c != '\r').collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..Default::default() })]

    #[test]
    fn round_trip_is_bit_exact(f in frame()) {
        let line = f.encode().expect("finite frames always encode");
        let decoded = QueueGossip::decode(&line).expect("own encoding always decodes");
        prop_assert_eq!(decoded.region, f.region);
        prop_assert_eq!(decoded.epoch, f.epoch);
        prop_assert_eq!(decoded.slot, f.slot);
        prop_assert_eq!(decoded.queue.to_bits(), f.queue.to_bits());
        prop_assert_eq!(decoded.round, f.round);
        let decoded_bits: Vec<u64> = decoded.shares.iter().map(|s| s.to_bits()).collect();
        let expect_bits: Vec<u64> = f.shares.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(decoded_bits, expect_bits);
    }

    #[test]
    fn garbage_never_panics_and_never_decodes_silently(line in garbage_line()) {
        // Any result is fine as long as it is a value, not a panic; a
        // successful decode of random garbage would mean the CRC gate
        // failed, so treat it as a property violation too.
        if let Ok(f) = QueueGossip::decode(&line) {
            // The only way garbage decodes is by being a genuine frame.
            let reencoded = f.encode().expect("decoded frames are valid");
            prop_assert_eq!(reencoded, line.trim_end_matches(['\r', '\n']).to_owned());
        }
    }

    #[test]
    fn truncations_yield_typed_errors(f in frame(), frac in 0.0f64..1.0) {
        let line = f.encode().expect("finite frames always encode");
        let cut = ((frac * line.len() as f64) as usize).min(line.len() - 1);
        match QueueGossip::decode(&line[..cut]) {
            Err(e) => prop_assert!(!e.kind().is_empty()),
            Ok(decoded) => prop_assert!(
                false,
                "truncation at {} of {:?} decoded as {:?}", cut, line, decoded
            ),
        }
    }

    #[test]
    fn payload_tampering_is_caught_by_the_crc(f in frame(), frac in 0.0f64..1.0) {
        let line = f.encode().expect("finite frames always encode");
        // Flip one payload character (past "FED2 <8 hex> ") to a different
        // printable one; the CRC gate must reject before JSON even runs.
        let payload_start = 14;
        let bytes = line.as_bytes();
        let span = bytes.len() - payload_start;
        let i = payload_start + ((frac * span as f64) as usize).min(span - 1);
        let replacement = if bytes[i] == b'x' { b'y' } else { b'x' };
        let mut mangled = bytes.to_vec();
        mangled[i] = replacement;
        let mangled = String::from_utf8(mangled).expect("ascii flip keeps utf8");
        match QueueGossip::decode(&mangled) {
            Err(GossipError::Crc { .. }) => {}
            Err(other) => prop_assert!(false, "expected Crc error, got {:?}", other),
            Ok(decoded) => prop_assert!(false, "tampered frame decoded as {:?}", decoded),
        }
    }

    #[test]
    fn non_finite_queue_levels_are_rejected(f in frame(), magnitude in 400u32..2000) {
        // Encode-side: NaN and infinities never reach the wire.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = QueueGossip { queue: bad, ..f.clone() }
                .encode()
                .expect_err("non-finite must fail");
            prop_assert_eq!(e.kind(), "non-finite");
        }
        // Decode-side: an overflowing literal spliced into the payload
        // (with the CRC recomputed, as a hostile peer could) must yield a
        // typed error — non-finite if the parser saturates, json if it
        // rejects the literal outright.
        let payload = serde_json::to_string(&f).expect("serializable");
        let queue_literal = serde_json::to_string(&f.queue).expect("f64 serializes");
        let needle = format!("\"queue\":{queue_literal}");
        if payload.contains(&needle) {
            let hostile = payload.replacen(&needle, &format!("\"queue\":1e{magnitude}"), 1);
            let line =
                format!("{GOSSIP_MAGIC} {:08x} {hostile}", eotora_durability::crc32(hostile.as_bytes()));
            match QueueGossip::decode(&line) {
                Err(e) => prop_assert!(
                    e.kind() == "non-finite" || e.kind() == "json",
                    "unexpected error class {:?}", e.kind()
                ),
                Ok(decoded) => prop_assert!(false, "overflow literal decoded as {:?}", decoded),
            }
        }
    }

    #[test]
    fn over_allocating_share_vectors_are_rejected(f in frame(), excess in 1.001f64..10.0) {
        // A hostile peer splicing a share vector that sums above 1 (CRC
        // recomputed honestly) must be rejected: the codec is the last
        // gate before a frame can hand the fleet more than its budget.
        let mut hostile_frame = f;
        hostile_frame.shares = vec![excess / 2.0, excess / 2.0];
        let e = hostile_frame.encode().expect_err("over-allocation must not encode");
        prop_assert_eq!(e.kind(), "share-sum");
        let payload = serde_json::to_string(&hostile_frame).expect("serializable");
        let line =
            format!("{GOSSIP_MAGIC} {:08x} {payload}", eotora_durability::crc32(payload.as_bytes()));
        let e = QueueGossip::decode(&line).expect_err("over-allocation must not decode");
        prop_assert_eq!(e.kind(), "share-sum");
    }
}
