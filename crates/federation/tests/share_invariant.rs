//! The fleet-safety invariant under asymmetric link loss: the budget
//! shares *applied* across regions sum to at most 1 at every instant.
//!
//! A protocol that adopts a recomputed share vector the moment its own
//! inbox looks fresh breaks this — per-direction loss lets one region
//! jump onto the new vector while another still holds an entry from an
//! older one, and entries mixed across vectors can sum above 1. These
//! tests pin the two-phase round protocol against exactly that:
//!
//! 1. the minimal asymmetric counterexample (N=2, one direction drops);
//! 2. a seeded N=3 lock-step fleet under sustained random per-direction
//!    loss, checked after every close;
//! 3. re-convergence: once the link is clean and queues settle, the
//!    applied shares climb back to a full sum of 1 (the safety margin is
//!    transient, not a permanent budget leak).

use eotora_federation::{FederationNode, NodeConfig, QueueGossip, RebalancePolicy};
use eotora_util::rng::Pcg32;

/// One lock-step sync boundary, mirroring the runner in `eotora-sim`:
/// every node samples its queue and broadcasts a frame stamped with its
/// currently advertised round, delivery is decided per direction, then
/// every node closes the epoch on what arrived.
///
/// `delivered(from, to)` decides each direction independently — the
/// asymmetry under test. Returns each node's applied share after close.
fn sync_boundary(
    nodes: &mut [FederationNode],
    epoch: u64,
    queues: &[f64],
    mut delivered: impl FnMut(usize, usize) -> bool,
) -> Vec<f64> {
    let frames: Vec<QueueGossip> = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| QueueGossip {
            region: i as u32,
            epoch,
            slot: epoch * 10,
            queue: queues[i],
            round: node.advertised_round(),
            shares: node.advertised_shares().to_vec(),
        })
        .collect();
    let inboxes: Vec<Vec<QueueGossip>> = (0..nodes.len())
        .map(|to| {
            (0..nodes.len())
                .filter(|&from| from != to && delivered(from, to))
                .map(|from| frames[from].clone())
                .collect()
        })
        .collect();
    nodes
        .iter_mut()
        .enumerate()
        .map(|(i, node)| node.close_epoch(epoch, queues[i], &inboxes[i]).share)
        .collect()
}

fn fleet(regions: u32, floor: f64) -> Vec<FederationNode> {
    (0..regions)
        .map(|r| {
            FederationNode::new(NodeConfig::new(
                r,
                regions,
                RebalancePolicy::QueueProportional { floor },
                42,
            ))
        })
        .collect()
}

fn assert_sum_at_most_one(shares: &[f64], epoch: u64) {
    let sum: f64 = shares.iter().sum();
    assert!(sum <= 1.0 + 1e-9, "applied shares sum to {sum} > 1 at epoch {epoch}: {shares:?}");
}

/// The reviewer-grade minimal counterexample. Epoch 1 is symmetric with
/// equal queues; at epoch 2 region 0's frame to region 1 is dropped
/// while region 1's frame arrives, and region 0's queue has tripled. A
/// freshness-only protocol has region 0 adopt 0.75 while region 1 still
/// holds 0.5 — 1.25 budgets. The round protocol must keep the sum ≤ 1.
#[test]
fn asymmetric_drop_never_overcommits_the_budget() {
    let mut nodes = fleet(2, 0.0);

    let applied = sync_boundary(&mut nodes, 1, &[1.0, 1.0], |_, _| true);
    assert_sum_at_most_one(&applied, 1);

    // Epoch 2: 0→1 dropped, 1→0 delivered, queues now (3, 1).
    let applied = sync_boundary(&mut nodes, 2, &[3.0, 1.0], |from, to| !(from == 0 && to == 1));
    assert_sum_at_most_one(&applied, 2);
    assert!(
        applied[0] <= 0.5 + 1e-12,
        "region 0 must not raise onto an unconfirmed vector (applied {})",
        applied[0]
    );

    // The raise is deferred, not lost: once the link is symmetric again
    // the staged round confirms and region 0's backlog earns its share.
    let mut last = applied;
    for epoch in 3..=6 {
        last = sync_boundary(&mut nodes, epoch, &[3.0, 1.0], |_, _| true);
        assert_sum_at_most_one(&last, epoch);
    }
    assert!(last[0] > 0.5, "the confirmed raise must eventually apply");
    let sum: f64 = last.iter().sum();
    assert!((sum - 1.0).abs() <= 1e-9, "a settled clean fleet reclaims the whole budget");
}

/// Sustained seeded chaos: every direction drops independently with
/// probability 0.35 for 120 epochs while queues keep shifting, and the
/// invariant is checked after every single close. Then the link goes
/// clean with steady queues and the fleet must re-converge to sum 1.
#[test]
fn random_asymmetric_loss_holds_the_invariant_every_epoch() {
    let mut nodes = fleet(3, 0.05);
    let mut rng = Pcg32::seed_stream(0xC0FFEE, 7);
    let mut rebalanced_epochs = 0u32;

    for epoch in 1..=120 {
        // Shifting load pattern so proposals keep happening mid-chaos.
        let queues: Vec<f64> = (0..3).map(|i| ((epoch * (2 * i + 3)) % 13) as f64 + 0.5).collect();
        let before: Vec<f64> = nodes.iter().map(|n| n.share()).collect();
        let applied = sync_boundary(&mut nodes, epoch, &queues, |_, _| rng.uniform() >= 0.35);
        assert_sum_at_most_one(&applied, epoch);
        if applied != before {
            rebalanced_epochs += 1;
        }
    }
    assert!(rebalanced_epochs > 0, "vacuous run: the chaos phase never exercised a rebalance");

    // Clean tail with steady queues: pending rounds confirm, the fleet
    // settles, and the full budget is back in force.
    let queues = [6.0, 1.0, 3.0];
    let mut last = Vec::new();
    for epoch in 121..=132 {
        last = sync_boundary(&mut nodes, epoch, &queues, |_, _| true);
        assert_sum_at_most_one(&last, epoch);
    }
    let sum: f64 = last.iter().sum();
    assert!(
        (sum - 1.0).abs() <= 1e-9,
        "settled fleet must reclaim the full budget, got sum {sum} from {last:?}"
    );
    assert!(last[0] > last[1], "the loaded region must end with the larger confirmed share");
}
