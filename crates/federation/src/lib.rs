//! Federated multi-region budget coordination for eotora controllers.
//!
//! The paper's DPP controller enforces one time-average energy budget
//! `C̄` through one virtual queue. This crate federates N independent
//! controllers — one per region — coupled through *only* that signal:
//! regions gossip their virtual-queue levels over an unreliable peer
//! link each sync epoch and re-apportion `C̄` into per-region shares.
//! The layers, bottom up:
//!
//! * [`gossip`] — the epoch-stamped, CRC-framed [`gossip::QueueGossip`]
//!   line codec; hostile input yields typed errors, never panics.
//! * [`bus`] — the pluggable [`bus::PeerBus`]: deterministic in-process
//!   inboxes or per-region Unix datagram sockets.
//! * [`fault`] — the seeded [`fault::LinkFault`] layer that makes the
//!   link hostile by construction: drops, duplication, delay,
//!   reordering, and scheduled full partitions, all checkpointable.
//! * [`budget`] — share apportionment: fixed equal split or
//!   queue-proportional with a floor.
//! * [`node`] — the per-region protocol state machine: freshness
//!   tracking in missed epochs, retry with exponential backoff and
//!   jitter, and the stale → partitioned → heal degradation ladder.
//!
//! The lock-step multi-region *runner* lives in `eotora-sim`
//! (`federation` module), where the per-region `StepDriver`s, durable
//! sessions, and CSV reporting already are; this crate is deliberately
//! runner-agnostic so the server daemon can grow a live peer link on the
//! same protocol.

#![deny(missing_docs)]

pub mod budget;
pub mod bus;
pub mod fault;
pub mod gossip;
pub mod node;

pub use budget::{shares, RebalancePolicy};
#[cfg(unix)]
pub use bus::UnixDatagramBus;
pub use bus::{BusError, InProcessBus, PeerBus};
pub use fault::{
    InFlightFrame, LinkFault, LinkFaultConfig, LinkFaultState, PartitionWindow, SendOutcome,
};
pub use gossip::{GossipError, QueueGossip, GOSSIP_MAGIC, SHARE_SUM_TOLERANCE};
pub use node::{EpochClose, FederationNode, NodeConfig, NodeState, PeerView, ProposedRound};
