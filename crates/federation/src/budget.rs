//! Budget-share apportionment across federated regions.
//!
//! The fleet's time-average energy budget `C̄` is split into per-region
//! shares summing to 1; region `i` then runs its own DPP controller
//! against `share_i · C̄`. Because each region's virtual queue
//! `Q_i(t+1) = max{Q_i(t) + C_i(t) − share_i·C̄, 0}` absorbs its own
//! excess, applied shares summing to at most 1 keep the *fleet*
//! time-average constraint intact — which is what lets a partitioned
//! region safely freeze on its applied share, and why the node layer
//! applies a policy's output through the two-phase round protocol
//! (see `node`) instead of adopting it the moment it is computed.
//!
//! [`RebalancePolicy::QueueProportional`] gives overspending regions
//! (large `Q_i`) more budget so their backlog drains, with a floor so no
//! region is ever starved to zero.

use serde::{Deserialize, Serialize};

/// How budget shares are recomputed each sync epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RebalancePolicy {
    /// Equal static shares (`1/N` each) — never rebalances. A clean-link
    /// federation under this policy is decision-identical to N
    /// independent fixed-budget controllers.
    Fixed,
    /// Queue-proportional shares with a per-region floor:
    /// `share_i = floor + (1 − N·floor) · Q_i / ΣQ`. The floor must lie
    /// in `[0, 1/N]`; when every queue is empty the split is equal.
    QueueProportional {
        /// Minimum share any region keeps regardless of its queue.
        floor: f64,
    },
}

/// Computes the share vector for the given queue levels. Always returns
/// `queues.len()` non-negative entries summing to 1 (within float
/// rounding).
///
/// # Panics
///
/// Panics if `queues` is empty, a queue level is negative or non-finite,
/// or a `QueueProportional` floor is outside `[0, 1/N]`.
pub fn shares(queues: &[f64], policy: &RebalancePolicy) -> Vec<f64> {
    assert!(!queues.is_empty(), "shares of an empty federation");
    let n = queues.len() as f64;
    for &q in queues {
        assert!(q.is_finite() && q >= 0.0, "queue level {q} out of domain");
    }
    match policy {
        RebalancePolicy::Fixed => vec![1.0 / n; queues.len()],
        RebalancePolicy::QueueProportional { floor } => {
            assert!(
                (0.0..=1.0 / n).contains(floor),
                "floor {floor} outside [0, 1/{}]",
                queues.len()
            );
            let total: f64 = queues.iter().sum();
            let spread = 1.0 - n * floor;
            if total <= 0.0 {
                return vec![1.0 / n; queues.len()];
            }
            queues.iter().map(|&q| floor + spread * (q / total)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(s: &[f64]) {
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn fixed_is_equal_split() {
        let s = shares(&[5.0, 0.0, 100.0], &RebalancePolicy::Fixed);
        assert_eq!(s, vec![1.0 / 3.0; 3]);
        assert_sums_to_one(&s);
    }

    #[test]
    fn proportional_rewards_backlog_and_respects_floor() {
        let policy = RebalancePolicy::QueueProportional { floor: 0.1 };
        let s = shares(&[0.0, 1.0, 3.0], &policy);
        assert_sums_to_one(&s);
        // The empty-queue region keeps exactly the floor.
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!(s[2] > s[1], "bigger backlog must earn a bigger share");
        // All queues empty: equal split.
        let even = shares(&[0.0, 0.0, 0.0], &policy);
        assert_eq!(even, vec![1.0 / 3.0; 3]);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn floor_above_equal_share_panics() {
        shares(&[1.0, 1.0], &RebalancePolicy::QueueProportional { floor: 0.6 });
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn non_finite_queue_panics() {
        shares(&[f64::NAN], &RebalancePolicy::Fixed);
    }
}
