//! The epoch-stamped `QueueGossip` frame and its line codec.
//!
//! Federated regions coordinate through exactly two signals: each peer's
//! virtual-queue backlog `Q(t)`, and the highest share *round* the peer
//! knows (with that round's full share vector — see `node` for the
//! two-phase protocol the rounds drive). A gossip frame carries both,
//! stamped with the sender's region index, the sync epoch it was sampled
//! at, and the slot — enough for the receiver to deduplicate copies,
//! discard stale reorderings, and measure staleness in missed epochs.
//!
//! The wire format is one line per frame:
//!
//! ```text
//! FED2 <crc32-hex8> <json-payload>
//! ```
//!
//! The CRC-32 (IEEE, shared with the durability journal) covers the JSON
//! payload bytes, so a frame truncated or mangled in transit is rejected
//! with a typed [`GossipError`] instead of poisoning a peer view. The
//! JSON payload round-trips every finite `f64` bit-exactly
//! (`serde_json`'s `float_roundtrip`); non-finite or negative queue
//! levels, non-finite or negative share entries, and share vectors
//! summing above 1 are rejected on both encode and decode — a frame the
//! codec accepts can never hand the fleet more than its whole budget.
//! Nothing in this module panics on hostile input — pinned by
//! `tests/gossip_props.rs`.

use eotora_durability::crc32;
use serde::{Deserialize, Serialize};

/// Magic token opening every gossip line; bump with the wire format.
pub const GOSSIP_MAGIC: &str = "FED2";

/// Slack allowed on a share vector's sum, absorbing float rounding in an
/// honestly computed vector while still rejecting real over-allocation.
pub const SHARE_SUM_TOLERANCE: f64 = 1e-9;

/// One region's virtual-queue level and round view, as gossiped to its
/// peers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueGossip {
    /// Sender's region index.
    pub region: u32,
    /// Sync epoch the level was sampled at (monotonic per sender).
    pub epoch: u64,
    /// Slot the level was sampled after (diagnostic; epoch decides
    /// freshness).
    pub slot: u64,
    /// Virtual-queue backlog `Q(t)` — finite and non-negative.
    pub queue: f64,
    /// Highest share round the sender knows.
    pub round: u64,
    /// That round's full share vector — finite, non-negative entries
    /// summing to at most 1 (+[`SHARE_SUM_TOLERANCE`]).
    pub shares: Vec<f64>,
}

/// Typed decode/encode failure of a gossip frame. Mirrors the server
/// codec's contract: hostile input yields an error value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipError {
    /// The line does not open with [`GOSSIP_MAGIC`].
    Magic,
    /// The line ends before all three fields are present.
    Truncated,
    /// The CRC field is not 8 hex digits.
    MalformedCrc,
    /// The payload's CRC-32 does not match the stamped value.
    Crc {
        /// CRC stamped on the frame.
        expected: u32,
        /// CRC computed over the received payload.
        found: u32,
    },
    /// The payload is not a `QueueGossip` JSON object.
    Json {
        /// Parser message.
        reason: String,
    },
    /// A numeric field is NaN or infinite.
    NonFinite {
        /// Offending field name.
        field: &'static str,
    },
    /// The queue level is negative.
    Negative {
        /// Offending field name.
        field: &'static str,
    },
    /// The share vector sums above 1: accepting it could hand the fleet
    /// more than its whole budget.
    ShareSum,
}

impl GossipError {
    /// Stable machine-readable error class.
    pub fn kind(&self) -> &'static str {
        match self {
            GossipError::Magic => "magic",
            GossipError::Truncated => "truncated",
            GossipError::MalformedCrc => "malformed-crc",
            GossipError::Crc { .. } => "crc",
            GossipError::Json { .. } => "json",
            GossipError::NonFinite { .. } => "non-finite",
            GossipError::Negative { .. } => "negative",
            GossipError::ShareSum => "share-sum",
        }
    }
}

impl std::fmt::Display for GossipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GossipError::Magic => write!(f, "gossip frame does not start with {GOSSIP_MAGIC}"),
            GossipError::Truncated => write!(f, "gossip frame truncated"),
            GossipError::MalformedCrc => write!(f, "gossip CRC field is not 8 hex digits"),
            GossipError::Crc { expected, found } => {
                write!(f, "gossip CRC mismatch: frame says {expected:08x}, payload is {found:08x}")
            }
            GossipError::Json { reason } => write!(f, "gossip payload is not valid JSON: {reason}"),
            GossipError::NonFinite { field } => {
                write!(f, "gossip field `{field}` is not finite")
            }
            GossipError::Negative { field } => write!(f, "gossip field `{field}` is negative"),
            GossipError::ShareSum => write!(f, "gossip share vector sums above 1"),
        }
    }
}

impl std::error::Error for GossipError {}

fn validate(frame: &QueueGossip) -> Result<(), GossipError> {
    if !frame.queue.is_finite() {
        return Err(GossipError::NonFinite { field: "queue" });
    }
    if frame.queue < 0.0 {
        return Err(GossipError::Negative { field: "queue" });
    }
    for &share in &frame.shares {
        if !share.is_finite() {
            return Err(GossipError::NonFinite { field: "shares" });
        }
        if share < 0.0 {
            return Err(GossipError::Negative { field: "shares" });
        }
    }
    if frame.shares.iter().sum::<f64>() > 1.0 + SHARE_SUM_TOLERANCE {
        return Err(GossipError::ShareSum);
    }
    Ok(())
}

impl QueueGossip {
    /// Encodes the frame as one `FED2 <crc> <json>` line (no trailing
    /// newline). Rejects non-finite or negative queue levels so a bad
    /// frame can never be put on the wire in the first place.
    pub fn encode(&self) -> Result<String, GossipError> {
        validate(self)?;
        let payload =
            serde_json::to_string(self).map_err(|e| GossipError::Json { reason: e.to_string() })?;
        Ok(format!("{GOSSIP_MAGIC} {:08x} {payload}", crc32(payload.as_bytes())))
    }

    /// Decodes one line. Truncation, garbage, CRC damage, and out-of-domain
    /// queue levels all yield a typed [`GossipError`]; a decoded frame is
    /// bit-identical to what [`QueueGossip::encode`] serialized.
    pub fn decode(line: &str) -> Result<QueueGossip, GossipError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let rest = match line.strip_prefix(GOSSIP_MAGIC) {
            Some(rest) => rest,
            None => {
                return Err(if line.is_empty() {
                    GossipError::Truncated
                } else {
                    GossipError::Magic
                })
            }
        };
        let rest = rest.strip_prefix(' ').ok_or(GossipError::Truncated)?;
        let (crc_text, payload) = rest.split_once(' ').ok_or(GossipError::Truncated)?;
        if crc_text.len() != 8 || !crc_text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(GossipError::MalformedCrc);
        }
        let expected = u32::from_str_radix(crc_text, 16).map_err(|_| GossipError::MalformedCrc)?;
        let found = crc32(payload.as_bytes());
        if expected != found {
            return Err(GossipError::Crc { expected, found });
        }
        let frame: QueueGossip = serde_json::from_str(payload)
            .map_err(|e| GossipError::Json { reason: e.to_string() })?;
        validate(&frame)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> QueueGossip {
        QueueGossip {
            region: 2,
            epoch: 7,
            slot: 69,
            queue: 1.25e-3,
            round: 3,
            shares: vec![0.25, 0.5, 0.25],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let f = frame();
        let decoded = QueueGossip::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(decoded.queue.to_bits(), f.queue.to_bits());
        assert_eq!((decoded.region, decoded.epoch, decoded.slot), (f.region, f.epoch, f.slot));
        assert_eq!(decoded.round, f.round);
        let share_bits: Vec<u64> = decoded.shares.iter().map(|s| s.to_bits()).collect();
        let expect: Vec<u64> = f.shares.iter().map(|s| s.to_bits()).collect();
        assert_eq!(share_bits, expect);
    }

    #[test]
    fn non_finite_and_negative_levels_never_encode() {
        for q in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = QueueGossip { queue: q, ..frame() }.encode().unwrap_err();
            assert_eq!(e.kind(), "non-finite");
        }
        let e = QueueGossip { queue: -1.0, ..frame() }.encode().unwrap_err();
        assert_eq!(e.kind(), "negative");
    }

    #[test]
    fn out_of_domain_share_vectors_never_encode_or_decode() {
        let bad = |shares: Vec<f64>| QueueGossip { shares, ..frame() };
        assert_eq!(bad(vec![0.5, f64::NAN]).encode().unwrap_err().kind(), "non-finite");
        assert_eq!(bad(vec![0.5, -0.1]).encode().unwrap_err().kind(), "negative");
        assert_eq!(bad(vec![0.7, 0.7]).encode().unwrap_err().kind(), "share-sum");
        // Decode-side: a hostile peer recomputing the CRC over an
        // over-allocating vector is still rejected.
        let payload =
            r#"{"region":1,"epoch":2,"slot":20,"queue":1.0,"round":1,"shares":[0.8,0.8]}"#;
        let line = format!("{GOSSIP_MAGIC} {:08x} {payload}", crc32(payload.as_bytes()));
        assert_eq!(QueueGossip::decode(&line).unwrap_err().kind(), "share-sum");
    }

    #[test]
    fn crc_damage_is_detected() {
        let line = frame().encode().unwrap();
        // Flip one payload character without touching the CRC field.
        let mangled = line.replacen("\"epoch\":7", "\"epoch\":8", 1);
        assert_ne!(line, mangled);
        assert_eq!(QueueGossip::decode(&mangled).unwrap_err().kind(), "crc");
    }

    #[test]
    fn truncations_are_typed_errors() {
        let line = frame().encode().unwrap();
        for cut in 0..line.len() {
            match QueueGossip::decode(&line[..cut]) {
                Err(_) => {}
                Ok(f) => panic!("prefix of length {cut} decoded as {f:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        // FED1 frames (the pre-round wire format) are a different format.
        assert_eq!(QueueGossip::decode("FED1 00000000 {}").unwrap_err().kind(), "magic");
        assert_eq!(QueueGossip::decode("").unwrap_err().kind(), "truncated");
    }
}
