//! The per-region federation protocol state machine.
//!
//! A [`FederationNode`] owns one region's view of the federation: the
//! last accepted gossip (queue level + epoch) per peer, the retry/backoff
//! schedule toward stale peers, and the region's current budget share.
//! It is driven twice per sync boundary by the lock-step runner:
//!
//! 1. **Send time** — [`FederationNode::retry_peers`] names the peers
//!    that deserve an extra retransmission this epoch (exponential
//!    backoff + deterministic jitter, so long partitions are not
//!    flooded); the runner sends the regular broadcast to every peer
//!    plus those extras. Every frame also advertises the highest share
//!    *round* the sender knows, with that round's full share vector.
//! 2. **Close time** — [`FederationNode::close_epoch`] folds the
//!    collected frames into the peer views (deduplicating by epoch, so
//!    duplicated or reordered copies are harmless), measures staleness
//!    in missed epochs, walks the degradation ladder, and advances the
//!    two-phase share protocol below.
//!
//! # Why shares are two-phase
//!
//! The fleet-safety invariant is that the budget shares *applied* across
//! regions sum to at most 1 **at every instant**, under arbitrary —
//! including asymmetric — link failure. A node that recomputed and
//! adopted a new share vector the moment its own inbox looked fresh
//! would break that: with per-direction loss, region A can hear everyone
//! and jump onto the epoch-e vector while region B, which missed A's
//! frame, still holds its entry from an older vector — and entries mixed
//! across vectors can sum above 1. So share vectors are *rounds*:
//!
//! * **Propose** — a node that is fresh (heard every peer this epoch)
//!   and has no round in flight computes the policy's share vector from
//!   the epoch's queue levels and stages it as round `r+1`. All nodes
//!   fresh at the same epoch see identical data and stage the identical
//!   round, so a round number names one vector fleet-wide.
//! * **Spread** — every subsequent frame advertises the staged round and
//!   its vector, so peers learn it (and record which round each peer has
//!   advertised knowing).
//! * **Lower immediately, raise on confirmation** — while a round is
//!   pending, a node applies the entrywise *minimum* of its confirmed
//!   vector and the pending one. It promotes the pending round (and may
//!   finally raise its share) only once every peer has advertised
//!   knowing that round. Hearing a round `r+2` exists is transitive
//!   evidence for `r+1`: its proposer must have seen the whole fleet
//!   acknowledge `r+1` first.
//!
//! Whoever has promoted the highest round `r*` had evidence the whole
//! fleet knows `r*`; every other node therefore has `r*`'s vector inside
//! its min, so each region applies at most its `r*` entry — and the
//! applied shares sum to at most 1 no matter how asymmetrically the link
//! fails (pinned by `tests/share_invariant.rs`). The price is that
//! raises lag a confirmation round-trip; the spare budget is simply left
//! unspent, which only ever errs on the safe side of the fleet
//! constraint.
//!
//! The degradation ladder:
//!
//! * **fresh** — every peer's gossip for this epoch arrived (missed ≤
//!   `stale_after`): the protocol may propose the next round.
//! * **stale** — some peer missed: never propose from a stale view; hold
//!   what is already applied (confirmed vector, min'd with any pending
//!   round). Applied shares keep summing ≤ 1, so the fleet constraint
//!   stays bounded; nobody ever reaches for the global pool.
//! * **partitioned** — a peer's missed count crossed `partition_after`:
//!   same budget behavior as stale, but counted once per transition so
//!   operators can tell a blip from a split.
//! * **heal** — a partitioned peer turns fresh again: the next fresh
//!   close proposes a reconciliation round from the post-split queues,
//!   and the backlog built during the split earns share once the fleet
//!   confirms it.
//!
//! All state serializes into [`NodeState`] for the federation
//! checkpoint; resumed nodes replay the exact same protocol decisions.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::budget::{shares, RebalancePolicy};
use crate::gossip::QueueGossip;

/// Static protocol parameters of one region's node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// This region's index.
    pub region: u32,
    /// Total regions in the federation.
    pub regions: u32,
    /// Missed epochs tolerated before a peer counts as stale.
    pub stale_after: u64,
    /// Missed epochs before a stale peer is declared partitioned.
    pub partition_after: u64,
    /// Initial retry backoff, in epochs.
    pub backoff_base: u64,
    /// Backoff ceiling, in epochs.
    pub backoff_max: u64,
    /// How shares are recomputed on a fresh epoch.
    pub policy: RebalancePolicy,
    /// Seed of the per-node retry-jitter RNG stream.
    pub jitter_seed: u64,
}

impl NodeConfig {
    /// Protocol defaults for `region` of `regions`: no staleness grace,
    /// partition after 2 missed epochs, backoff 1→8 epochs.
    pub fn new(region: u32, regions: u32, policy: RebalancePolicy, jitter_seed: u64) -> Self {
        Self {
            region,
            regions,
            stale_after: 0,
            partition_after: 2,
            backoff_base: 1,
            backoff_max: 8,
            policy,
            jitter_seed,
        }
    }
}

/// One peer as this node last saw it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerView {
    /// Last accepted queue level.
    pub queue: f64,
    /// Epoch of the last accepted gossip (0 = nothing seen yet; real
    /// epochs start at 1).
    pub epoch: u64,
    /// Highest share round this peer has advertised knowing.
    pub known_round: u64,
    /// Whether the peer is currently past the partition threshold.
    pub partitioned: bool,
    /// Next epoch at which a retry toward this peer may fire.
    pub next_retry: u64,
    /// Current retry backoff, in epochs.
    pub backoff: u64,
}

/// A share vector staged at a fresh epoch, not yet fleet-confirmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProposedRound {
    /// The round number (always the confirmed round + 1).
    pub round: u64,
    /// The proposed share vector, one entry per region.
    pub shares: Vec<f64>,
}

/// The serializable protocol state of one node (federation checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Highest promoted (fleet-confirmed) share round.
    pub round: u64,
    /// The confirmed round's share vector, one entry per region.
    pub shares: Vec<f64>,
    /// The staged next round, if one is in flight.
    pub pending: Option<ProposedRound>,
    /// Whether the last close held back due to staleness.
    pub degraded: bool,
    /// Per-region views, indexed by region (the self entry mirrors the
    /// node's own last sample).
    pub peers: Vec<PeerView>,
    /// Retry-jitter RNG position.
    pub jitter_rng: Pcg32,
}

/// What closing one epoch decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochClose {
    /// The budget share in force after this epoch.
    pub share: f64,
    /// Whether the applied share changed at this close.
    pub rebalanced: bool,
    /// Whether a pending round was promoted (fleet-confirmed) this close.
    pub promoted: bool,
    /// Whether at least one peer was stale at close.
    pub stale: bool,
    /// Peers that crossed the partition threshold this epoch.
    pub new_partitions: u64,
    /// Whether a partitioned peer healed this epoch (reconciliation).
    pub healed: bool,
}

/// One region's live protocol node: config plus serializable state.
#[derive(Debug, Clone)]
pub struct FederationNode {
    config: NodeConfig,
    state: NodeState,
}

impl FederationNode {
    /// A fresh node at the equal split (round 0, known fleet-wide by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if the config names zero regions or an out-of-range index.
    pub fn new(config: NodeConfig) -> Self {
        assert!(config.regions > 0, "a federation needs at least one region");
        assert!(config.region < config.regions, "region index out of range");
        let regions = config.regions as usize;
        let equal = 1.0 / config.regions as f64;
        let peers = (0..config.regions)
            .map(|_| PeerView {
                queue: 0.0,
                epoch: 0,
                known_round: 0,
                partitioned: false,
                next_retry: 0,
                backoff: config.backoff_base.max(1),
            })
            .collect();
        let jitter_rng = Pcg32::seed_stream(config.jitter_seed, 0xFED0 + config.region as u64);
        Self {
            config,
            state: NodeState {
                round: 0,
                shares: vec![equal; regions],
                pending: None,
                degraded: false,
                peers,
                jitter_rng,
            },
        }
    }

    /// The static config.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The serializable state (checkpointing).
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// Restores state from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the state's peer or share counts disagree with the
    /// config.
    pub fn restore(&mut self, state: NodeState) {
        let regions = self.config.regions as usize;
        assert_eq!(state.peers.len(), regions, "peer count mismatch");
        assert_eq!(state.shares.len(), regions, "share vector length mismatch");
        if let Some(pending) = &state.pending {
            assert_eq!(pending.shares.len(), regions, "pending share vector length mismatch");
            assert_eq!(pending.round, state.round + 1, "pending round out of sequence");
        }
        self.state = state;
    }

    /// The budget share currently in force: the confirmed entry, capped
    /// by any pending round's entry (raises wait for fleet confirmation,
    /// cuts apply at once).
    pub fn share(&self) -> f64 {
        let own = self.config.region as usize;
        let confirmed = self.state.shares[own];
        match &self.state.pending {
            Some(pending) => confirmed.min(pending.shares[own]),
            None => confirmed,
        }
    }

    /// The round number every outgoing frame must advertise: the staged
    /// round if one is in flight, the confirmed round otherwise.
    pub fn advertised_round(&self) -> u64 {
        match &self.state.pending {
            Some(pending) => pending.round,
            None => self.state.round,
        }
    }

    /// The share vector of [`FederationNode::advertised_round`].
    pub fn advertised_shares(&self) -> &[f64] {
        match &self.state.pending {
            Some(pending) => &pending.shares,
            None => &self.state.shares,
        }
    }

    /// Peers owed an extra retransmission at the boundary opening `epoch`
    /// (they are behind the freshest possible view, and their backoff
    /// window elapsed). Schedules the next retry with exponential backoff
    /// plus deterministic jitter. Call exactly once per boundary, before
    /// sending.
    pub fn retry_peers(&mut self, epoch: u64) -> Vec<u32> {
        let mut extras = Vec::new();
        for region in 0..self.config.regions {
            if region == self.config.region {
                continue;
            }
            let stale_after = self.config.stale_after;
            let behind = {
                let peer = &self.state.peers[region as usize];
                // At send time the freshest a peer can be is last epoch.
                epoch.saturating_sub(1).saturating_sub(peer.epoch) > stale_after
            };
            if !behind {
                let peer = &mut self.state.peers[region as usize];
                peer.backoff = self.config.backoff_base.max(1);
                peer.next_retry = epoch;
                continue;
            }
            if epoch >= self.state.peers[region as usize].next_retry {
                extras.push(region);
                let backoff = self.state.peers[region as usize].backoff;
                let jitter = self.state.jitter_rng.below(backoff.max(1) as usize) as u64;
                let peer = &mut self.state.peers[region as usize];
                peer.next_retry = epoch + backoff + jitter;
                peer.backoff = (backoff * 2).min(self.config.backoff_max.max(1));
            }
        }
        extras
    }

    /// Folds the frames collected at the boundary closing `epoch` into
    /// the peer views, walks the degradation ladder, and advances the
    /// two-phase share protocol. `own_queue` is this region's backlog
    /// sampled at the same boundary.
    pub fn close_epoch(
        &mut self,
        epoch: u64,
        own_queue: f64,
        frames: &[QueueGossip],
    ) -> EpochClose {
        let regions = self.config.regions as usize;
        let prev_applied = self.share();
        let own_region = self.config.region;
        let total_regions = self.config.regions;
        let plausible = move |frame: &QueueGossip| {
            frame.region != own_region
                && frame.region < total_regions
                && frame.shares.len() == regions
        };

        // Learn advertised rounds first, in ascending order, so a round
        // and its successor arriving in one batch are both absorbed and
        // the plausibility bound below is sharp.
        let mut advertised: Vec<(u64, &[f64])> = frames
            .iter()
            .filter(|f| plausible(f))
            .map(|f| (f.round, f.shares.as_slice()))
            .collect();
        advertised.sort_by_key(|(round, _)| *round);
        let mut promoted = false;
        for (round, shares) in advertised {
            promoted |= self.learn_round(round, shares);
        }

        // Fold queue samples: accept the freshest copy per peer, so
        // duplicates and reordered stale copies lose by epoch comparison.
        // A frame advertising a round past everything learnable is forged
        // or corrupt beyond what the CRC caught — skipped whole, so it
        // can neither poison a queue view nor fake confirmation evidence.
        let bound = self.advertised_round();
        for frame in frames {
            if !plausible(frame) || frame.round > bound {
                continue;
            }
            let peer = &mut self.state.peers[frame.region as usize];
            if frame.epoch > peer.epoch {
                peer.epoch = frame.epoch;
                peer.queue = frame.queue;
            }
            peer.known_round = peer.known_round.max(frame.round);
        }

        let own = &mut self.state.peers[self.config.region as usize];
        own.epoch = epoch;
        own.queue = own_queue;

        let mut stale = false;
        let mut new_partitions = 0u64;
        let mut healed = false;
        for region in 0..self.config.regions {
            if region == self.config.region {
                continue;
            }
            let peer = &mut self.state.peers[region as usize];
            let missed = epoch.saturating_sub(peer.epoch);
            if missed > self.config.stale_after {
                stale = true;
                if missed > self.config.partition_after && !peer.partitioned {
                    peer.partitioned = true;
                    new_partitions += 1;
                }
            } else if peer.partitioned {
                peer.partitioned = false;
                healed = true;
            }
        }

        // Phase 2: promote the pending round once every peer has
        // advertised knowing it — the evidence that makes raising safe.
        if let Some(pending) = &self.state.pending {
            let round = pending.round;
            let confirmed = (0..regions).all(|r| {
                r == self.config.region as usize || self.state.peers[r].known_round >= round
            });
            if confirmed {
                let pending = self.state.pending.take().expect("pending checked above");
                self.promote(pending);
                promoted = true;
            }
        }

        // Phase 1: propose the next round — only from a fully fresh view
        // (a stale view could hand two sides of a split overlapping
        // slices of the pool) and only with nothing already in flight.
        if !stale && self.state.pending.is_none() {
            let queues: Vec<f64> = self.state.peers.iter().map(|p| p.queue).collect();
            let next = shares(&queues, &self.config.policy);
            if next != self.state.shares {
                self.state.pending =
                    Some(ProposedRound { round: self.state.round + 1, shares: next });
            }
        }

        // The self entry mirrors what the node's own frames advertise.
        self.state.peers[self.config.region as usize].known_round = self.advertised_round();
        self.state.degraded = stale;

        let share = self.share();
        EpochClose {
            share,
            rebalanced: share != prev_applied,
            promoted,
            stale,
            new_partitions,
            healed,
        }
    }

    /// Absorbs an advertised round. Honest peers only ever advertise
    /// rounds up to one past this node's view (a round can only be
    /// proposed after the whole fleet acknowledged its predecessor), so
    /// anything further ahead is hostile and ignored. Returns whether a
    /// pending round got transitively promoted.
    fn learn_round(&mut self, round: u64, shares: &[f64]) -> bool {
        let known = self.advertised_round();
        if round != known + 1 {
            return false;
        }
        let mut promoted = false;
        if let Some(pending) = self.state.pending.take() {
            // Round `pending.round + 1` existing proves its proposer saw
            // the whole fleet acknowledge `pending.round` — transitive
            // confirmation.
            self.promote(pending);
            promoted = true;
        }
        self.state.pending = Some(ProposedRound { round, shares: shares.to_vec() });
        promoted
    }

    fn promote(&mut self, pending: ProposedRound) {
        self.state.round = pending.round;
        self.state.shares = pending.shares;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame as an honest peer would send it: queue sample plus the
    /// advertised round and its vector.
    fn gossip(region: u32, epoch: u64, queue: f64, round: u64, shares: &[f64]) -> QueueGossip {
        QueueGossip { region, epoch, slot: epoch * 10, queue, round, shares: shares.to_vec() }
    }

    fn node(region: u32, policy: RebalancePolicy) -> FederationNode {
        FederationNode::new(NodeConfig::new(region, 3, policy, 77))
    }

    const EQUAL3: [f64; 3] = [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0];

    #[test]
    fn fresh_epoch_proposes_but_never_raises_before_confirmation() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.1 });
        let close =
            n.close_epoch(1, 2.0, &[gossip(1, 1, 1.0, 0, &EQUAL3), gossip(2, 1, 1.0, 0, &EQUAL3)]);
        assert!(!close.stale);
        // The loaded region's raise waits for fleet confirmation: the
        // applied share stays at the confirmed equal split.
        assert_eq!(close.share, 1.0 / 3.0);
        assert!(!close.rebalanced);
        let pending = n.state().pending.clone().expect("fresh epoch stages a round");
        assert_eq!(pending.round, 1);
        assert!(pending.shares[0] > 1.0 / 3.0, "the loaded region must be proposed more share");
        // Both peers advertise round 1 → promoted, raise lands.
        let v = pending.shares.clone();
        let close = n.close_epoch(2, 2.0, &[gossip(1, 2, 1.0, 1, &v), gossip(2, 2, 1.0, 1, &v)]);
        assert!(close.promoted);
        assert!(close.share > 1.0 / 3.0, "confirmed raise must apply");
    }

    #[test]
    fn cuts_apply_immediately_while_raises_wait() {
        let mut n = node(1, RebalancePolicy::QueueProportional { floor: 0.0 });
        // Region 0 is loaded, this region (1) is idle: the proposal cuts
        // region 1's share, and the cut binds at once via the min.
        let close =
            n.close_epoch(1, 0.0, &[gossip(0, 1, 3.0, 0, &EQUAL3), gossip(2, 1, 1.0, 0, &EQUAL3)]);
        let pending = n.state().pending.clone().expect("staged");
        assert!(pending.shares[1] < 1.0 / 3.0);
        assert_eq!(close.share, pending.shares[1], "cuts must not wait for confirmation");
        assert!(close.rebalanced);
    }

    #[test]
    fn fixed_policy_never_proposes_on_a_clean_link() {
        let mut n = node(1, RebalancePolicy::Fixed);
        for epoch in 1..=5 {
            let close = n.close_epoch(
                epoch,
                1.0,
                &[gossip(0, epoch, 5.0, 0, &EQUAL3), gossip(2, epoch, 0.1, 0, &EQUAL3)],
            );
            assert!(!close.rebalanced && !close.promoted);
            assert_eq!(close.share, 1.0 / 3.0);
            assert!(n.state().pending.is_none());
        }
    }

    #[test]
    fn duplicates_and_reordered_copies_are_deduplicated() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.0 });
        // Fresh copy, then a duplicate, then a stale reordered copy.
        let frames = [
            gossip(1, 3, 4.0, 0, &EQUAL3),
            gossip(1, 3, 4.0, 0, &EQUAL3),
            gossip(1, 1, 999.0, 0, &EQUAL3),
            gossip(2, 3, 4.0, 0, &EQUAL3),
        ];
        let close = n.close_epoch(3, 4.0, &frames);
        assert!(!close.stale);
        assert!((close.share - 1.0 / 3.0).abs() < 1e-12, "stale 999.0 must not win");
        assert!(n.state().pending.is_none(), "equal queues propose nothing");
    }

    #[test]
    fn staleness_holds_the_applied_share_and_heals_with_reconciliation() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.1 });
        let held = n
            .close_epoch(1, 3.0, &[gossip(1, 1, 1.0, 0, &EQUAL3), gossip(2, 1, 1.0, 0, &EQUAL3)])
            .share;
        let staged = n.state().pending.clone().expect("fresh epoch stages a round");
        // Peer 2 goes dark: stale epochs hold the applied share even
        // though our own queue keeps growing, and nothing new is staged.
        for epoch in 2..=4 {
            let close = n.close_epoch(epoch, 50.0, &[gossip(1, epoch, 1.0, 1, &staged.shares)]);
            assert!(close.stale && !close.rebalanced);
            assert_eq!(close.share, held);
        }
        assert_eq!(
            n.state().pending.as_ref().map(|p| p.round),
            Some(1),
            "a stale node must not stage new rounds"
        );
        // Partition declared after `partition_after` missed epochs.
        assert!(n.state().peers[2].partitioned);
        // Heal: peer 2 returns, advertising the staged round → promoted,
        // and the reconciliation proposal is staged at once.
        let close = n.close_epoch(
            5,
            50.0,
            &[gossip(1, 5, 1.0, 1, &staged.shares), gossip(2, 5, 1.0, 1, &staged.shares)],
        );
        assert!(close.healed && close.promoted && !close.stale);
        let reconcile = n.state().pending.clone().expect("heal stages a reconciliation round");
        assert_eq!(reconcile.round, 2);
        assert!(
            reconcile.shares[0] > held,
            "the backlog built during the split earns proposed share"
        );
    }

    #[test]
    fn partition_is_counted_once_per_transition() {
        let mut n = node(0, RebalancePolicy::Fixed);
        let mut transitions = 0;
        for epoch in 1..=8 {
            transitions +=
                n.close_epoch(epoch, 1.0, &[gossip(1, epoch, 1.0, 0, &EQUAL3)]).new_partitions;
        }
        assert_eq!(transitions, 1, "one dark peer is one partition, not six");
    }

    #[test]
    fn hostile_rounds_far_ahead_are_ignored() {
        let mut n = node(0, RebalancePolicy::Fixed);
        // An honest peer can only ever be one round ahead, so a frame
        // advertising round 7 is forged: it must neither stage a round,
        // nor fake confirmation evidence, nor update the peer's view.
        let bogus = [0.9, 0.05, 0.05];
        let close =
            n.close_epoch(1, 1.0, &[gossip(1, 1, 1.0, 7, &bogus), gossip(2, 1, 1.0, 0, &EQUAL3)]);
        assert_eq!(close.share, 1.0 / 3.0);
        assert!(close.stale, "a forged frame must not count as heard");
        assert_eq!(n.state().round, 0);
        assert!(n.state().pending.is_none(), "an unreachable round must not be staged");
        assert_eq!(n.state().peers[1].known_round, 0);
        assert_eq!(n.state().peers[1].queue, 0.0);
        // A wrong-length share vector also skips the whole frame.
        let close = n.close_epoch(2, 1.0, &[gossip(1, 2, 42.0, 1, &[0.5, 0.5])]);
        assert!(close.stale, "a malformed frame must not count as heard");
        assert_eq!(n.state().peers[1].queue, 0.0, "malformed frames must not update views");
    }

    #[test]
    fn retries_back_off_exponentially_toward_dark_peers() {
        let mut n = node(0, RebalancePolicy::Fixed);
        // Epoch 1: nobody can be behind yet (freshest possible view is 0).
        assert!(n.retry_peers(1).is_empty());
        n.close_epoch(1, 1.0, &[]);
        // Both peers are now behind; retries fire, then back off.
        let mut fired: Vec<u64> = Vec::new();
        for epoch in 2..=20 {
            if n.retry_peers(epoch).contains(&1) {
                fired.push(epoch);
            }
            n.close_epoch(epoch, 1.0, &[]);
        }
        assert!(!fired.is_empty());
        let gaps: Vec<u64> = fired.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.last().copied().unwrap_or(1) >= gaps.first().copied().unwrap_or(1));
        // A returning peer resets its backoff.
        n.close_epoch(21, 1.0, &[gossip(1, 21, 1.0, 0, &EQUAL3), gossip(2, 21, 1.0, 0, &EQUAL3)]);
        assert!(n.retry_peers(22).is_empty());
        assert_eq!(n.state().peers[1].backoff, 1);
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut n = node(2, RebalancePolicy::QueueProportional { floor: 0.05 });
        n.retry_peers(1);
        n.close_epoch(1, 2.0, &[gossip(0, 1, 1.0, 0, &EQUAL3)]);
        let json = serde_json::to_string(n.state()).unwrap();
        let restored: NodeState = serde_json::from_str(&json).unwrap();
        assert_eq!(&restored, n.state());
    }
}
