//! The per-region federation protocol state machine.
//!
//! A [`FederationNode`] owns one region's view of the federation: the
//! last accepted gossip (queue level + epoch) per peer, the retry/backoff
//! schedule toward stale peers, and the region's current budget share.
//! It is driven twice per sync boundary by the lock-step runner:
//!
//! 1. **Send time** — [`FederationNode::retry_peers`] names the peers
//!    that deserve an extra retransmission this epoch (exponential
//!    backoff + deterministic jitter, so long partitions are not
//!    flooded); the runner sends the regular broadcast to every peer
//!    plus those extras.
//! 2. **Close time** — [`FederationNode::close_epoch`] folds the
//!    collected frames into the peer views (deduplicating by epoch, so
//!    duplicated or reordered copies are harmless), measures staleness
//!    in missed epochs, walks the degradation ladder, and decides the
//!    region's budget share.
//!
//! The degradation ladder:
//!
//! * **fresh** — every peer's gossip for this epoch arrived (missed ≤
//!   `stale_after`): recompute shares under the rebalance policy and
//!   adopt the result as the new *last-agreed* share.
//! * **stale** — some peer missed: hold the last-agreed share unchanged.
//!   Shares summing to 1 stay summing to 1, so the fleet constraint
//!   stays bounded; nobody ever reaches for the global pool.
//! * **partitioned** — a peer's missed count crossed `partition_after`:
//!   same budget behavior as stale, but counted once per transition so
//!   operators can tell a blip from a split.
//! * **heal** — a partitioned peer turns fresh again: a reconciliation
//!   sweep recomputes shares immediately, even if the policy would not
//!   otherwise have changed them.
//!
//! All state serializes into [`NodeState`] for the federation
//! checkpoint; resumed nodes replay the exact same protocol decisions.

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::budget::{shares, RebalancePolicy};
use crate::gossip::QueueGossip;

/// Static protocol parameters of one region's node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// This region's index.
    pub region: u32,
    /// Total regions in the federation.
    pub regions: u32,
    /// Missed epochs tolerated before a peer counts as stale.
    pub stale_after: u64,
    /// Missed epochs before a stale peer is declared partitioned.
    pub partition_after: u64,
    /// Initial retry backoff, in epochs.
    pub backoff_base: u64,
    /// Backoff ceiling, in epochs.
    pub backoff_max: u64,
    /// How shares are recomputed on a fresh epoch.
    pub policy: RebalancePolicy,
    /// Seed of the per-node retry-jitter RNG stream.
    pub jitter_seed: u64,
}

impl NodeConfig {
    /// Protocol defaults for `region` of `regions`: no staleness grace,
    /// partition after 2 missed epochs, backoff 1→8 epochs.
    pub fn new(region: u32, regions: u32, policy: RebalancePolicy, jitter_seed: u64) -> Self {
        Self {
            region,
            regions,
            stale_after: 0,
            partition_after: 2,
            backoff_base: 1,
            backoff_max: 8,
            policy,
            jitter_seed,
        }
    }
}

/// One peer as this node last saw it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerView {
    /// Last accepted queue level.
    pub queue: f64,
    /// Epoch of the last accepted gossip (0 = nothing seen yet; real
    /// epochs start at 1).
    pub epoch: u64,
    /// Whether the peer is currently past the partition threshold.
    pub partitioned: bool,
    /// Next epoch at which a retry toward this peer may fire.
    pub next_retry: u64,
    /// Current retry backoff, in epochs.
    pub backoff: u64,
}

/// The serializable protocol state of one node (federation checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Budget share currently applied (fraction of the fleet `C̄`).
    pub share: f64,
    /// Last share adopted from a fully-fresh view.
    pub last_agreed: f64,
    /// Whether the node is holding `last_agreed` due to staleness.
    pub degraded: bool,
    /// Per-region views, indexed by region (the self entry mirrors the
    /// node's own last sample).
    pub peers: Vec<PeerView>,
    /// Retry-jitter RNG position.
    pub jitter_rng: Pcg32,
}

/// What closing one epoch decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochClose {
    /// The budget share in force after this epoch.
    pub share: f64,
    /// Whether the share vector was recomputed and adopted.
    pub rebalanced: bool,
    /// Whether at least one peer was stale at close.
    pub stale: bool,
    /// Peers that crossed the partition threshold this epoch.
    pub new_partitions: u64,
    /// Whether a partitioned peer healed this epoch (reconciliation).
    pub healed: bool,
}

/// One region's live protocol node: config plus serializable state.
#[derive(Debug, Clone)]
pub struct FederationNode {
    config: NodeConfig,
    state: NodeState,
}

impl FederationNode {
    /// A fresh node at the equal split.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero regions or an out-of-range index.
    pub fn new(config: NodeConfig) -> Self {
        assert!(config.regions > 0, "a federation needs at least one region");
        assert!(config.region < config.regions, "region index out of range");
        let equal = 1.0 / config.regions as f64;
        let peers = (0..config.regions)
            .map(|_| PeerView {
                queue: 0.0,
                epoch: 0,
                partitioned: false,
                next_retry: 0,
                backoff: config.backoff_base.max(1),
            })
            .collect();
        let jitter_rng = Pcg32::seed_stream(config.jitter_seed, 0xFED0 + config.region as u64);
        Self {
            config,
            state: NodeState {
                share: equal,
                last_agreed: equal,
                degraded: false,
                peers,
                jitter_rng,
            },
        }
    }

    /// The static config.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The serializable state (checkpointing).
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// Restores state from a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the state's peer count disagrees with the config.
    pub fn restore(&mut self, state: NodeState) {
        assert_eq!(state.peers.len(), self.config.regions as usize, "peer count mismatch");
        self.state = state;
    }

    /// The budget share currently in force.
    pub fn share(&self) -> f64 {
        self.state.share
    }

    /// Peers owed an extra retransmission at the boundary opening `epoch`
    /// (they are behind the freshest possible view, and their backoff
    /// window elapsed). Schedules the next retry with exponential backoff
    /// plus deterministic jitter. Call exactly once per boundary, before
    /// sending.
    pub fn retry_peers(&mut self, epoch: u64) -> Vec<u32> {
        let mut extras = Vec::new();
        for region in 0..self.config.regions {
            if region == self.config.region {
                continue;
            }
            let stale_after = self.config.stale_after;
            let behind = {
                let peer = &self.state.peers[region as usize];
                // At send time the freshest a peer can be is last epoch.
                epoch.saturating_sub(1).saturating_sub(peer.epoch) > stale_after
            };
            if !behind {
                let peer = &mut self.state.peers[region as usize];
                peer.backoff = self.config.backoff_base.max(1);
                peer.next_retry = epoch;
                continue;
            }
            if epoch >= self.state.peers[region as usize].next_retry {
                extras.push(region);
                let backoff = self.state.peers[region as usize].backoff;
                let jitter = self.state.jitter_rng.below(backoff.max(1) as usize) as u64;
                let peer = &mut self.state.peers[region as usize];
                peer.next_retry = epoch + backoff + jitter;
                peer.backoff = (backoff * 2).min(self.config.backoff_max.max(1));
            }
        }
        extras
    }

    /// Folds the frames collected at the boundary closing `epoch` into
    /// the peer views and walks the degradation ladder. `own_queue` is
    /// this region's backlog sampled at the same boundary.
    pub fn close_epoch(
        &mut self,
        epoch: u64,
        own_queue: f64,
        frames: &[QueueGossip],
    ) -> EpochClose {
        // Accept the freshest copy per peer; duplicates and reordered
        // stale copies lose by epoch comparison.
        for frame in frames {
            if frame.region == self.config.region || frame.region >= self.config.regions {
                continue;
            }
            let peer = &mut self.state.peers[frame.region as usize];
            if frame.epoch > peer.epoch {
                peer.epoch = frame.epoch;
                peer.queue = frame.queue;
            }
        }
        let own = &mut self.state.peers[self.config.region as usize];
        own.epoch = epoch;
        own.queue = own_queue;

        let mut stale = false;
        let mut new_partitions = 0u64;
        let mut healed = false;
        for region in 0..self.config.regions {
            if region == self.config.region {
                continue;
            }
            let peer = &mut self.state.peers[region as usize];
            let missed = epoch.saturating_sub(peer.epoch);
            if missed > self.config.stale_after {
                stale = true;
                if missed > self.config.partition_after && !peer.partitioned {
                    peer.partitioned = true;
                    new_partitions += 1;
                }
            } else if peer.partitioned {
                peer.partitioned = false;
                healed = true;
            }
        }

        let rebalanced = if stale {
            // Degraded: hold the last share the whole federation agreed
            // on. Never recompute from a stale view — that could hand two
            // sides of a split overlapping slices of the pool.
            self.state.degraded = true;
            self.state.share = self.state.last_agreed;
            false
        } else {
            let queues: Vec<f64> = self.state.peers.iter().map(|p| p.queue).collect();
            let next = shares(&queues, &self.config.policy)[self.config.region as usize];
            let changed = next != self.state.share;
            self.state.share = next;
            self.state.last_agreed = next;
            let was_degraded = std::mem::replace(&mut self.state.degraded, false);
            // A heal (or leaving degradation) is a reconciliation sweep:
            // count it even when the recomputed share lands unchanged.
            changed || healed || was_degraded
        };

        EpochClose { share: self.state.share, rebalanced, stale, new_partitions, healed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gossip(region: u32, epoch: u64, queue: f64) -> QueueGossip {
        QueueGossip { region, epoch, slot: epoch * 10, queue }
    }

    fn node(region: u32, policy: RebalancePolicy) -> FederationNode {
        FederationNode::new(NodeConfig::new(region, 3, policy, 77))
    }

    #[test]
    fn fresh_epochs_rebalance_proportionally() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.1 });
        let close = n.close_epoch(1, 2.0, &[gossip(1, 1, 1.0), gossip(2, 1, 1.0)]);
        assert!(close.rebalanced && !close.stale);
        assert!(close.share > 1.0 / 3.0, "the loaded region must gain share");
        // Equal queues next epoch: back toward the equal split.
        let close = n.close_epoch(2, 1.0, &[gossip(1, 2, 1.0), gossip(2, 2, 1.0)]);
        assert!((close.share - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_policy_never_rebalances_on_a_clean_link() {
        let mut n = node(1, RebalancePolicy::Fixed);
        for epoch in 1..=5 {
            let close = n.close_epoch(epoch, 1.0, &[gossip(0, epoch, 5.0), gossip(2, epoch, 0.1)]);
            assert!(!close.rebalanced);
            assert_eq!(close.share, 1.0 / 3.0);
        }
    }

    #[test]
    fn duplicates_and_reordered_copies_are_deduplicated() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.0 });
        // Fresh copy, then a duplicate, then a stale reordered copy.
        let frames = [gossip(1, 3, 4.0), gossip(1, 3, 4.0), gossip(1, 1, 999.0), gossip(2, 3, 4.0)];
        let close = n.close_epoch(3, 4.0, &frames);
        assert!(!close.stale);
        assert!((close.share - 1.0 / 3.0).abs() < 1e-12, "stale 999.0 must not win");
    }

    #[test]
    fn staleness_degrades_to_last_agreed_and_heals_with_reconciliation() {
        let mut n = node(0, RebalancePolicy::QueueProportional { floor: 0.1 });
        let agreed = n.close_epoch(1, 3.0, &[gossip(1, 1, 1.0), gossip(2, 1, 1.0)]).share;
        // Peer 2 goes dark: stale epochs hold the last-agreed share even
        // though our own queue keeps growing.
        for epoch in 2..=4 {
            let close = n.close_epoch(epoch, 50.0, &[gossip(1, epoch, 1.0)]);
            assert!(close.stale && !close.rebalanced);
            assert_eq!(close.share, agreed);
        }
        // Partition declared after `partition_after` missed epochs.
        assert!(n.state().peers[2].partitioned);
        // Heal: peer 2 returns → reconciliation sweep rebalances at once.
        let close = n.close_epoch(5, 50.0, &[gossip(1, 5, 1.0), gossip(2, 5, 1.0)]);
        assert!(close.healed && close.rebalanced && !close.stale);
        assert!(close.share > agreed, "the backlog built during the split earns share");
    }

    #[test]
    fn partition_is_counted_once_per_transition() {
        let mut n = node(0, RebalancePolicy::Fixed);
        let mut transitions = 0;
        for epoch in 1..=8 {
            transitions += n.close_epoch(epoch, 1.0, &[gossip(1, epoch, 1.0)]).new_partitions;
        }
        assert_eq!(transitions, 1, "one dark peer is one partition, not six");
    }

    #[test]
    fn retries_back_off_exponentially_toward_dark_peers() {
        let mut n = node(0, RebalancePolicy::Fixed);
        // Epoch 1: nobody can be behind yet (freshest possible view is 0).
        assert!(n.retry_peers(1).is_empty());
        n.close_epoch(1, 1.0, &[]);
        // Both peers are now behind; retries fire, then back off.
        let mut fired: Vec<u64> = Vec::new();
        for epoch in 2..=20 {
            if n.retry_peers(epoch).contains(&1) {
                fired.push(epoch);
            }
            n.close_epoch(epoch, 1.0, &[]);
        }
        assert!(!fired.is_empty());
        let gaps: Vec<u64> = fired.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.last().copied().unwrap_or(1) >= gaps.first().copied().unwrap_or(1));
        // A returning peer resets its backoff.
        n.close_epoch(21, 1.0, &[gossip(1, 21, 1.0), gossip(2, 21, 1.0)]);
        assert!(n.retry_peers(22).is_empty());
        assert_eq!(n.state().peers[1].backoff, 1);
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut n = node(2, RebalancePolicy::QueueProportional { floor: 0.05 });
        n.retry_peers(1);
        n.close_epoch(1, 2.0, &[gossip(0, 1, 1.0)]);
        let json = serde_json::to_string(n.state()).unwrap();
        let restored: NodeState = serde_json::from_str(&json).unwrap();
        assert_eq!(&restored, n.state());
    }
}
