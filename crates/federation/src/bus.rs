//! The pluggable peer message bus.
//!
//! A [`PeerBus`] moves already-encoded gossip lines between regions; the
//! fault layer ([`crate::fault::LinkFault`]) sits *in front* of the bus,
//! so every implementation sees only the frames that survived the link.
//! Two implementations ship:
//!
//! * [`InProcessBus`] — per-region in-memory inboxes; the deterministic
//!   default every simulation and checkpointed run uses.
//! * [`UnixDatagramBus`] (unix only) — one `SOCK_DGRAM` Unix socket per
//!   region under a shared directory, for federations whose regions run
//!   as separate processes. Datagram sockets preserve per-sender order
//!   and frame boundaries, so the lock-step protocol holds unchanged.
//!
//! The runner drains every delivered frame at each sync boundary, so no
//! frames live *inside* a bus across slots — frames in flight across
//! boundaries exist only in the fault layer's serializable buffer. That
//! is what keeps checkpoint/resume exact without serializing bus guts.

use std::collections::VecDeque;

/// Transport failure of a bus operation.
#[derive(Debug)]
pub struct BusError {
    /// Human-readable cause.
    pub reason: String,
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer bus error: {}", self.reason)
    }
}

impl std::error::Error for BusError {}

/// Moves encoded gossip lines between regions.
pub trait PeerBus {
    /// Enqueues one line for region `to`.
    fn send(&mut self, to: u32, line: &str) -> Result<(), BusError>;
    /// Drains every line currently deliverable to region `region`, in
    /// arrival order. Never blocks.
    fn recv(&mut self, region: u32) -> Result<Vec<String>, BusError>;
}

/// The deterministic in-memory bus: one FIFO inbox per region.
#[derive(Debug)]
pub struct InProcessBus {
    inboxes: Vec<VecDeque<String>>,
}

impl InProcessBus {
    /// A bus connecting `regions` regions.
    pub fn new(regions: u32) -> Self {
        Self { inboxes: (0..regions).map(|_| VecDeque::new()).collect() }
    }
}

impl PeerBus for InProcessBus {
    fn send(&mut self, to: u32, line: &str) -> Result<(), BusError> {
        match self.inboxes.get_mut(to as usize) {
            Some(inbox) => {
                inbox.push_back(line.to_owned());
                Ok(())
            }
            None => Err(BusError { reason: format!("unknown region {to}") }),
        }
    }

    fn recv(&mut self, region: u32) -> Result<Vec<String>, BusError> {
        match self.inboxes.get_mut(region as usize) {
            Some(inbox) => Ok(inbox.drain(..).collect()),
            None => Err(BusError { reason: format!("unknown region {region}") }),
        }
    }
}

/// One Unix datagram socket per region under a shared directory
/// (`<dir>/region-<i>.sock`), for multi-process federations.
///
/// Each instance *owns* only the sockets it bound. A multi-process
/// federation gives every process [`UnixDatagramBus::bind_region`] for
/// its own region — the instance binds exactly that socket, sends to
/// peers through it, and can [`PeerBus::recv`] only its own region.
/// [`UnixDatagramBus::bind`] is the single-process convenience that owns
/// every region at once (tests, or an all-in-one supervisor).
///
/// Binding never silently steals a socket another process is serving: a
/// pre-existing socket file is removed only after a probe confirms
/// nothing answers on it (a genuinely stale leftover); a live socket is
/// a bind error. Drop removes only the files this instance bound.
#[cfg(unix)]
pub struct UnixDatagramBus {
    dir: std::path::PathBuf,
    regions: u32,
    owned: Vec<(u32, std::os::unix::net::UnixDatagram)>,
}

#[cfg(unix)]
impl UnixDatagramBus {
    /// Binds every region's socket in this one process (created if
    /// missing; confirmed-stale socket files are replaced).
    pub fn bind(dir: impl Into<std::path::PathBuf>, regions: u32) -> Result<Self, BusError> {
        let dir = dir.into();
        let mut bus = Self { dir, regions, owned: Vec::with_capacity(regions as usize) };
        for region in 0..regions {
            bus.bind_one(region)?;
        }
        Ok(bus)
    }

    /// Binds only `region`'s socket — the per-process entry point of a
    /// multi-process federation. Peers' sockets are expected to appear
    /// under the same `dir` once their processes bind; sending to a peer
    /// that has not bound yet is a transport error the caller may retry.
    pub fn bind_region(
        dir: impl Into<std::path::PathBuf>,
        region: u32,
        regions: u32,
    ) -> Result<Self, BusError> {
        if region >= regions {
            return Err(BusError {
                reason: format!("region {region} out of range for {regions} regions"),
            });
        }
        let dir = dir.into();
        let mut bus = Self { dir, regions, owned: Vec::with_capacity(1) };
        bus.bind_one(region)?;
        Ok(bus)
    }

    fn bind_one(&mut self, region: u32) -> Result<(), BusError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| BusError { reason: format!("create {}: {e}", self.dir.display()) })?;
        let path = Self::socket_path(&self.dir, region);
        if path.exists() {
            // Probe before clobbering: a connect that anything answers
            // means another process is live on this region.
            let probe =
                std::os::unix::net::UnixDatagram::unbound().and_then(|probe| probe.connect(&path));
            if probe.is_ok() {
                return Err(BusError {
                    reason: format!(
                        "region {region} is already served by a live process at {}",
                        path.display()
                    ),
                });
            }
            std::fs::remove_file(&path).map_err(|e| BusError {
                reason: format!("remove stale {}: {e}", path.display()),
            })?;
        }
        let socket = std::os::unix::net::UnixDatagram::bind(&path)
            .map_err(|e| BusError { reason: format!("bind {}: {e}", path.display()) })?;
        socket
            .set_nonblocking(true)
            .map_err(|e| BusError { reason: format!("nonblocking: {e}") })?;
        self.owned.push((region, socket));
        Ok(())
    }

    fn owned_socket(&self, region: u32) -> Option<&std::os::unix::net::UnixDatagram> {
        self.owned.iter().find(|(r, _)| *r == region).map(|(_, s)| s)
    }

    fn socket_path(dir: &std::path::Path, region: u32) -> std::path::PathBuf {
        dir.join(format!("region-{region}.sock"))
    }
}

#[cfg(unix)]
impl Drop for UnixDatagramBus {
    fn drop(&mut self) {
        for (region, _) in &self.owned {
            let _ = std::fs::remove_file(Self::socket_path(&self.dir, *region));
        }
    }
}

#[cfg(unix)]
impl PeerBus for UnixDatagramBus {
    fn send(&mut self, to: u32, line: &str) -> Result<(), BusError> {
        if to >= self.regions {
            return Err(BusError { reason: format!("unknown region {to}") });
        }
        let from = self
            .owned
            .first()
            .map(|(_, s)| s)
            .ok_or_else(|| BusError { reason: "bus has no bound sockets".to_owned() })?;
        let path = Self::socket_path(&self.dir, to);
        from.send_to(line.as_bytes(), &path)
            .map_err(|e| BusError { reason: format!("send to {}: {e}", path.display()) })?;
        Ok(())
    }

    fn recv(&mut self, region: u32) -> Result<Vec<String>, BusError> {
        let socket = self.owned_socket(region).ok_or_else(|| BusError {
            reason: if region < self.regions {
                format!("region {region} is not bound by this process")
            } else {
                format!("unknown region {region}")
            },
        })?;
        let mut lines = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            match socket.recv(&mut buf) {
                Ok(n) => lines.push(String::from_utf8_lossy(&buf[..n]).into_owned()),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(BusError { reason: format!("recv: {e}") }),
            }
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_bus_keeps_per_region_fifo_order() {
        let mut bus = InProcessBus::new(3);
        bus.send(1, "a").unwrap();
        bus.send(1, "b").unwrap();
        bus.send(2, "c").unwrap();
        assert_eq!(bus.recv(1).unwrap(), ["a", "b"]);
        assert_eq!(bus.recv(1).unwrap(), Vec::<String>::new());
        assert_eq!(bus.recv(2).unwrap(), ["c"]);
        assert!(bus.send(3, "x").is_err());
        assert!(bus.recv(3).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn unix_datagram_bus_moves_frames_between_regions() {
        let dir = std::env::temp_dir().join(format!(
            "eotora-fedbus-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut bus = UnixDatagramBus::bind(&dir, 2).unwrap();
        bus.send(1, "hello").unwrap();
        bus.send(1, "world").unwrap();
        let got = bus.recv(1).unwrap();
        assert_eq!(got, ["hello", "world"]);
        assert!(bus.recv(0).unwrap().is_empty());
        drop(bus);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn per_region_instances_cooperate_without_stealing_sockets() {
        let dir = std::env::temp_dir().join(format!(
            "eotora-fedbus2-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Two instances, one region each — the multi-process shape.
        let mut a = UnixDatagramBus::bind_region(&dir, 0, 2).unwrap();
        let mut b = UnixDatagramBus::bind_region(&dir, 1, 2).unwrap();
        a.send(1, "from-a").unwrap();
        b.send(0, "from-b").unwrap();
        assert_eq!(b.recv(1).unwrap(), ["from-a"]);
        assert_eq!(a.recv(0).unwrap(), ["from-b"]);
        // Each instance can only receive on the region it bound.
        assert!(a.recv(1).is_err(), "a must not drain b's socket");
        assert!(b.recv(0).is_err(), "b must not drain a's socket");
        // Binding a region another live instance serves is an error, not
        // a silent steal.
        assert!(UnixDatagramBus::bind_region(&dir, 0, 2).is_err());
        // Out-of-range regions are typed errors on both directions.
        assert!(a.send(2, "x").is_err());
        assert!(a.recv(2).is_err());
        assert!(UnixDatagramBus::bind_region(&dir, 5, 2).is_err());
        // Once the owner is gone its socket file is stale and rebindable.
        drop(a);
        let _rebound = UnixDatagramBus::bind_region(&dir, 0, 2).unwrap();
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
