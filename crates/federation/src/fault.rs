//! Deterministic, seeded fault injection for the federation peer link.
//!
//! The link is hostile by construction: every frame handed to
//! [`LinkFault::transmit`] can be dropped, duplicated, delayed by whole
//! slots, or reordered against the frames already in flight to the same
//! destination, and full partitions cut named regions off for scheduled
//! slot windows. All randomness comes from one `Pcg32` stream seeded
//! from the trace config, and the in-flight buffer plus RNG position
//! serialize into [`LinkFaultState`] — so a federation checkpointed
//! mid-partition re-executes the exact same fault sequence on resume.
//!
//! The schedule half ([`LinkFaultConfig`]) is plain serde JSON, loadable
//! from a trace file by the CLI (`eotora federate --link-faults t.json`).

use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// A full partition window: during `[from_slot, to_slot)` every frame to
/// *or* from a listed region is dropped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First slot of the partition (inclusive).
    pub from_slot: u64,
    /// First slot after the partition (exclusive) — the heal point.
    pub to_slot: u64,
    /// Regions cut off from the rest of the federation.
    pub regions: Vec<u32>,
}

impl PartitionWindow {
    /// Whether `region` is cut off at `slot`.
    pub fn cuts(&self, slot: u64, region: u32) -> bool {
        slot >= self.from_slot && slot < self.to_slot && self.regions.contains(&region)
    }
}

/// The seeded fault trace for the peer link. All probabilities are in
/// `[0, 1]`; a default-constructed config is a clean link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkFaultConfig {
    /// Seed of the fault RNG stream.
    pub seed: u64,
    /// Probability a transmitted frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a transmitted frame is duplicated (one extra copy).
    pub dup_prob: f64,
    /// Probability a frame is delayed by 1..=`max_delay_slots` slots.
    pub delay_prob: f64,
    /// Maximum delay in slots (a delayed frame arrives this late at most).
    pub max_delay_slots: u64,
    /// Probability a frame is swapped with the frame queued just before
    /// it for the same destination (delivery-order inversion).
    pub reorder_prob: f64,
    /// Scheduled full partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl LinkFaultConfig {
    /// A clean link: nothing dropped, delayed, or partitioned.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A lossy-but-connected link: drops, duplicates, short delays, and
    /// reorderings, no partitions. Seeded for determinism.
    pub fn lossy(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.25,
            dup_prob: 0.10,
            delay_prob: 0.20,
            max_delay_slots: 3,
            reorder_prob: 0.20,
            partitions: Vec::new(),
        }
    }
}

/// One frame held by the link for later delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InFlightFrame {
    /// First slot at which the frame may be collected.
    pub deliver_at: u64,
    /// Destination region.
    pub to: u32,
    /// Encoded gossip line.
    pub line: String,
}

/// The serializable half of [`LinkFault`]: RNG position plus frames in
/// flight. Part of the federation checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultState {
    /// Fault RNG stream position.
    pub rng: Pcg32,
    /// Frames delayed past their send slot, in delivery order.
    pub in_flight: Vec<InFlightFrame>,
}

/// What [`LinkFault::transmit`] did with one logical send.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Copies handed to the link (1 normally, 2 on duplication, 0 when
    /// the send was swallowed whole).
    pub sent: u64,
    /// Copies dropped by loss or partition.
    pub dropped: u64,
}

/// The fault layer in front of the peer bus. Owns the delayed-frame
/// buffer; immediate deliveries are returned to the caller to hand to
/// the bus.
#[derive(Debug, Clone)]
pub struct LinkFault {
    config: LinkFaultConfig,
    state: LinkFaultState,
}

impl LinkFault {
    /// Builds the fault layer from a trace config, seeding the RNG.
    pub fn new(config: LinkFaultConfig) -> Self {
        let rng = Pcg32::seed_stream(config.seed, 0xFEDB05);
        Self { config, state: LinkFaultState { rng, in_flight: Vec::new() } }
    }

    /// The trace config in force.
    pub fn config(&self) -> &LinkFaultConfig {
        &self.config
    }

    /// The serializable runtime state (checkpointing).
    pub fn state(&self) -> &LinkFaultState {
        &self.state
    }

    /// Restores the runtime state from a checkpoint.
    pub fn restore(&mut self, state: LinkFaultState) {
        self.state = state;
    }

    /// Whether `region` is inside an active partition window at `slot`.
    pub fn partitioned(&self, slot: u64, region: u32) -> bool {
        self.config.partitions.iter().any(|w| w.cuts(slot, region))
    }

    /// Sends one frame from `from` to `to` at `slot` through the hostile
    /// link. Immediate deliveries are appended to `deliver`; delayed
    /// copies are buffered until [`LinkFault::release`]. Returns what the
    /// link did, for the sender's `fed.gossip_sent/dropped` counters.
    pub fn transmit(
        &mut self,
        slot: u64,
        from: u32,
        to: u32,
        line: &str,
        deliver: &mut Vec<(u32, String)>,
    ) -> SendOutcome {
        let mut outcome = SendOutcome::default();
        // A partition is absolute: no copies escape, no RNG is consumed,
        // so the fault stream stays aligned across partition schedules.
        if self.partitioned(slot, from) || self.partitioned(slot, to) {
            outcome.sent = 1;
            outcome.dropped = 1;
            return outcome;
        }
        let copies = if self.chance(self.config.dup_prob) { 2 } else { 1 };
        for _ in 0..copies {
            outcome.sent += 1;
            if self.chance(self.config.drop_prob) {
                outcome.dropped += 1;
                continue;
            }
            if self.chance(self.config.delay_prob) && self.config.max_delay_slots > 0 {
                let extra = 1 + self.state.rng.below(self.config.max_delay_slots as usize) as u64;
                let frame = InFlightFrame { deliver_at: slot + extra, to, line: line.to_owned() };
                self.push_reordered(frame);
            } else if self.chance(self.config.reorder_prob) {
                // Invert delivery order against the last immediate frame
                // queued for the same destination this round.
                match deliver.iter().rposition(|(dest, _)| *dest == to) {
                    Some(i) => deliver.insert(i, (to, line.to_owned())),
                    None => deliver.push((to, line.to_owned())),
                }
            } else {
                deliver.push((to, line.to_owned()));
            }
        }
        outcome
    }

    /// Drains every buffered frame due at or before `slot`, in delivery
    /// order. Call once per sync boundary, before new transmissions.
    pub fn release(&mut self, slot: u64) -> Vec<(u32, String)> {
        let mut due = Vec::new();
        self.state.in_flight.retain(|f| {
            if f.deliver_at <= slot {
                due.push((f.to, f.line.clone()));
                false
            } else {
                true
            }
        });
        due
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.state.rng.uniform_in(0.0, 1.0) < p
    }

    fn push_reordered(&mut self, frame: InFlightFrame) {
        if self.chance(self.config.reorder_prob) {
            if let Some(i) = self.state.in_flight.iter().rposition(|f| f.to == frame.to) {
                self.state.in_flight.insert(i, frame);
                return;
            }
        }
        self.state.in_flight.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_delivers_everything_in_order() {
        let mut link = LinkFault::new(LinkFaultConfig::clean());
        let mut deliver = Vec::new();
        for i in 0..5 {
            let out = link.transmit(3, 0, 1, &format!("frame-{i}"), &mut deliver);
            assert_eq!((out.sent, out.dropped), (1, 0));
        }
        let lines: Vec<&str> = deliver.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, ["frame-0", "frame-1", "frame-2", "frame-3", "frame-4"]);
        assert!(link.release(100).is_empty());
    }

    #[test]
    fn partition_swallows_both_directions_without_rng() {
        let cfg = LinkFaultConfig {
            partitions: vec![PartitionWindow { from_slot: 10, to_slot: 20, regions: vec![2] }],
            ..LinkFaultConfig::clean()
        };
        let mut link = LinkFault::new(cfg);
        let mut deliver = Vec::new();
        // To and from the cut region, inside the window: dropped.
        assert_eq!(link.transmit(10, 0, 2, "x", &mut deliver).dropped, 1);
        assert_eq!(link.transmit(19, 2, 0, "x", &mut deliver).dropped, 1);
        // Outside the window, or between connected regions: delivered.
        assert_eq!(link.transmit(20, 0, 2, "x", &mut deliver).dropped, 0);
        assert_eq!(link.transmit(15, 0, 1, "x", &mut deliver).dropped, 0);
        assert_eq!(deliver.len(), 2);
    }

    #[test]
    fn delayed_frames_surface_only_when_due() {
        let cfg = LinkFaultConfig {
            seed: 7,
            delay_prob: 1.0,
            max_delay_slots: 2,
            ..LinkFaultConfig::clean()
        };
        let mut link = LinkFault::new(cfg);
        let mut deliver = Vec::new();
        assert_eq!(link.transmit(5, 0, 1, "late", &mut deliver).dropped, 0);
        assert!(deliver.is_empty(), "delayed frame must not deliver immediately");
        assert!(link.release(5).is_empty());
        let due = link.release(7);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0], (1, "late".to_owned()));
        assert!(link.release(8).is_empty(), "released frames leave the buffer");
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut link = LinkFault::new(LinkFaultConfig::lossy(42));
        let mut deliver = Vec::new();
        for slot in 0..10 {
            link.transmit(slot, 0, 1, "payload", &mut deliver);
        }
        let json = serde_json::to_string(link.state()).unwrap();
        let restored: LinkFaultState = serde_json::from_str(&json).unwrap();
        assert_eq!(&restored, link.state());
    }

    #[test]
    fn seeded_runs_are_identical() {
        let run = |seed| {
            let mut link = LinkFault::new(LinkFaultConfig::lossy(seed));
            let mut deliver = Vec::new();
            let mut dropped = 0;
            for slot in 0..50 {
                dropped += link.transmit(slot, 0, 1, "p", &mut deliver).dropped;
            }
            (dropped, deliver.len(), link.state().in_flight.len())
        };
        assert_eq!(run(9), run(9));
        // Lossy parameters actually bite.
        let (dropped, delivered, in_flight) = run(9);
        assert!(dropped > 0 && delivered > 0);
        let _ = in_flight;
    }
}
